"""Whole-program analysis infrastructure for the quality engine.

The per-file rules (:mod:`repro.quality.rules`) see one module at a
time, which is enough for local invariants — float comparison, mutable
defaults, a single file's ``__all__``.  The process-parallel and
deterministic-replay invariants the reproduction now leans on are
*cross-module* properties: whether a ``Generator`` reaching a worker was
injected or freshly constructed, whether a function submitted to a
``ProcessPoolExecutor`` mutates state the parent will never see, whether
``repro.core`` stays import-clean of the upper layers.  This module
gives rules the whole program at once:

* every module under the linted paths is parsed exactly once into a
  :class:`ModuleInfo`;
* a :class:`SymbolTable` per module records its top-level bindings,
  ``__all__`` declaration, and import records (with scope — runtime
  module-level imports are distinguished from function-scope and
  ``TYPE_CHECKING``-only ones);
* :class:`ProjectContext` derives the module-level import graph, a
  cross-module reference index (which names of module X other modules
  actually use), and a lightweight call/def-use resolver
  (:meth:`ProjectContext.resolve_function`) that follows ``from``
  imports across module boundaries.

Project-scoped rules subclass :class:`ProjectRule`, are registered in
:data:`PROJECT_RULES` via :func:`register_project`, and are run once per
engine invocation over the whole :class:`ProjectContext` (see
:meth:`repro.quality.engine.LintEngine.run`).  The shipped project rules
(RPR009–RPR012) live in :mod:`repro.quality.project_rules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .findings import Finding
from .rules import Rule, RuleContext

__all__ = [
    "PROJECT_RULES",
    "ImportRecord",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "SymbolTable",
    "build_project",
    "register_project",
]


@dataclass(frozen=True)
class ImportRecord:
    """One import statement binding, resolved to a dotted target.

    ``target`` is the dotted module the import reaches into (relative
    imports are resolved against the importing module); ``name`` is the
    imported symbol for ``from target import name`` and ``None`` for a
    plain ``import target``; ``alias`` is the local name bound.
    """

    target: str
    name: str | None
    alias: str
    lineno: int
    col: int
    module_scope: bool
    type_checking: bool


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed module of the project."""

    path: str
    module: str
    is_package: bool
    tree: ast.Module
    source: str


@dataclass(frozen=True)
class SymbolTable:
    """Top-level symbol information of one module.

    ``bindings`` maps names defined *in* the module (functions, classes,
    assignments — not imports) to their line; ``import_bindings`` maps
    names bound by top-level imports.  ``declared_all`` is the module's
    ``__all__`` (``None`` when not declared).  ``has_module_getattr``
    marks modules with a PEP 562 ``__getattr__`` whose exports cannot be
    resolved statically.
    """

    bindings: Mapping[str, int]
    import_bindings: Mapping[str, int]
    declared_all: frozenset[str] | None
    all_lineno: int
    has_module_getattr: bool

    def binds(self, name: str) -> bool:
        return (
            name in self.bindings
            or name in self.import_bindings
            or self.has_module_getattr
        )


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Dotted target of an ``ImportFrom`` seen from ``module``."""
    if not node.level:
        return node.module or ""
    base = module.split(".")
    if not is_package:
        base = base[:-1]
    if node.level > 1:
        base = base[: len(base) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _collect_imports(info: ModuleInfo) -> tuple[ImportRecord, ...]:
    records: list[ImportRecord] = []

    def visit(
        stmts: Iterable[ast.stmt], module_scope: bool, type_checking: bool
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    records.append(
                        ImportRecord(
                            target=alias.name,
                            name=None,
                            alias=alias.asname or alias.name.split(".")[0],
                            lineno=stmt.lineno,
                            col=stmt.col_offset,
                            module_scope=module_scope,
                            type_checking=type_checking,
                        )
                    )
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                target = resolve_relative(info.module, info.is_package, stmt)
                for alias in stmt.names:
                    records.append(
                        ImportRecord(
                            target=target,
                            name=alias.name,
                            alias=alias.asname or alias.name,
                            lineno=stmt.lineno,
                            col=stmt.col_offset,
                            module_scope=module_scope,
                            type_checking=type_checking,
                        )
                    )
            elif isinstance(stmt, ast.If):
                tc = type_checking or _is_type_checking_test(stmt.test)
                visit(stmt.body, module_scope, tc)
                visit(stmt.orelse, module_scope, type_checking)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body, module_scope, type_checking)
                for handler in stmt.handlers:
                    visit(handler.body, module_scope, type_checking)
                visit(stmt.orelse, module_scope, type_checking)
                visit(stmt.finalbody, module_scope, type_checking)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                visit(stmt.body, module_scope, type_checking)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                visit(
                    (s for s in stmt.body if isinstance(s, ast.stmt)),
                    False,
                    type_checking,
                )

    visit(info.tree.body, True, False)
    return tuple(records)


def _symbol_table(info: ModuleInfo) -> SymbolTable:
    bindings: dict[str, int] = {}
    import_bindings: dict[str, int] = {}
    declared: frozenset[str] | None = None
    all_lineno = 1
    has_getattr = False

    def string_elements(node: ast.expr | None) -> frozenset[str]:
        if isinstance(node, (ast.List, ast.Tuple)):
            return frozenset(
                elt.value
                for elt in node.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
        return frozenset()

    def visit(stmts: Iterable[ast.stmt]) -> None:
        nonlocal declared, all_lineno, has_getattr
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                names = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                if "__all__" in names:
                    declared = string_elements(stmt.value)
                    all_lineno = stmt.lineno
                    continue
                for name in names:
                    bindings.setdefault(name, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    if stmt.target.id == "__all__":
                        declared = string_elements(stmt.value)
                        all_lineno = stmt.lineno
                    else:
                        bindings.setdefault(stmt.target.id, stmt.lineno)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if stmt.name == "__getattr__":
                    has_getattr = True
                bindings.setdefault(stmt.name, stmt.lineno)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    import_bindings.setdefault(bound, stmt.lineno)
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    import_bindings.setdefault(
                        alias.asname or alias.name, stmt.lineno
                    )
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                visit(stmt.body)
                for handler in stmt.handlers:
                    visit(handler.body)
                visit(stmt.orelse)
                visit(stmt.finalbody)

    visit(info.tree.body)
    return SymbolTable(
        bindings=bindings,
        import_bindings=import_bindings,
        declared_all=declared,
        all_lineno=all_lineno,
        has_module_getattr=has_getattr,
    )


class ProjectContext:
    """Everything a project-scoped rule may inspect about the program.

    Built once per engine run from every parsed module; all derived
    indexes (import graph, reference index, per-module name uses) are
    computed lazily and cached.
    """

    def __init__(self, modules: Mapping[str, ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = dict(modules)
        self.symbols: dict[str, SymbolTable] = {
            name: _symbol_table(info) for name, info in self.modules.items()
        }
        self.imports: dict[str, tuple[ImportRecord, ...]] = {
            name: _collect_imports(info) for name, info in self.modules.items()
        }
        self._graph: dict[str, frozenset[str]] | None = None
        self._references: dict[str, frozenset[str]] | None = None
        self._used: dict[str, frozenset[str]] = {}

    # -- resolution helpers ----------------------------------------------------

    def context_for(self, module: str) -> RuleContext:
        """Per-file :class:`RuleContext` for anchoring findings."""
        info = self.modules[module]
        return RuleContext(
            path=info.path, module=module, tree=info.tree, source=info.source
        )

    def resolve_target(self, target: str) -> str | None:
        """Project module a dotted import target lands in, if any.

        ``from repro.core.state import AllocationState`` resolves to
        ``repro.core.state``; ``import repro.core`` to ``repro.core``.
        A ``from``-import whose target is itself outside the project
        resolves to ``None``.
        """
        if target in self.modules:
            return target
        parent = target.rpartition(".")[0]
        return parent if parent in self.modules else None

    def import_graph(self) -> Mapping[str, frozenset[str]]:
        """Runtime module-scope import edges between project modules.

        ``TYPE_CHECKING``-guarded and function-scope imports are
        excluded: they cannot create an import-time cycle and they do
        not couple layers at runtime start-up.
        """
        graph = self._graph
        if graph is None:
            graph = {}
            for name, records in self.imports.items():
                edges: set[str] = set()
                for rec in records:
                    if not rec.module_scope or rec.type_checking:
                        continue
                    # `from pkg import submodule` couples the importer to
                    # the *submodule*, not the package __init__ (which
                    # every submodule import touches anyway — counting it
                    # would make each package trivially cyclic with its
                    # children).
                    resolved: str | None = None
                    if rec.name is not None:
                        full = f"{rec.target}.{rec.name}"
                        if full in self.modules:
                            resolved = full
                    if resolved is None:
                        resolved = self.resolve_target(rec.target)
                    if resolved is not None and resolved != name:
                        edges.add(resolved)
                graph[name] = frozenset(edges)
            self._graph = graph
        return graph

    def references(self) -> Mapping[str, frozenset[str]]:
        """Cross-module def-use index: module -> names others reach into.

        A name of module X counts as referenced when another project
        module imports it (``from X import name``, any scope) or
        accesses it as an attribute through an alias of X
        (``import X as x; x.name``).
        """
        refs = self._references
        if refs is None:
            acc: dict[str, set[str]] = {name: set() for name in self.modules}
            for name, records in self.imports.items():
                # local alias -> project module it denotes
                alias_of: dict[str, str] = {}
                for rec in records:
                    if rec.name is None:
                        if rec.target in self.modules:
                            # `import a.b.c` binds `a`, but attribute
                            # chains start from the full dotted path;
                            # `import a.b.c as m` binds the target.
                            alias_of[rec.alias] = rec.target
                        continue
                    full = f"{rec.target}.{rec.name}"
                    if full in self.modules:
                        alias_of[rec.alias] = full
                        continue
                    resolved = self.resolve_target(rec.target)
                    if resolved is not None and resolved != name:
                        acc[resolved].add(rec.name)
                info = self.modules[name]
                for node in ast.walk(info.tree):
                    if isinstance(node, ast.Attribute) and isinstance(
                        node.value, ast.Name
                    ):
                        target = alias_of.get(node.value.id)
                        if target is not None and target != name:
                            acc[target].add(node.attr)
            refs = {name: frozenset(used) for name, used in acc.items()}
            self._references = refs
        return refs

    def used_names(self, module: str) -> frozenset[str]:
        """Every ``Name`` loaded anywhere inside ``module`` itself."""
        cached = self._used.get(module)
        if cached is None:
            info = self.modules[module]
            cached = frozenset(
                node.id
                for node in ast.walk(info.tree)
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
            )
            self._used[module] = cached
        return cached

    def resolve_function(
        self, module: str, name: str, max_hops: int = 4
    ) -> tuple[str, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """Find the def of ``name`` as seen from ``module``.

        Looks for a top-level function definition in ``module`` itself,
        then follows ``from``-import aliases across project modules
        (re-export chains) for up to ``max_hops`` hops.
        """
        seen: set[tuple[str, str]] = set()
        current_module, current_name = module, name
        for _ in range(max_hops):
            if (current_module, current_name) in seen:
                return None
            seen.add((current_module, current_name))
            info = self.modules.get(current_module)
            if info is None:
                return None
            for stmt in info.tree.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == current_name
                ):
                    return current_module, stmt
            hop: tuple[str, str] | None = None
            for rec in self.imports[current_module]:
                if rec.alias != current_name or rec.name is None:
                    continue
                resolved = self.resolve_target(rec.target)
                if resolved is not None:
                    hop = (resolved, rec.name)
                    break
            if hop is None:
                return None
            current_module, current_name = hop
        return None


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project` over a
    :class:`ProjectContext`; the per-file :meth:`check` hook is a no-op
    so a ``ProjectRule`` can sit in a mixed rule list without firing
    twice.  Findings are anchored in whichever module exhibits the
    violation via :meth:`ProjectContext.context_for`.
    """

    def check(self, ctx: RuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


PROJECT_RULES: dict[str, ProjectRule] = {}


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule (by id) to the registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in PROJECT_RULES:
        raise ValueError(f"duplicate project rule id {cls.rule_id}")
    PROJECT_RULES[cls.rule_id] = cls()
    return cls


def build_project(infos: Iterable[ModuleInfo]) -> ProjectContext:
    """Assemble a :class:`ProjectContext` from parsed modules.

    Later entries win on duplicate module names (a file outside any
    package resolves to its bare stem; colliding stems are rare and the
    project rules only reason about package-qualified modules anyway).
    """
    return ProjectContext({info.module: info for info in infos})
