"""Fractional-mapping LP upper bound (paper Section 7).

* :func:`build_upper_bound_lp` — the sparse formulation (constraints
  a–g, both objectives).
* :func:`upper_bound` — solve and extract the bound (HiGHS by default).
* :mod:`~repro.lp.simplex` — self-contained dense simplex for small
  instances and cross-validation.
"""

from .formulation import LPProblem, VariableIndex, build_upper_bound_lp
from .simplex import SimplexResult, simplex_min, solve_dense_lp
from .upper_bound import UpperBoundResult, solve_lp, upper_bound

__all__ = [
    "LPProblem",
    "SimplexResult",
    "UpperBoundResult",
    "VariableIndex",
    "build_upper_bound_lp",
    "simplex_min",
    "solve_dense_lp",
    "solve_lp",
    "upper_bound",
]
