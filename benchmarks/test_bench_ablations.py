"""Benchmarks for the Section-5 ablation studies.

* bias sweep over [1, 2] (the paper's bias-1.6 tuning experiment);
* Seeded vs unseeded PSG (the paper's "perform comparably" claim);
* stop-at-first-failure vs skip-ahead (cost of the termination rule).
"""

from __future__ import annotations

from repro.experiments import bias_sweep, seeding_ablation, stop_rule_ablation


def test_bias_sweep(benchmark, bench_tiny):
    out = benchmark.pedantic(
        lambda: bias_sweep(scale=bench_tiny, biases=(1.0, 1.3, 1.6, 2.0)),
        rounds=1,
        iterations=1,
    )
    print()
    print(out["table"])
    benchmark.extra_info["best_bias"] = out["best_bias"]
    benchmark.extra_info["means"] = {
        f"{b:.1f}": ci.mean for b, ci in out["results"].items()
    }
    assert set(out["results"]) == {1.0, 1.3, 1.6, 2.0}


def test_seeding_ablation(benchmark, bench_tiny):
    out = benchmark.pedantic(
        lambda: seeding_ablation(scale=bench_tiny),
        rounds=1,
        iterations=1,
    )
    print()
    print(out["table"])
    benchmark.extra_info["psg"] = out["psg"].mean
    benchmark.extra_info["seeded_psg"] = out["seeded_psg"].mean
    # paper: comparable performance — the seeded variant should not be
    # dramatically worse (it starts from at-least-as-good seeds).
    assert out["seeded_psg"].mean >= 0.5 * out["psg"].mean


def test_stop_rule_ablation(benchmark, bench_tiny):
    out = benchmark.pedantic(
        lambda: stop_rule_ablation(scale=bench_tiny),
        rounds=1,
        iterations=1,
    )
    print()
    print(out["table"])
    benchmark.extra_info["stop"] = out["stop"].mean
    benchmark.extra_info["skip"] = out["skip"].mean
    # skip-ahead dominates stop-at-first-failure on the same ordering
    assert out["difference"].mean >= -1e-9
