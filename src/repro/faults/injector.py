"""Apply fault events to a system model: masked models and evictions.

The injector keeps machine indices **stable**: a failed machine is not
removed from the model but *masked* — its nominal execution times are
rewritten so that any single application would over-subscribe it
(stage-1 load 1.25 > 1), and a failed route's bandwidth is reduced
below the level at which any transfer in the workload could fit its
capacity constraint.  Index stability is what lets an existing
:class:`~repro.core.allocation.Allocation` carry forward unchanged:
the standard two-stage feasibility analysis — and therefore all of
:mod:`repro.dynamic.policies` — rejects every placement that touches a
dead resource, with no special cases anywhere downstream.

Known (documented) distortion: masked execution times still enter the
per-application *averages* the IMR and TF heuristics use for ordering,
so a remap-from-scratch heuristic on a masked model sees mildly skewed
intensities.  Placements remain correct regardless — nothing feasible
can ever land on a masked resource.

:func:`inject` returns a :class:`FaultInjection` bundling the masked
model with the normalized :class:`~repro.faults.events.FaultSet`;
:meth:`FaultInjection.evict` splits an allocation into the survivors
(re-anchored on the masked model) and the evicted string ids — the set
whose placements touched a failed machine or route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.allocation import Allocation
from ..core.model import AppString, Network, SystemModel
from ..robustness.surge import transfer_allocation
from .events import FaultEvent, FaultSet, normalize_faults

__all__ = [
    "FaultInjection",
    "inject",
    "blocking_bandwidth",
    "touches_failed_resource",
]

#: Stage-1 load any application would place on a masked (failed) machine.
_MASKED_LOAD = 1.25


def blocking_bandwidth(model: SystemModel) -> float:
    """A bandwidth low enough that no transfer in ``model`` can fit.

    A transfer of ``O`` bytes on a period-``P`` string loads a route of
    bandwidth ``w`` by ``O / (P w)`` (eq. 3); any ``w`` below
    ``min O / P`` over the workload forces that load above 1 for every
    transfer, so stage 1 rejects all of them.
    """
    ratios = [
        float(s.output_sizes.min()) / s.period
        for s in model.strings
        if s.n_apps > 1
    ]
    if not ratios:
        return 1e-12  # no transfers exist; any positive value blocks
    return 0.5 * min(ratios)


def touches_failed_resource(
    machines: np.ndarray, fault_set: FaultSet
) -> bool:
    """Does an assignment use a failed machine or failed route?"""
    arr = np.asarray(machines, dtype=int)
    if any(int(j) in fault_set.failed_machines for j in arr):
        return True
    if arr.size > 1 and fault_set.failed_routes:
        for j1, j2 in zip(arr[:-1], arr[1:]):
            if j1 != j2 and (int(j1), int(j2)) in fault_set.failed_routes:
                return True
    return False


@dataclass(frozen=True)
class FaultInjection:
    """A masked model plus everything needed to reason about the faults."""

    original: SystemModel
    faulted: SystemModel
    events: tuple[FaultEvent, ...]
    fault_set: FaultSet

    @property
    def n_surviving_machines(self) -> int:
        return (
            self.original.n_machines - len(self.fault_set.failed_machines)
        )

    def evict(
        self, allocation: Allocation
    ) -> tuple[Allocation, tuple[int, ...]]:
        """Split ``allocation`` into (survivors, evicted ids).

        A string is evicted iff its placement touches a failed machine
        or a failed route.  Survivors are re-anchored onto the masked
        model (their placements may still fail feasibility there — e.g.
        on a *degraded* machine — which is the recovery policy's call,
        not the injector's).
        """
        evicted = tuple(
            k
            for k in allocation
            if touches_failed_resource(
                allocation.machines_for(k), self.fault_set
            )
        )
        survivors = allocation.restricted_to(
            k for k in allocation if k not in set(evicted)
        )
        return transfer_allocation(survivors, self.faulted), evicted

    def describe(self) -> str:
        lines = [event.describe() for event in self.events]
        lines.append(f"net effect: {self.fault_set.describe()}")
        return "\n".join(lines)


def _mask_network(network: Network, fault_set: FaultSet, w_block: float) -> Network:
    bw = np.array(network.bandwidth)
    for j1, j2 in fault_set.failed_routes:
        bw[j1, j2] = w_block
    for (j1, j2), capacity in fault_set.route_capacity.items():
        bw[j1, j2] *= capacity
    return Network(bw)


def _mask_string(s: AppString, fault_set: FaultSet) -> AppString:
    ct = np.array(s.comp_times)
    cu = np.array(s.cpu_utils)
    for j in fault_set.failed_machines:
        # any single app would load the machine by _MASKED_LOAD > 1
        ct[:, j] = _MASKED_LOAD * s.period
        cu[:, j] = 1.0
    for j, capacity in fault_set.machine_capacity.items():
        ct[:, j] /= capacity
    return AppString(
        string_id=s.string_id,
        worth=s.worth,
        period=s.period,
        max_latency=s.max_latency,
        comp_times=ct,
        cpu_utils=cu,
        output_sizes=s.output_sizes,
        name=s.name,
    )


def inject(
    model: SystemModel, events: Sequence[FaultEvent]
) -> FaultInjection:
    """Apply ``events`` to ``model``, producing the masked instance.

    The returned injection's ``faulted`` model has the same machine
    count, string ids, and application counts as ``model`` — only the
    numeric surfaces (execution times, bandwidths) change — so
    allocations transfer between the two without re-indexing.
    """
    fault_set = normalize_faults(events, model.n_machines)
    if fault_set.is_empty:
        return FaultInjection(
            original=model,
            faulted=model,
            events=tuple(events),
            fault_set=fault_set,
        )
    network = _mask_network(
        model.network, fault_set, blocking_bandwidth(model)
    )
    strings = [_mask_string(s, fault_set) for s in model.strings]
    faulted = SystemModel(network, strings, model.machines)
    return FaultInjection(
        original=model,
        faulted=faulted,
        events=tuple(events),
        fault_set=fault_set,
    )
