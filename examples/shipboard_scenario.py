#!/usr/bin/env python
"""A hand-built shipboard scenario: sensor-to-actuator strings.

The paper's motivating domain is a Total Ship Computing Environment:
continuously running sensor-processing pipelines (sonar, radar, EW)
whose stages are mapped onto a shared compute suite.  This example
builds such a system explicitly — named machines, named strings with
meaningful periods and latency bounds — then:

1. allocates it with MWF and with Seeded PSG,
2. validates both mappings with the two-stage feasibility analysis,
3. executes the Seeded-PSG mapping on the discrete-event simulator and
   checks every string meets its latency bound at runtime,
4. reports how much input-workload surge each mapping absorbs.

Run:  python examples/shipboard_scenario.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import (
    Allocation,
    AppString,
    Machine,
    Network,
    SystemModel,
    analyze,
)
from repro.des import compare_to_estimates
from repro.genitor import GenitorConfig, StoppingRules
from repro.heuristics import most_worth_first, seeded_psg
from repro.robustness import max_absorbable_surge

MB = 125_000.0  # bytes per second in 1 Mb/s
KB = 1_000.0


def build_ship() -> SystemModel:
    """Six consoles; five mission strings of varying criticality."""
    rng = np.random.default_rng(20260705)
    machines = [
        Machine(0, "sonar-proc-fwd"),
        Machine(1, "sonar-proc-aft"),
        Machine(2, "combat-sys-1"),
        Machine(3, "combat-sys-2"),
        Machine(4, "nav-console"),
        Machine(5, "display-server"),
    ]
    bandwidth = rng.uniform(2 * MB, 8 * MB, size=(6, 6))
    np.fill_diagonal(bandwidth, np.inf)
    network = Network(bandwidth)

    def string(sid, name, worth, period, latency, stage_times, outputs):
        """Stage times are per-machine base values with ±30% machine
        heterogeneity; CPU utilization scales with stage weight."""
        n = len(stage_times)
        base = np.asarray(stage_times, dtype=float)[:, None]
        het = rng.uniform(0.7, 1.3, size=(n, 6))
        comp = base * het
        utils = np.clip(
            0.3 + 0.6 * base / base.max() + rng.uniform(-0.1, 0.1, (n, 6)),
            0.1, 1.0,
        )
        return AppString(
            string_id=sid, worth=worth, period=period, max_latency=latency,
            comp_times=comp, cpu_utils=utils,
            output_sizes=np.asarray(outputs, dtype=float) * KB, name=name,
        )

    strings = [
        # high-worth track pipeline: tight latency, fast period
        string(0, "sonar-track", 100, period=8.0, latency=30.0,
               stage_times=[2.0, 3.5, 1.5, 1.0], outputs=[60, 40, 20]),
        string(1, "radar-track", 100, period=6.0, latency=25.0,
               stage_times=[1.5, 3.0, 1.0], outputs=[80, 30]),
        # medium-worth situational pictures
        string(2, "ew-classify", 10, period=12.0, latency=60.0,
               stage_times=[2.5, 4.0, 2.0, 1.5, 1.0],
               outputs=[50, 50, 30, 15]),
        string(3, "nav-fusion", 10, period=15.0, latency=70.0,
               stage_times=[2.0, 2.0, 3.0], outputs=[25, 25]),
        # low-worth logging/display refresh
        string(4, "status-display", 1, period=20.0, latency=120.0,
               stage_times=[1.0, 2.0], outputs=[90]),
    ]
    return SystemModel(network, strings, machines)


def describe(model: SystemModel, allocation: Allocation, label: str) -> None:
    report = analyze(allocation)
    print(f"\n== {label} ==")
    print(f"feasibility: {report.summary()}")
    rows = []
    for k in allocation:
        s = model.strings[k]
        machines = ", ".join(
            model.machines[j].name for j in allocation.machines_for(k)
        )
        rows.append((
            s.name, f"{s.worth:g}",
            f"{report.latencies[k]:.2f}/{s.max_latency:g}", machines,
        ))
    print(format_table(
        ["string", "worth", "latency est/bound", "placement"], rows
    ))


def main() -> None:
    model = build_ship()
    print(f"ship model: {model.n_strings} mission strings on "
          f"{model.n_machines} consoles")

    mwf = most_worth_first(model)
    describe(model, mwf.allocation, f"MWF  {mwf.fitness}")

    ga = seeded_psg(
        model,
        config=GenitorConfig(
            population_size=24,
            rules=StoppingRules(max_iterations=300, max_stale_iterations=100),
        ),
        rng=1,
    )
    describe(model, ga.allocation, f"Seeded PSG  {ga.fitness}")

    # Execute the GA mapping and verify runtime latencies.
    print("\n== discrete-event execution of the Seeded-PSG mapping ==")
    comparison = compare_to_estimates(
        ga.allocation, n_datasets=60, skip_datasets=6
    )
    rows = []
    all_met = True
    for k, (est, meas) in sorted(comparison.latency.items()):
        bound = model.strings[k].max_latency
        met = meas <= bound + 1e-9
        all_met &= met
        rows.append((
            model.strings[k].name, f"{est:.2f}", f"{meas:.2f}",
            f"{bound:g}", "yes" if met else "NO",
        ))
    print(format_table(
        ["string", "analytic latency", "simulated mean", "bound", "met"],
        rows,
    ))
    print(f"all latency bounds met at runtime: {all_met}")

    # Robustness: how much workload growth does each mapping absorb?
    print("\n== workload-surge robustness ==")
    for label, result in (("mwf", mwf), ("seeded-psg", ga)):
        profile = max_absorbable_surge(result.allocation)
        print(
            f"{label:>11}: slackness {profile.slackness:.3f}, absorbs "
            f"{profile.max_delta:.1%} input growth "
            f"(stage-1 limit {profile.stage1_limit:.1%}, "
            f"QoS-bound={profile.qos_bound})"
        )


if __name__ == "__main__":
    main()
