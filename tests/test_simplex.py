"""Unit tests for the in-house simplex solver (repro.lp.simplex)."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core import SolverError
from repro.lp.simplex import SIZE_GUARD, simplex_min, solve_dense_lp
from repro.lp import build_upper_bound_lp
from repro.workload import SCENARIO_1, generate_model


class TestSimplexMin:
    def test_textbook_problem(self):
        # min -3x - 5y ; x + s1 = 4 ; 2y + s2 = 12 ; 3x + 2y + s3 = 18
        A = np.array([
            [1.0, 0.0, 1.0, 0.0, 0.0],
            [0.0, 2.0, 0.0, 1.0, 0.0],
            [3.0, 2.0, 0.0, 0.0, 1.0],
        ])
        b = np.array([4.0, 12.0, 18.0])
        c = np.array([-3.0, -5.0, 0.0, 0.0, 0.0])
        res = simplex_min(A, b, c)
        assert res.objective == pytest.approx(-36.0)
        assert res.x[:2] == pytest.approx([2.0, 6.0])

    def test_equality_only(self):
        # min x + y s.t. x + y = 5 -> objective 5
        A = np.array([[1.0, 1.0]])
        b = np.array([5.0])
        c = np.array([1.0, 1.0])
        res = simplex_min(A, b, c)
        assert res.objective == pytest.approx(5.0)

    def test_negative_rhs_normalized(self):
        # -x = -3  ->  x = 3
        A = np.array([[-1.0]])
        b = np.array([-3.0])
        c = np.array([1.0])
        res = simplex_min(A, b, c)
        assert res.x[0] == pytest.approx(3.0)

    def test_infeasible_detected(self):
        # x = 1 and x = 2 simultaneously
        A = np.array([[1.0], [1.0]])
        b = np.array([1.0, 2.0])
        c = np.array([0.0])
        with pytest.raises(SolverError, match="infeasible"):
            simplex_min(A, b, c)

    def test_unbounded_detected(self):
        # min -x s.t. x - s = 0 (x can grow forever)
        A = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        with pytest.raises(SolverError, match="unbounded"):
            simplex_min(A, b, c)

    def test_degenerate_redundant_rows(self):
        # duplicated constraint row: still solvable
        A = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        c = np.array([1.0, 0.0])
        res = simplex_min(A, b, c)
        assert res.objective == pytest.approx(0.0)

    def test_dimension_mismatch(self):
        with pytest.raises(SolverError):
            simplex_min(np.ones((2, 3)), np.ones(2), np.ones(2))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_problems_match_highs(self, seed):
        """Random bounded LPs: our simplex ≡ HiGHS."""
        rng = np.random.default_rng(seed)
        m, n = 4, 7
        A_ub = rng.uniform(0.1, 1.0, size=(m, n))
        b_ub = rng.uniform(1.0, 3.0, size=m)
        c = rng.uniform(0.1, 1.0, size=n)  # minimize c·x... make it max
        ref = linprog(-c, A_ub=A_ub, b_ub=b_ub, bounds=[(0, 1)] * n,
                      method="highs")
        assert ref.success
        # standard form: x + s_box = 1 per var, A_ub x + s = b
        A = np.zeros((m + n, n + n + m))
        A[:m, :n] = A_ub
        A[:m, n + n:] = np.eye(m)
        A[m:, :n] = np.eye(n)
        A[m:, n:n + n] = np.eye(n)
        b = np.concatenate([b_ub, np.ones(n)])
        cc = np.concatenate([-c, np.zeros(n + m)])
        res = simplex_min(A, b, cc)
        assert res.objective == pytest.approx(ref.fun, abs=1e-8)


class TestSolveDenseLp:
    def test_matches_highs_on_model(self):
        params = SCENARIO_1.scaled(n_strings=3, n_machines=3)
        model = generate_model(params, seed=0)
        problem = build_upper_bound_lp(model, objective="partial")
        x = solve_dense_lp(problem)
        ref = linprog(
            -problem.c, A_ub=problem.A_ub, b_ub=problem.b_ub,
            A_eq=problem.A_eq, b_eq=problem.b_eq, bounds=problem.bounds,
            method="highs",
        )
        assert problem.c @ x == pytest.approx(-ref.fun, rel=1e-7)

    def test_size_guard(self):
        params = SCENARIO_1.scaled(n_strings=40, n_machines=12)
        model = generate_model(params, seed=1)
        problem = build_upper_bound_lp(model, objective="partial")
        assert problem.n_vars > SIZE_GUARD
        with pytest.raises(SolverError, match="guard"):
            solve_dense_lp(problem)

    def test_free_variable_handling(self):
        """The complete objective has the free-above... λ ≤ 1 variable."""
        params = SCENARIO_1.scaled(n_strings=2, n_machines=2)
        model = generate_model(params, seed=2)
        problem = build_upper_bound_lp(model, objective="complete")
        x = solve_dense_lp(problem)
        lam = x[problem.index.lambda_index]
        assert -1e-9 <= lam <= 1.0 + 1e-9
