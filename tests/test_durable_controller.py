"""Durability contract of the journaled mission controller.

The headline property: **recovery at any event prefix is bit-identical**
to the uninterrupted run — same ``allocation_snapshot()``, same
cumulative worth, same health-monitor state — and continuing from the
recovered state lands on the exact same final state.  Crashes are
simulated in-process by raising from journal hooks (the subprocess
SIGKILL variant lives in ``test_recovery_soak.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.recovery import TickClock
from repro.service.cascade import CascadeConfig
from repro.service.controller import ServiceConfig
from repro.service.durable import DurableMissionController
from repro.service.events import generate_scenario
from repro.service.journal import JournalError, JournalHooks, encode_frame
from repro.service.soak import SoakConfig, build_catalog, initial_services

N_EVENTS = 6
SOAK = SoakConfig(
    n_services=6, n_machines=4, n_events=N_EVENTS, seed=7,
    initial_active=3,
)
CATALOG = build_catalog(SOAK)
INITIAL = initial_services(SOAK, CATALOG)
EVENTS = generate_scenario(
    CATALOG, N_EVENTS, rng=SOAK.seed + 1, config=SOAK.events
)


class _Crash(BaseException):
    """Simulated process death (not a ModelError — nothing catches it)."""


def make_controller(journal_dir, *, hooks=None, snapshot_every=None):
    return DurableMissionController(
        CATALOG,
        ServiceConfig(
            default_budget=60.0,
            grace=0.25,
            cascade=CascadeConfig(
                ga_population=12, ga_max_iterations=40, ga_max_stale=15
            ),
        ),
        rng=SOAK.seed + 2,
        clock=TickClock(),
        sleep=lambda _: None,
        journal_dir=journal_dir,
        initial_active=INITIAL,
        fingerprint="durable-test-v1",
        hooks=hooks,
        snapshot_every=snapshot_every,
    )


def state_of(controller):
    return (
        controller.allocation_snapshot(),
        controller.total_worth,
        controller.monitor.export_state(),
    )


@pytest.fixture(scope="module")
def reference():
    """State triple after every prefix of the uninterrupted run."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        controller = make_controller(tmp)
        prefixes = [state_of(controller)]
        for event in EVENTS:
            controller.handle(event)
            prefixes.append(state_of(controller))
        controller.close()
    return prefixes


@pytest.mark.parametrize("prefix", range(N_EVENTS + 1))
def test_recovery_at_every_prefix_is_bit_identical(
    tmp_path, reference, prefix
):
    controller = make_controller(tmp_path)
    controller.run(list(EVENTS[:prefix]))
    # abandoned, not closed: recovery may not depend on a clean close
    recovered = make_controller(tmp_path)
    assert recovered.recovery.conserved
    assert recovered.recovery.applied == prefix
    assert recovered.recovery.reapplied == 0
    assert state_of(recovered) == reference[prefix]
    # the recovered controller finishes the mission identically
    recovered.run(list(EVENTS[prefix:]))
    assert state_of(recovered) == reference[N_EVENTS]
    recovered.close()


def test_crash_before_commit_loses_only_the_uncommitted_event(
    tmp_path, reference
):
    def die(record):
        if record["type"] == "event" and record["seq"] == 3:
            raise _Crash

    controller = make_controller(tmp_path, hooks=JournalHooks(before_append=die))
    with pytest.raises(_Crash):
        controller.run(list(EVENTS))
    recovered = make_controller(tmp_path)
    assert recovered.recovery.applied == 2
    assert recovered.recovery.truncated_uncommitted == 0
    assert state_of(recovered) == reference[2]
    recovered.close()


def test_crash_mid_commit_truncates_the_torn_tail(tmp_path, reference):
    def die(record):
        if record["type"] == "event" and record["seq"] == 4:
            raise _Crash

    controller = make_controller(tmp_path, hooks=JournalHooks(mid_append=die))
    with pytest.raises(_Crash):
        controller.run(list(EVENTS))
    recovered = make_controller(tmp_path)
    assert recovered.recovery.truncated_uncommitted == 1
    assert recovered.recovery.applied == 3
    assert recovered.recovery.conserved
    assert state_of(recovered) == reference[3]
    recovered.close()


def test_crash_after_commit_reapplies_the_pending_event(
    tmp_path, reference
):
    """Committed but unapplied: the event must be re-served, and the
    re-solve must reproduce the original result bit-identically."""

    def die(record):
        if record["type"] == "outcome" and record["seq"] == 3:
            raise _Crash

    controller = make_controller(
        tmp_path, hooks=JournalHooks(before_append=die)
    )
    with pytest.raises(_Crash):
        controller.run(list(EVENTS))
    recovered = make_controller(tmp_path)
    assert recovered.recovery.reapplied == 1
    assert recovered.recovery.applied == 3
    assert state_of(recovered) == reference[3]
    recovered.run(list(EVENTS[3:]))
    assert state_of(recovered) == reference[N_EVENTS]
    recovered.close()


def test_torn_tail_fuzz_always_recovers_last_committed(
    tmp_path, reference
):
    """Random truncations and bit-flips of the WAL tail never lose a
    committed event and never poison recovery."""
    controller = make_controller(tmp_path / "run")
    controller.run(list(EVENTS[:4]))
    controller.close()
    wal = tmp_path / "run" / "wal.log"
    committed = wal.read_bytes()
    bogus = encode_frame(
        {"type": "event", "seq": 5, "event": {"kind": "faults-cleared"}}
    )
    rng = np.random.default_rng(99)
    for _ in range(12):
        if rng.random() < 0.5:
            cut = int(rng.integers(0, len(bogus)))
            damaged = bogus[:cut]
        else:
            flipped = bytearray(bogus)
            flipped[int(rng.integers(len(bogus)))] ^= 1 << int(
                rng.integers(8)
            )
            damaged = bytes(flipped)
        wal.write_bytes(committed + damaged)
        recovered = make_controller(tmp_path / "run")
        rec = recovered.recovery
        assert rec.conserved
        # either the damage was detected (truncated) or the frame
        # still parsed as the valid seq-5 event (re-applied); committed
        # state is identical either way up to seq 4
        assert rec.applied >= 4
        if rec.applied == 4:
            assert state_of(recovered) == reference[4]
        recovered.close()
        wal.write_bytes(committed)


def test_snapshot_every_compacts_and_recovers(tmp_path, reference):
    controller = make_controller(tmp_path, snapshot_every=2)
    controller.run(list(EVENTS))
    assert controller.stats["snapshots"] == N_EVENTS // 2
    controller.close()
    recovered = make_controller(tmp_path, snapshot_every=2)
    assert recovered.recovery.snapshot_seq == N_EVENTS
    assert recovered.recovery.applied == N_EVENTS
    assert state_of(recovered) == reference[N_EVENTS]
    recovered.close()


def test_reopen_with_different_fingerprint_refuses(tmp_path):
    make_controller(tmp_path).close()
    with pytest.raises(JournalError, match="different controller"):
        DurableMissionController(
            CATALOG,
            ServiceConfig(default_budget=60.0),
            rng=1,
            clock=TickClock(),
            sleep=lambda _: None,
            journal_dir=tmp_path,
            initial_active=INITIAL,
            fingerprint="some-other-config",
        )
