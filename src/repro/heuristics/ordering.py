"""Sequential allocate-until-first-failure (the permutation→solution map).

Every heuristic in the paper translates an *ordering* of strings (a point
in the permutation space) into a mapping (a point in the solution space)
the same way: walk the ordering, map each string with the IMR, validate
the intermediate mapping with the two-stage feasibility analysis, and
**terminate the whole process at the first string that fails** — the
previous intermediate mapping is the final result (Section 5, MWF
description; the same projection is used for every GENITOR chromosome).

:func:`allocate_sequence` implements that projection on top of the
incremental :class:`~repro.core.state.AllocationState`, whose
``try_add`` performs exactly the intermediate feasibility analysis
(leaving the state untouched on failure).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.metrics import Fitness
from ..core.state import AllocationState
from ..core.model import SystemModel
from .imr import imr_map_string

__all__ = ["allocate_sequence", "SequenceOutcome"]


class SequenceOutcome:
    """Result of projecting one string ordering into the solution space.

    Attributes
    ----------
    state:
        The allocation state after the final successful addition.
    mapped_ids:
        Prefix of the ordering that was allocated.
    failed_id:
        The string at which allocation stopped, or ``None`` when the
        entire ordering allocated (complete resource allocation).
    """

    __slots__ = ("state", "mapped_ids", "failed_id")

    def __init__(
        self,
        state: AllocationState,
        mapped_ids: tuple[int, ...],
        failed_id: int | None,
    ):
        self.state = state
        self.mapped_ids = mapped_ids
        self.failed_id = failed_id

    @property
    def complete(self) -> bool:
        """True when every string in the ordering was allocated."""
        return self.failed_id is None

    def fitness(self) -> Fitness:
        return self.state.fitness()


def allocate_sequence(
    model: SystemModel,
    order: Sequence[int],
    rng: np.random.Generator | None = None,
    stop_on_failure: bool = True,
) -> SequenceOutcome:
    """Allocate strings in ``order`` with the IMR until the first failure.

    Parameters
    ----------
    model:
        The problem instance.
    order:
        A permutation (or subset) of string ids.
    rng:
        Optional generator for IMR tie-breaking.
    stop_on_failure:
        ``True`` (paper semantics): terminate at the first string whose
        intermediate mapping fails feasibility.  ``False``: skip failing
        strings and keep trying the rest — a best-effort variant used by
        the skip-ahead baseline and ablations.

    Returns
    -------
    SequenceOutcome
    """
    state = AllocationState(model)
    mapped: list[int] = []
    failed: int | None = None
    for k in order:
        assignment = imr_map_string(state, k, rng=rng)
        if state.try_add(k, assignment):
            mapped.append(k)
        else:
            failed = k
            if stop_on_failure:
                break
    return SequenceOutcome(state, tuple(mapped), failed)
