"""JSON persistence for models and allocations."""

from .dag_serialize import (
    dag_system_from_dict,
    dag_system_to_dict,
    load_dag_system,
    save_dag_system,
)
from .serialize import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    load_model,
    model_from_dict,
    model_to_dict,
    save_allocation,
    save_model,
)

__all__ = [
    "allocation_from_dict",
    "allocation_to_dict",
    "dag_system_from_dict",
    "dag_system_to_dict",
    "load_dag_system",
    "save_dag_system",
    "load_allocation",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_allocation",
    "save_model",
]
