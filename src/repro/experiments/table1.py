"""Table 1: the µ-range specifications of the three scenarios.

Table 1 is an *input* table (it defines the workload generator), so
"reproducing" it means rendering the ranges the generator actually uses
— a regression anchor guaranteeing the scenario definitions never drift
from the paper.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..workload import SCENARIOS

__all__ = ["table1_rows", "render_table1"]


def table1_rows() -> list[tuple[str, str, str]]:
    """(scenario, Lmax µ-range, P µ-range) rows, paper order."""
    rows = []
    for name in ("scenario1", "scenario2", "scenario3"):
        params = SCENARIOS[name]
        lo_l, hi_l = params.latency_mu
        lo_p, hi_p = params.period_mu
        rows.append(
            (name, f"µ ∈ [{lo_l:g}, {hi_l:g}]", f"µ ∈ [{lo_p:g}, {hi_p:g}]")
        )
    return rows


def render_table1() -> str:
    """The paper's Table 1 as text."""
    return format_table(
        ["parameter", "Lmax[k]", "P[k]"], table1_rows()
    )
