"""Micro-benchmarks of the library's hot paths.

These track the engineering that makes the reproduction tractable: the
incremental feasibility update (vs the from-scratch analysis), the IMR
projection, and one full GENITOR fitness evaluation.  Regression here
multiplies directly into experiment wall-clock time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Allocation, AllocationState, analyze
from repro.heuristics import allocate_sequence, imr_map_string, mwf_order
from repro.workload import SCENARIO_1, generate_model


@pytest.fixture(scope="module")
def paper_scale_model():
    """Full 150-string / 12-machine scenario-1 instance."""
    return generate_model(SCENARIO_1, seed=7)


@pytest.fixture(scope="module")
def loaded_state(paper_scale_model):
    """State with ~half the capacity consumed, as mid-allocation."""
    state = AllocationState(paper_scale_model)
    rng = np.random.default_rng(0)
    for s in paper_scale_model.strings[:40]:
        state.try_add(
            s.string_id, rng.integers(0, 12, size=s.n_apps)
        )
    return state


def test_incremental_try_add(benchmark, paper_scale_model, loaded_state):
    """Cost of one add+remove cycle against a loaded state."""
    target = paper_scale_model.strings[120]
    machines = np.arange(target.n_apps) % 12

    def add_remove():
        if loaded_state.try_add(target.string_id, machines):
            loaded_state.remove(target.string_id)

    benchmark(add_remove)


def test_full_analysis(benchmark, loaded_state):
    """From-scratch two-stage analysis of the same allocation —
    the baseline the incremental path must beat by orders of magnitude."""
    alloc = loaded_state.as_allocation()
    report = benchmark(analyze, alloc)
    assert report.feasible


def test_imr_single_string(benchmark, paper_scale_model, loaded_state):
    """Deriving one IMR assignment against a loaded state."""
    target = paper_scale_model.strings[130]
    assignment = benchmark(
        imr_map_string, loaded_state, target.string_id
    )
    assert assignment.shape == (target.n_apps,)


def test_chromosome_projection(benchmark, paper_scale_model):
    """One full GENITOR fitness evaluation: allocate-until-failure over
    the MWF ordering of the paper-scale instance."""
    order = mwf_order(paper_scale_model)
    outcome = benchmark(allocate_sequence, paper_scale_model, order)
    assert outcome.state.total_worth > 0


def test_allocation_construction(benchmark, paper_scale_model):
    """Materializing an Allocation from assignments (validation cost)."""
    rng = np.random.default_rng(1)
    assignments = {
        s.string_id: rng.integers(0, 12, size=s.n_apps)
        for s in paper_scale_model.strings
    }
    alloc = benchmark(Allocation, paper_scale_model, assignments)
    assert alloc.n_strings == 150
