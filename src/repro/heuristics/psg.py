"""PSG and Seeded PSG heuristics — Section 5.

The Permutation Space GENITOR heuristic couples the GENITOR engine with
the IMR projection: each chromosome is an ordering of all strings; its
fitness is the two-component metric of the mapping obtained by
allocating strings in that order until the first feasibility failure.

*Seeded* PSG additionally injects the MWF and TF orderings into the
initial population, guaranteeing the GA starts no worse than the
single-shot heuristics (replace-worst insertion preserves the elite).

The paper runs PSG with population 250 for up to 5 000 iterations and
reports the best of four independent trials per simulation run; both
knobs are exposed here (``config`` and :func:`best_of_trials`).

Performance (see ``docs/performance.md``): each run shares one
prefix-trie :class:`~repro.heuristics.projection_cache.ProjectionCache`
and one :class:`~repro.core.profile.ProfileCache` across every
chromosome projection (both on by default, toggled via
:class:`~repro.genitor.GenitorConfig`), the initial population can be
evaluated in parallel process batches (``config.init_workers``), and
:func:`best_of_trials` fans independent trials over a
:class:`~repro.parallel.SupervisedPool` (``n_workers``) with a
precomputed seed stream so parallel and serial execution produce
identical results — even under injected worker failure (see
``docs/robustness.md``).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Sequence, Union

import numpy as np

from ..core.metrics import Fitness
from ..core.model import SystemModel
from ..core.profile import ProfileCache
from ..core.state import (
    AUTO_BACKEND,
    get_default_state_backend,
    resolve_auto_backend,
)
from ..core.state_batch import BatchEvaluator
from ..genitor import Chromosome, GenitorConfig, GenitorEngine
from ..parallel import (
    ChaosPolicy,
    SharedModel,
    SupervisedPool,
    SupervisorConfig,
    Task,
    get_worker_context,
    model_sharing_enabled,
)
from .base import HeuristicResult, timed_section
from .mwf import mwf_order
from .ordering import allocate_sequence
from .projection_cache import ProjectionCache
from .tf import tf_order

__all__ = ["psg", "seeded_psg", "best_of_trials"]

#: A model, or a broadcast token resolvable via repro.parallel.
_ModelRef = Union[SystemModel, str]


def _make_fitness_fn(
    model: SystemModel,
    cache: ProjectionCache | None = None,
    profile_cache: ProfileCache | None = None,
) -> Callable[[Chromosome], Fitness]:
    """Permutation -> Fitness via the IMR allocate-until-failure projection."""

    def fitness_fn(chromosome: Chromosome) -> Fitness:
        outcome = allocate_sequence(
            model, chromosome, cache=cache, profile_cache=profile_cache
        )
        return outcome.fitness()

    return fitness_fn


def _make_batch_evaluator(
    model: SystemModel,
    proj_cache: ProjectionCache | None,
    prof_cache: ProfileCache | None,
) -> BatchEvaluator | None:
    """Bulk evaluator over the batched stacked-buffer kernel, when the
    run's scalar backend permits it.

    Returns ``None`` under the ``sanitize`` backend — its whole point is
    lockstep-checking every scalar projection, which the batched kernel
    would bypass.  The shared projection cache is forwarded only when
    the scalar side resolves to an SoA-family backend: lane snapshots
    are :class:`~repro.core.state_soa.SoaStateSnapshot` and do not
    restore into ``record``-backend states (the batch then runs
    cache-less, which changes speed, never results).
    """
    backend = get_default_state_backend()
    if backend == AUTO_BACKEND:
        backend = resolve_auto_backend(model)
    if backend == "sanitize":
        return None
    cache = proj_cache if backend in ("soa", "jit") else None
    return BatchEvaluator(model, cache=cache, profile_cache=prof_cache)


def _evaluate_batch(
    model_ref: _ModelRef,
    chromosomes: Sequence[Chromosome],
    batch_evaluation: bool = True,
) -> list[Fitness]:
    """Worker-side bulk projection (module-level: must pickle).

    ``model_ref`` is either the model itself (legacy pickle transport)
    or a broadcast token that resolves to the worker's zero-copy model
    and persistent :class:`ProfileCache`.  Each call builds its own
    projection cache — fitness is deterministic, so worker-local caches
    change nothing but speed.  Scores through the batched kernel
    (bit-identical to the scalar projection) unless disabled by config
    or the ``sanitize`` backend.
    """
    if isinstance(model_ref, str):
        model, profile_cache = get_worker_context(model_ref)
    else:
        model, profile_cache = model_ref, ProfileCache()
    if batch_evaluation:
        evaluator = _make_batch_evaluator(
            model, ProjectionCache(), profile_cache
        )
        if evaluator is not None:
            return evaluator(chromosomes)
    fitness_fn = _make_fitness_fn(
        model, cache=ProjectionCache(), profile_cache=profile_cache
    )
    return [fitness_fn(c) for c in chromosomes]


def _enter_shared_model(
    model: SystemModel, share_model: bool | None
) -> SharedModel | None:
    """Set up a model broadcast, or None for the pickle fallback."""
    share = model_sharing_enabled() if share_model is None else share_model
    if not share:
        return None
    try:
        return SharedModel(model).__enter__()
    except Exception:
        return None


def _make_initial_evaluator(
    model: SystemModel,
    config: GenitorConfig,
    fitness_fn: Callable[[Chromosome], Fitness],
) -> Callable[[Sequence[Chromosome]], list[Fitness]] | None:
    """Parallel initial-population evaluator (``config.init_workers`` > 1).

    Splits the initial chromosomes into one batch per worker and fans
    them over a :class:`~repro.parallel.SupervisedPool`, broadcasting
    the model once per worker (:mod:`repro.parallel`) instead of
    pickling it per batch.  The supervisor retries worker deaths and
    replays quarantined batches in-process; any batch that still ends
    in error degrades to the in-process ``fitness_fn``, so a crashing
    pool falls back to the serial path instead of failing the run.
    """
    if config.init_workers <= 1:
        return None

    def evaluator(chromosomes: Sequence[Chromosome]) -> list[Fitness]:
        n = len(chromosomes)
        if n == 0:
            return []
        n_workers = min(config.init_workers, n)
        bounds = np.linspace(0, n, n_workers + 1).astype(int)
        batches = [
            list(chromosomes[bounds[i]:bounds[i + 1]])
            for i in range(n_workers)
            if bounds[i] < bounds[i + 1]
        ]
        shared = _enter_shared_model(model, None)
        try:
            model_ref: _ModelRef = (
                shared.token if shared is not None else model
            )
            with SupervisedPool(
                len(batches),
                initializer=(
                    shared.initializer if shared is not None else None
                ),
                initargs=shared.initargs if shared is not None else (),
            ) as pool:
                outcomes = pool.run(
                    [
                        Task(
                            _evaluate_batch,
                            (model_ref, batch, config.batch_evaluation),
                        )
                        for batch in batches
                    ]
                )
        finally:
            if shared is not None:
                shared.__exit__(None, None, None)
        evaluated: list[Fitness] = []
        for outcome, batch in zip(outcomes, batches):
            if outcome.ok:
                evaluated.extend(outcome.value)
            else:
                evaluated.extend(fitness_fn(c) for c in batch)
        return evaluated

    return evaluator


def _run_engine(
    name: str,
    model: SystemModel,
    config: GenitorConfig,
    rng: np.random.Generator,
    seeds: tuple[Chromosome, ...],
    profile_cache: ProfileCache | None = None,
) -> HeuristicResult:
    with timed_section() as elapsed:
        proj_cache = (
            ProjectionCache(
                max_nodes=config.projection_cache_nodes,
                snapshot_stride=config.projection_snapshot_stride,
            )
            if config.use_projection_cache
            else None
        )
        prof_cache = (
            (profile_cache if profile_cache is not None else ProfileCache())
            if config.use_profile_cache
            else None
        )
        fitness_fn = _make_fitness_fn(
            model, cache=proj_cache, profile_cache=prof_cache
        )
        initial_evaluator: Callable[
            [Sequence[Chromosome]], Sequence[Fitness]
        ] | None = _make_initial_evaluator(model, config, fitness_fn)
        if initial_evaluator is None and config.batch_evaluation:
            # Serial init: score the initial population through the
            # batched kernel (bit-identical to fitness_fn; the engine's
            # steady-state single-offspring iterations stay scalar).
            initial_evaluator = _make_batch_evaluator(
                model, proj_cache, prof_cache
            )
        engine = GenitorEngine(
            genes=range(model.n_strings),
            fitness_fn=fitness_fn,
            config=config,
            rng=rng,
            seeds=seeds,
            initial_evaluator=initial_evaluator,
        )
        best = engine.run()
        # Re-project the elite to materialize its allocation.
        outcome = allocate_sequence(
            model, best.chromosome, cache=proj_cache,
            profile_cache=prof_cache,
        )
    stats = engine.stats
    if proj_cache is not None:
        stats.prefix_mean_hit_depth = proj_cache.mean_hit_depth
    if prof_cache is not None:
        stats.profile_cache_hit_rate = prof_cache.hit_rate
    wall = elapsed[0]
    return HeuristicResult(
        name=name,
        allocation=outcome.state.as_allocation(),
        fitness=best.fitness,
        order=best.chromosome,
        mapped_ids=outcome.mapped_ids,
        runtime_seconds=wall,
        stats={
            "iterations": stats.iterations,
            "evaluations": stats.evaluations,
            "cache_hits": stats.cache_hits,
            "insertions": stats.insertions,
            "elite_improvements": stats.elite_improvements,
            "stop_reason": stats.stop_reason,
            "evals_per_second": (
                stats.evaluations / wall if wall > 0.0 else 0.0
            ),
            "prefix_mean_hit_depth": stats.prefix_mean_hit_depth,
            "profile_cache_hit_rate": stats.profile_cache_hit_rate,
            "projection_cache": (
                proj_cache.stats() if proj_cache is not None else None
            ),
            "profile_cache": (
                prof_cache.stats() if prof_cache is not None else None
            ),
        },
    )


def psg(
    model: SystemModel,
    config: GenitorConfig | None = None,
    rng: np.random.Generator | int | None = None,
    profile_cache: ProfileCache | None = None,
) -> HeuristicResult:
    """Run the (unseeded) PSG heuristic.

    Parameters
    ----------
    model:
        The problem instance.
    config:
        GENITOR hyper-parameters; defaults to the paper's
        (population 250, bias 1.6, 5 000 iterations / 300 stale).
    rng:
        Seed or generator for the stochastic search.
    profile_cache:
        Optional pre-warmed profile cache to reuse (honoured only when
        ``config.use_profile_cache``); caches are pure memoization, so
        sharing one across runs changes speed, never results.
    """
    return _run_engine(
        "psg",
        model,
        config or GenitorConfig(),
        np.random.default_rng(rng),
        seeds=(),
        profile_cache=profile_cache,
    )


def seeded_psg(
    model: SystemModel,
    config: GenitorConfig | None = None,
    rng: np.random.Generator | int | None = None,
    profile_cache: ProfileCache | None = None,
) -> HeuristicResult:
    """Run the Seeded PSG heuristic (MWF + TF orderings in the initial
    population; everything else identical to PSG)."""
    seeds = (mwf_order(model), tf_order(model))
    return _run_engine(
        "seeded-psg",
        model,
        config or GenitorConfig(),
        np.random.default_rng(rng),
        seeds=seeds,
        profile_cache=profile_cache,
    )


def _trial_worker(
    heuristic: Callable[..., HeuristicResult],
    model_ref: _ModelRef,
    seed: int,
    kwargs: dict[str, Any],
) -> HeuristicResult:
    """One independent trial in a worker process (module-level: pickles).

    A broadcast-token ``model_ref`` resolves to the worker's zero-copy
    model plus its persistent :class:`ProfileCache`, which is handed to
    heuristics that accept one so profile memoization survives across
    the trials a warm worker serves.
    """
    if isinstance(model_ref, str):
        model, profile_cache = get_worker_context(model_ref)
        if (
            "profile_cache" not in kwargs
            and "profile_cache" in inspect.signature(heuristic).parameters
        ):
            kwargs = {**kwargs, "profile_cache": profile_cache}
    else:
        model = model_ref
    return heuristic(model, rng=np.random.default_rng(seed), **kwargs)


def best_of_trials(
    heuristic: Callable[..., HeuristicResult],
    model: SystemModel,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    n_workers: int = 1,
    share_model: bool | None = None,
    chaos: ChaosPolicy | None = None,
    trial_timeout: float | None = None,
    **kwargs: Any,
) -> HeuristicResult:
    """Best result over independent trials (the paper uses four).

    Each trial gets an independent RNG stream; the returned result is
    the trial with the highest fitness, with aggregate runtime and the
    per-trial fitness list recorded in ``stats``.

    With ``n_workers`` > 1 the trials fan out over a
    :class:`~repro.parallel.SupervisedPool`, with the model broadcast
    once per worker via :mod:`repro.parallel` instead of pickled per
    trial (``share_model``: default honours the ``REPRO_SHARE_MODEL``
    kill-switch; ``stats["model_transport"]`` records the transport
    used).  The per-trial seeds are drawn from the trial RNG *before*
    dispatch — the identical stream the serial path consumes — and
    results are collected by trial index, so the parallel path returns
    bit-identical results (including the ``max`` tie-break in trial
    order) to ``n_workers=1`` for the same ``rng``.  Worker deaths,
    per-trial deadline expiries (``trial_timeout`` seconds), and
    corrupted returns are retried by the supervisor and, when
    exhausted, replayed deterministically in-process;
    ``stats["trial_failures"]`` counts such recoveries and
    ``stats["supervisor"]`` carries the full
    :class:`~repro.parallel.PoolStats` counters.  ``chaos`` threads a
    seeded :class:`~repro.parallel.ChaosPolicy` fault injector through
    the workers (tests and the ``repro chaos`` soak; ignored on the
    serial path, which has no workers to kill).  The ``heuristic``
    must be picklable (the module-level :func:`psg` / :func:`seeded_psg`
    are).
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    rng = np.random.default_rng(rng)
    trial_seeds = [int(rng.integers(2**63)) for _ in range(n_trials)]
    trial_failures = 0
    transport = "none"
    supervisor_stats: dict[str, int] | None = None
    with timed_section() as elapsed:
        if n_workers == 1 or n_trials == 1:
            results: list[HeuristicResult] = [
                _trial_worker(heuristic, model, seed, kwargs)
                for seed in trial_seeds
            ]
        else:
            shared = _enter_shared_model(model, share_model)
            try:
                model_ref: _ModelRef = (
                    shared.token if shared is not None else model
                )
                transport = (
                    shared.transport if shared is not None else "pickle"
                )
                with SupervisedPool(
                    min(n_workers, n_trials),
                    initializer=(
                        shared.initializer if shared is not None else None
                    ),
                    initargs=(
                        shared.initargs if shared is not None else ()
                    ),
                    config=SupervisorConfig(task_timeout=trial_timeout),
                    chaos=chaos,
                ) as pool:
                    outcomes = pool.run(
                        [
                            Task(
                                _trial_worker,
                                (heuristic, model_ref, seed, kwargs),
                            )
                            for seed in trial_seeds
                        ]
                    )
                supervisor_stats = pool.stats.as_dict()
                trial_failures = (
                    pool.stats.retries + pool.stats.quarantined
                )
                results = []
                for outcome in outcomes:
                    if outcome.error is not None:
                        # Deterministic trial exception: re-running the
                        # pure trial cannot change it, so propagate —
                        # exactly what the serial path would do.
                        raise outcome.error
                    results.append(outcome.value)
            finally:
                if shared is not None:
                    shared.__exit__(None, None, None)
    best = max(results, key=lambda r: r.fitness)
    best.stats["n_trials"] = n_trials
    best.stats["n_workers"] = n_workers
    best.stats["trial_failures"] = trial_failures
    best.stats["model_transport"] = transport
    best.stats["supervisor"] = supervisor_stats
    best.stats["trial_fitnesses"] = [r.fitness.as_tuple() for r in results]
    best.stats["total_runtime_seconds"] = sum(
        r.runtime_seconds for r in results
    )
    best.stats["wall_seconds"] = elapsed[0]
    best.stats["total_evaluations"] = sum(
        r.stats.get("evaluations", 0) for r in results
    )
    return best
