"""Stage-2 timing estimates under resource sharing (eqs. 5 and 6).

When machines and routes are shared, the time an application (or
transfer) takes exceeds its nominal value because higher-priority work —
applications of strings with larger relative tightness — is served first.
The paper estimates, for application ``a^k_i`` on machine
``j = m[i, k]``:

.. math::

   t_{comp}^k[i] = t^k[i, j]
       + \\sum_z \\frac{P[k]}{P[z]} \\sum_p t^z[p, m[p,z]]\\, u^z[p, m[p,z]]
         \\,\\mathbb{1}(m[p,z] = j \\;\\&\\; T[z] > T[k])

and the analogous eq. (6) for transfers.  The second term is the average
waiting time contributed by every higher-tightness application sharing
the resource, scaled by the period ratio (the probability-like factor of
Fig. 2's overlap analysis).

**Aggregation identity.**  Because the inner sums are exactly the stage-1
per-string load contributions, the estimates collapse to

.. math::

   t_{comp}^k[i] = t^k[i, j] + P[k] \\cdot H_j(T[k]), \\qquad
   H_j(T) = \\sum_{z : T[z] > T} \\text{load}_{j,z}

where ``load_{j,z}`` is string ``z``'s contribution to machine ``j``'s
utilization (eq. 2), and identically for routes with eq. (3) loads.  The
waiting term equals the string's period times the *total utilization of
strictly-higher-priority work* on the shared resource.  This module
implements both the literal double sum (:func:`estimated_comp_times_literal`)
and the aggregated form (:func:`TimingEstimator`); the test suite asserts
they agree to machine precision.
"""

from __future__ import annotations

import numpy as np

from .allocation import Allocation
from .tightness import priority_key, relative_tightness
from .types import FloatArray
from .utilization import string_machine_load, string_route_load

__all__ = [
    "StringTiming",
    "estimated_comp_times_literal",
    "estimated_tran_times_literal",
    "TimingEstimator",
]


class StringTiming:
    """Estimated per-application timing of one string under an allocation.

    Attributes
    ----------
    comp_times:
        ``t_comp^k[i]`` for every application (length ``n_k``).
    tran_times:
        ``t_tran^k[i]`` for every inter-application transfer (length
        ``n_k - 1``).
    """

    __slots__ = ("string_id", "comp_times", "tran_times")

    def __init__(
        self, string_id: int, comp_times: FloatArray, tran_times: FloatArray
    ) -> None:
        self.string_id = string_id
        self.comp_times = comp_times
        self.tran_times = tran_times

    def end_to_end_latency(self) -> float:
        """Estimated time for one data set to traverse the string.

        The left-hand side of the third constraint in eq. (1):
        ``t_comp[n] + sum_{i<n} (t_comp[i] + t_tran[i])``.
        """
        return float(self.comp_times.sum() + self.tran_times.sum())

    def __repr__(self) -> str:
        return (
            f"StringTiming(string={self.string_id}, "
            f"latency={self.end_to_end_latency():.4f})"
        )


def _tightness_map(allocation: Allocation) -> dict[int, float]:
    model = allocation.model
    return {
        k: relative_tightness(
            model.strings[k], allocation.machines_for(k), model.network
        )
        for k in allocation
    }


def estimated_comp_times_literal(
    allocation: Allocation,
    string_id: int,
    tightness: dict[int, float] | None = None,
) -> FloatArray:
    """Eq. (5) exactly as printed (O(A * n) per application).

    Reference implementation used for testing the aggregated estimator;
    prefer :class:`TimingEstimator` in production code.
    """
    model = allocation.model
    if tightness is None:
        tightness = _tightness_map(allocation)
    s = model.strings[string_id]
    mach = allocation.machines_for(string_id)
    own_key = priority_key(tightness[string_id], string_id)
    out = np.empty(s.n_apps)
    for i in range(s.n_apps):
        j = int(mach[i])
        total = float(s.comp_times[i, j])
        for z in allocation:
            if priority_key(tightness[z], z) <= own_key:
                continue
            sz = model.strings[z]
            mz = allocation.machines_for(z)
            inner = 0.0
            for p in range(sz.n_apps):
                if int(mz[p]) == j:
                    inner += float(sz.work[p, int(mz[p])])
            total += (s.period / sz.period) * inner
        out[i] = total
    return out


def estimated_tran_times_literal(
    allocation: Allocation,
    string_id: int,
    tightness: dict[int, float] | None = None,
) -> FloatArray:
    """Eq. (6) exactly as printed (reference implementation)."""
    model = allocation.model
    net = model.network
    if tightness is None:
        tightness = _tightness_map(allocation)
    s = model.strings[string_id]
    mach = allocation.machines_for(string_id)
    own_key = priority_key(tightness[string_id], string_id)
    out = np.empty(max(s.n_apps - 1, 0))
    for i in range(s.n_apps - 1):
        j1, j2 = int(mach[i]), int(mach[i + 1])
        if j1 == j2:
            # Intra-machine transfer: infinite bandwidth, no queueing —
            # excluded from eq. (6) exactly as in the eq. (3) loads and
            # the incremental AllocationState profile.
            out[i] = 0.0
            continue
        total = float(s.output_sizes[i]) * net.inv_bandwidth[j1, j2]
        for z in allocation:
            if priority_key(tightness[z], z) <= own_key:
                continue
            sz = model.strings[z]
            mz = allocation.machines_for(z)
            inner = 0.0
            for p in range(sz.n_apps - 1):
                if int(mz[p]) == j1 and int(mz[p + 1]) == j2:
                    inner += float(sz.output_sizes[p]) * net.inv_bandwidth[j1, j2]
            total += (s.period / sz.period) * inner
        out[i] = total
    return out


class TimingEstimator:
    """Aggregated (vectorized) stage-2 timing estimates for an allocation.

    Precomputes per-string machine/route load vectors and tightness
    values, then answers per-string timing queries in
    ``O(strings-sharing-resources)`` using the aggregation identity in
    the module docstring.

    Parameters
    ----------
    allocation:
        The mapping to analyze.  The estimator snapshots the allocation
        at construction time.
    """

    def __init__(self, allocation: Allocation) -> None:
        model = allocation.model
        self.allocation = allocation
        self.model = model
        self.tightness = _tightness_map(allocation)
        # Per-string per-machine CPU-share loads (eq. 2 contributions)
        # and per-route loads (eq. 3 contributions).
        self._machine_load: dict[int, FloatArray] = {}
        self._route_load: dict[int, FloatArray] = {}
        for k in allocation:
            s = model.strings[k]
            m = allocation.machines_for(k)
            self._machine_load[k] = string_machine_load(s, m)
            self._route_load[k] = string_route_load(s, m, model.network)

    def _interference(self, string_id: int) -> tuple[FloatArray, FloatArray]:
        """Summed loads of all strictly-higher-priority strings.

        Returns ``(H_machine, H_route)``: a length-``M`` vector and an
        ``(M, M)`` matrix of higher-priority utilization on each resource.
        """
        model = self.model
        own_key = priority_key(self.tightness[string_id], string_id)
        Hm = np.zeros(model.n_machines)
        Hr = np.zeros((model.n_machines, model.n_machines))
        for z in self.allocation:
            if priority_key(self.tightness[z], z) > own_key:
                Hm += self._machine_load[z]
                Hr += self._route_load[z]
        return Hm, Hr

    def string_timing(self, string_id: int) -> StringTiming:
        """Estimated computation and transfer times for one string."""
        s = self.model.strings[string_id]
        mach = np.asarray(self.allocation.machines_for(string_id))
        Hm, Hr = self._interference(string_id)
        idx = np.arange(s.n_apps)
        comp = s.comp_times[idx, mach] + s.period * Hm[mach]
        if s.n_apps > 1:
            src, dst = mach[:-1], mach[1:]
            nominal = s.output_sizes * self.model.network.inv_bandwidth[src, dst]
            # Intra-machine transfers take no time and share nothing.
            tran = np.where(
                src != dst, nominal + s.period * Hr[src, dst], 0.0
            )
        else:
            tran = np.empty(0)
        return StringTiming(string_id, comp, tran)

    def all_timings(self) -> dict[int, StringTiming]:
        """Timing estimate of every mapped string.

        Sweeps strings once in descending priority order while
        accumulating resource loads, so the whole-allocation analysis
        costs ``O(A)`` resource-vector additions instead of ``O(A²)``.
        """
        model = self.model
        order = sorted(
            self.allocation,
            key=lambda k: priority_key(self.tightness[k], k),
            reverse=True,
        )
        Hm = np.zeros(model.n_machines)
        Hr = np.zeros((model.n_machines, model.n_machines))
        out: dict[int, StringTiming] = {}
        for k in order:
            s = model.strings[k]
            mach = np.asarray(self.allocation.machines_for(k))
            idx = np.arange(s.n_apps)
            comp = s.comp_times[idx, mach] + s.period * Hm[mach]
            if s.n_apps > 1:
                src, dst = mach[:-1], mach[1:]
                nominal = s.output_sizes * model.network.inv_bandwidth[src, dst]
                tran = np.where(
                    src != dst, nominal + s.period * Hr[src, dst], 0.0
                )
            else:
                tran = np.empty(0)
            out[k] = StringTiming(k, comp, tran)
            # This string now interferes with everything of lower priority.
            Hm += self._machine_load[k]
            Hr += self._route_load[k]
        return out
