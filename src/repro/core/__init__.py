"""Core problem model, feasibility analysis, and performance metric.

This subpackage is the paper's Sections 2–4: the TSCE system model, the
two-stage feasibility analysis, and the two-component performance goal.
Everything else in the library (heuristics, LP bound, simulators,
experiments) is built on these primitives.
"""

from .allocation import Allocation
from .exceptions import (
    AllocationError,
    InfeasibleError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
)
from .feasibility import (
    DEFAULT_TOL,
    FeasibilityReport,
    Violation,
    analyze,
    is_feasible,
)
from .metrics import Fitness, evaluate, system_slackness
from .model import WORTH_FACTORS, AppString, Machine, Network, SystemModel
from .numeric import ABS_TOL, REL_TOL, is_zero, isclose
from .profile import ProfileCache, StringProfile, compute_profile
from .state import (
    AUTO_BACKEND,
    STATE_BACKENDS,
    AllocationState,
    RecordAllocationState,
    RejectionReason,
    StateSnapshot,
    get_default_state_backend,
    resolve_auto_backend,
    set_default_state_backend,
)
from .state_batch import (
    BatchEvaluator,
    BatchSoaState,
    evaluate_batch,
    probe_try_add,
    project_batch,
)
from .state_jit import HAVE_NUMBA, JitAllocationState
from .state_sanitize import (
    SanitizeAllocationState,
    SanitizeStateSnapshot,
    StateDivergenceError,
)
from .state_soa import SoaAllocationState, SoaStateSnapshot
from .tightness import (
    average_tightness,
    priority_key,
    relative_tightness,
    tightness_rank_order,
)
from .timing import StringTiming, TimingEstimator
from .utilization import (
    UtilizationSnapshot,
    machine_utilization,
    route_utilization,
    string_machine_load,
    string_route_load,
)

__all__ = [
    "ABS_TOL",
    "AUTO_BACKEND",
    "Allocation",
    "AllocationError",
    "AllocationState",
    "AppString",
    "BatchEvaluator",
    "BatchSoaState",
    "DEFAULT_TOL",
    "FeasibilityReport",
    "Fitness",
    "HAVE_NUMBA",
    "InfeasibleError",
    "JitAllocationState",
    "Machine",
    "ModelError",
    "Network",
    "ProfileCache",
    "REL_TOL",
    "RecordAllocationState",
    "RejectionReason",
    "ReproError",
    "STATE_BACKENDS",
    "SanitizeAllocationState",
    "SanitizeStateSnapshot",
    "SimulationError",
    "SoaAllocationState",
    "SoaStateSnapshot",
    "SolverError",
    "StateDivergenceError",
    "StateSnapshot",
    "StringProfile",
    "StringTiming",
    "SystemModel",
    "TimingEstimator",
    "UtilizationSnapshot",
    "Violation",
    "WORTH_FACTORS",
    "analyze",
    "average_tightness",
    "compute_profile",
    "evaluate",
    "evaluate_batch",
    "get_default_state_backend",
    "is_feasible",
    "is_zero",
    "isclose",
    "machine_utilization",
    "priority_key",
    "probe_try_add",
    "project_batch",
    "relative_tightness",
    "resolve_auto_backend",
    "route_utilization",
    "set_default_state_backend",
    "string_machine_load",
    "string_route_load",
    "system_slackness",
    "tightness_rank_order",
]
