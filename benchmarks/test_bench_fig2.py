"""Benchmark + regeneration of Figure 2 (CPU-sharing overlap cases).

Figure 2's three cases have closed-form expected computation times; the
benchmark times the full regeneration (analytic model + discrete-event
simulation) and asserts exact agreement for every case.
"""

from __future__ import annotations

from repro.experiments import run_fig2


def test_fig2_overlap_cases(benchmark):
    out = benchmark(run_fig2, n_datasets=40)
    print()
    print(out["table"])
    for name, data in out.items():
        if name == "table":
            continue
        benchmark.extra_info[name] = {
            "closed_form": data["closed_form"],
            "simulated": data["simulated"],
        }
        assert data["exact"], name
