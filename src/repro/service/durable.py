"""Durable mission controller: commit-before-apply over the WAL.

:class:`DurableMissionController` wraps a
:class:`~repro.service.controller.MissionController` with the
write-ahead journal (:mod:`repro.service.journal`) so that a process
crash — at *any* instruction — loses at most the one event whose
commit had not completed:

1. **commit**: the incoming event is framed, appended, and fsync'd
   (``{"type": "event", "seq", "budget", "event"}``).  From this point
   the event is durable: every future recovery will serve it.
2. **apply**: the inner controller serves the event (the solve).
3. **outcome**: the result and the committed post-state are appended
   (``{"type": "outcome", "seq", "status", ..., "active",
   "placements"}``).

Recovery (run by the constructor) rebuilds bit-identical state without
re-running a single solve, exactly like soak resume (PR 3): load the
last snapshot, replay each (event, outcome) pair state-only — fault
accumulation and drift via
:meth:`~repro.service.controller.MissionController.apply_event_state`,
health via :meth:`~repro.service.health.HealthMonitor.observe` with the
recorded signals — then restore the last committed placements
wholesale.  At most one trailing *event* record can lack an outcome (a
crash between commit and outcome); that event is re-served live, which
is deterministic because the per-request RNG is derived from the
persisted ``(base_seed, seq)``.

What is **guaranteed** after recovery: ``allocation_snapshot()``,
cumulative worth, shed/rejected totals, and health-monitor state are
bit-identical to the uninterrupted run at the same applied count, and
the conservation invariant
``applied == (committed + truncated_uncommitted) - truncated_uncommitted``
holds (no committed event is ever lost or double-applied).

What is **not** guaranteed: the in-flight event whose commit never
completed (torn tail) is gone — callers that need exactly-once across
the commit boundary must retry idempotently; circuit-breaker and retry
state resets to closed (breakers are *load* signals, not mission
state); wall-clock latencies (``elapsed_seconds``) of replayed steps
are the recorded ones, not re-measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.exceptions import ModelError
from ..core.model import SystemModel
from ..experiments.checkpoint import fingerprint_payload
from ..faults.events import fault_from_record, fault_to_record
from ..io_utils.serialize import model_to_dict
from .controller import MissionController, RequestOutcome, ServiceConfig
from .diskchaos import DiskChaosPolicy
from .events import MissionEvent, event_from_record, event_to_record
from .health import HealthMonitor, HealthState
from .journal import JournalError, JournalHooks, JournalStore

__all__ = [
    "DurableMissionController",
    "RecoveryReport",
]


@dataclass
class RecoveryReport:
    """What one recovery pass found and did.

    The conservation counter: every event the journal ever accepted is
    either **committed** (durable: compacted into the snapshot or a
    valid WAL frame) or **truncated_uncommitted** (a torn tail frame,
    discarded).  Recovery must apply exactly the committed ones::

        applied == (committed + truncated_uncommitted)
                   - truncated_uncommitted == committed
    """

    #: events compacted into the loaded snapshot
    snapshot_seq: int = 0
    #: durable events: snapshot_seq + valid WAL event records
    committed: int = 0
    #: events whose effect is reflected in the recovered state
    applied: int = 0
    #: committed events without an outcome record, re-served live
    reapplied: int = 0
    #: events whose (journaled) apply had failed with ModelError
    failed: int = 0
    #: torn/corrupt tail frames discarded by the scan
    truncated_uncommitted: int = 0
    #: valid frames skipped as duplicates (retry ghosts, stale
    #: pre-compaction records at or below the snapshot seq)
    duplicates_skipped: int = 0
    #: outcome records for the WAL tail, in seq order (includes the
    #: outcome of a re-applied trailing event)
    tail_outcomes: list[dict[str, Any]] = field(default_factory=list)

    @property
    def attempted(self) -> int:
        """Every event the journal ever accepted bytes for."""
        return self.committed + self.truncated_uncommitted

    @property
    def conserved(self) -> bool:
        """The zero-loss invariant (see class docstring)."""
        return self.applied == self.attempted - self.truncated_uncommitted


class DurableMissionController:
    """A :class:`MissionController` whose state survives ``kill -9``.

    Construction *is* recovery: the journal directory is opened (or
    created), a torn tail is truncated, and the surviving snapshot +
    WAL records are replayed deterministically; the result is reported
    on :attr:`recovery`.  After that, :meth:`handle` serves events with
    the commit-before-apply protocol.

    Parameters
    ----------
    catalog / config / rng / clock / sleep:
        As for :class:`MissionController`.  The derived base seed is
        persisted in the journal meta on first open, so recovery
        reproduces the per-request RNG stream even for entropy seeds.
    journal_dir:
        The durable store directory (meta + snapshot + WAL).
    initial_active:
        Services active before the first event (recovery re-activates
        them when no snapshot exists yet).
    snapshot_every:
        Auto-snapshot+compact after this many served events
        (``None`` = only on explicit :meth:`snapshot` calls).
    fingerprint:
        Configuration guard for the store; defaults to a hash of the
        catalog and ``initial_active``.  Pass one that also covers
        budgets/config when those vary between runs.
    chaos / hooks / fsync / max_append_attempts:
        Passed to :class:`~repro.service.journal.JournalStore`.
    """

    def __init__(
        self,
        catalog: SystemModel,
        config: ServiceConfig | None = None,
        rng: np.random.Generator | int | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        *,
        journal_dir: str | Path,
        initial_active: Iterable[int] = (),
        snapshot_every: int | None = None,
        fingerprint: str | None = None,
        chaos: DiskChaosPolicy | None = None,
        hooks: JournalHooks | None = None,
        fsync: bool = True,
        max_append_attempts: int = 4,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ModelError("snapshot_every must be >= 1")
        self.catalog = catalog
        self.config = config or ServiceConfig()
        self._initial_active = tuple(sorted(set(initial_active)))
        self._snapshot_every = snapshot_every
        if fingerprint is None:
            fingerprint = fingerprint_payload(
                {
                    "schema": "repro/durable-mission-v1",
                    "catalog": model_to_dict(catalog),
                    "initial_active": list(self._initial_active),
                }
            )
        # candidate base seed for a *fresh* store; on reopen the
        # persisted one wins, so entropy seeds recover deterministically
        candidate_seed = int(np.random.default_rng(rng).integers(2**32))
        self.store = JournalStore(
            journal_dir,
            fingerprint,
            chaos=chaos,
            hooks=hooks,
            fsync=fsync,
            max_append_attempts=max_append_attempts,
            extra={"base_seed": candidate_seed},
        )
        base_seed = int(self.store.meta_extra.get("base_seed", candidate_seed))
        self._inner = MissionController(
            catalog, self.config, rng=base_seed, clock=clock, sleep=sleep
        )
        # rederiving via default_rng(base_seed) would reseed; pin the
        # persisted stream root directly
        self._inner._base_seed = base_seed
        self.total_worth = 0.0
        self._applied = 0
        self._last_outcome_record: dict[str, Any] = {}
        self.recovery = self._recover()

    # -- delegated read surface ------------------------------------------------

    @property
    def active(self) -> set[int]:
        return self._inner.active

    @property
    def monitor(self) -> HealthMonitor:
        return self._inner.monitor

    @property
    def health(self) -> HealthState:
        return self._inner.health

    @property
    def applied(self) -> int:
        """Events whose effect is reflected in the current state."""
        return self._applied

    def allocation_snapshot(self) -> dict[int, tuple[int, ...]]:
        return self._inner.allocation_snapshot()

    @property
    def stats(self) -> dict[str, int]:
        """Journal I/O counters (appends, injected faults, repairs)."""
        return dict(self.store.stats)

    # -- serving ---------------------------------------------------------------

    def handle(
        self, event: MissionEvent, budget: float | None = None
    ) -> RequestOutcome:
        """Serve one event: commit, apply, journal the outcome."""
        seq = self._applied + 1
        self.store.append(
            {
                "type": "event",
                "seq": seq,
                "budget": budget,
                "event": event_to_record(event),
            }
        )
        outcome = self._apply_committed(event, budget, seq)
        if outcome is None:  # pragma: no cover - live failures re-raise
            raise JournalError("live apply returned no outcome")
        if (
            self._snapshot_every is not None
            and self._applied % self._snapshot_every == 0
        ):
            self.snapshot()
        return outcome

    def run(
        self,
        events: Sequence[MissionEvent],
        budget: float | None = None,
    ) -> list[RequestOutcome]:
        """Serve an event stream; one outcome per event."""
        return [self.handle(event, budget=budget) for event in events]

    def snapshot(self) -> None:
        """Snapshot full state and compact the WAL (crash-safe)."""
        self.store.write_snapshot(self._applied, self._export_state())

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "DurableMissionController":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- commit-before-apply ---------------------------------------------------

    def _apply_committed(
        self,
        event: MissionEvent,
        budget: float | None,
        seq: int,
        *,
        during_recovery: bool = False,
    ) -> RequestOutcome | None:
        """Apply an already-committed event and journal its outcome.

        The live path re-raises an apply failure after journaling it;
        the recovery path records it and moves on (the failure already
        happened once, before the crash).
        """
        inner = self._inner
        try:
            outcome = inner.handle(event, budget=budget)
        except ModelError as exc:
            self._applied = seq
            failure = {
                "type": "outcome",
                "seq": seq,
                "status": "failed",
                "error": str(exc),
                "active": sorted(inner.active),
                "placements": {
                    str(sid): list(m)
                    for sid, m in inner.placements.items()
                },
            }
            self.store.append(failure)
            self._last_outcome_record = failure
            if during_recovery:
                return None
            raise
        self._applied = seq
        self.total_worth += outcome.worth
        record = self._outcome_record(outcome)
        self.store.append(record)
        self._last_outcome_record = record
        return outcome

    def _outcome_record(self, outcome: RequestOutcome) -> dict[str, Any]:
        inner = self._inner
        return {
            "type": "outcome",
            "seq": outcome.seq,
            "status": "ok",
            "event_kind": outcome.event_kind,
            "worth": outcome.worth,
            "slackness": outcome.slackness,
            "deadline_hit": outcome.deadline_hit,
            "elapsed_seconds": outcome.elapsed_seconds,
            "tier_used": outcome.tier_used,
            "health": outcome.health,
            "n_active": outcome.n_active,
            "n_shed": len(outcome.shed),
            "n_rejected": len(outcome.rejected),
            "active": sorted(inner.active),
            "placements": {
                str(sid): list(m) for sid, m in inner.placements.items()
            },
        }

    # -- snapshot state --------------------------------------------------------

    def _export_state(self) -> dict[str, Any]:
        inner = self._inner
        return {
            "active": sorted(inner.active),
            "placements": {
                str(sid): list(m) for sid, m in inner.placements.items()
            },
            "drift": [float(f) for f in inner._drift],
            "faults": [
                fault_to_record(f) for f in inner._fault_events
            ],
            "monitor": inner.monitor.export_state(),
            "total_worth": self.total_worth,
            "n_rejected_total": inner.n_rejected_total,
            "n_shed_total": inner.n_shed_total,
        }

    def _restore_state(self, seq: int, state: Mapping[str, Any]) -> None:
        inner = self._inner
        try:
            active = [int(s) for s in state["active"]]
            placements = {
                int(sid): tuple(int(j) for j in machines)
                for sid, machines in state["placements"].items()
            }
            inner.restore(active, placements, seq)
            inner._drift = np.asarray(
                [float(f) for f in state["drift"]], dtype=float
            )
            if inner._drift.shape != (self.catalog.n_strings,):
                raise ModelError(
                    "snapshot drift length does not match the catalog"
                )
            inner._fault_events = [
                fault_from_record(r) for r in state["faults"]
            ]
            inner.monitor.restore_state(state["monitor"])
            self.total_worth = float(state["total_worth"])
            inner.n_rejected_total = int(state["n_rejected_total"])
            inner.n_shed_total = int(state["n_shed_total"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(
                f"malformed journal snapshot state: {exc}"
            ) from exc
        self._applied = seq

    # -- recovery --------------------------------------------------------------

    def _recover(self) -> RecoveryReport:
        store = self.store
        report = RecoveryReport(
            snapshot_seq=store.snapshot_seq,
            truncated_uncommitted=store.scan.truncated_frames,
            duplicates_skipped=store.scan.duplicates_skipped,
        )
        if store.snapshot_state is not None:
            self._restore_state(store.snapshot_seq, store.snapshot_state)
        else:
            self._inner.activate(self._initial_active)

        events: dict[int, dict[str, Any]] = {}
        outcomes: dict[int, dict[str, Any]] = {}
        for record in store.tail_records:
            seq = int(record["seq"])
            if seq <= store.snapshot_seq:
                # pre-compaction ghost: a crash hit the window between
                # snapshot write and WAL reset
                report.duplicates_skipped += 1
                continue
            kind = record.get("type")
            if kind == "event":
                events[seq] = record
            elif kind == "outcome":
                outcomes[seq] = record
            else:
                raise JournalError(
                    f"unknown journal record type {kind!r} (seq {seq})"
                )

        report.committed = store.snapshot_seq + len(events)
        report.applied = store.snapshot_seq

        ordered = sorted(events)
        pending = [seq for seq in ordered if seq not in outcomes]
        # commit-before-apply admits at most ONE event without an
        # outcome, and only at the very tail
        if len(pending) > 1 or (pending and pending[0] != ordered[-1]):
            raise JournalError(
                f"journal violates commit-before-apply: events "
                f"{pending} lack outcomes"
            )

        last_state: dict[str, Any] | None = None
        for seq in ordered:
            if seq in outcomes:
                outcome = outcomes[seq]
                event = event_from_record(events[seq]["event"])
                self._replay_outcome(event, outcome)
                report.applied = seq
                if outcome.get("status") == "failed":
                    report.failed += 1
                report.tail_outcomes.append(outcome)
                last_state = outcome
        if last_state is not None:
            self._restore_placements(report.applied, last_state)

        for seq in pending:
            event = event_from_record(events[seq]["event"])
            budget = events[seq].get("budget")
            outcome = self._apply_committed(
                event,
                None if budget is None else float(budget),
                seq,
                during_recovery=True,
            )
            if outcome is None:
                report.failed += 1
            report.applied = seq
            report.reapplied += 1
            report.tail_outcomes.append(self._last_outcome_record)
        return report

    def _replay_outcome(
        self, event: MissionEvent, outcome: Mapping[str, Any]
    ) -> None:
        """State-only replay of one (event, outcome) pair — no solve."""
        inner = self._inner
        if outcome.get("status") == "failed":
            # the live apply raised before mutating state; only the
            # seq advanced (restored wholesale afterwards)
            return
        inner.apply_event_state(event)
        inner.monitor.observe(
            slackness=float(outcome["slackness"]),
            deadline_hit=bool(outcome["deadline_hit"]),
            open_breakers=0,
        )
        self.total_worth += float(outcome["worth"])
        inner.n_shed_total += int(outcome["n_shed"])
        inner.n_rejected_total += int(outcome["n_rejected"])

    def _restore_placements(
        self, seq: int, outcome: Mapping[str, Any]
    ) -> None:
        inner = self._inner
        try:
            inner.restore(
                [int(s) for s in outcome["active"]],
                {
                    int(sid): tuple(int(j) for j in machines)
                    for sid, machines in outcome["placements"].items()
                },
                seq,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(
                f"malformed outcome record at seq {seq}: {exc}"
            ) from exc
