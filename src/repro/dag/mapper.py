"""Greedy mapping of DAG strings (IMR generalized) and the
worth-first allocator over DAG workloads.

The IMR's defining ideas survive the generalization intact:

* place applications in an order that reaches the most computationally
  intensive ones early;
* choose each machine to minimize the *maximum* utilization impact
  across the machine and the routes connecting the application to its
  already-placed neighbours.

On a DAG the chain's "grow left/right" traversal becomes: visit
applications in **topological order, tie-broken by descending
computational intensity** (every predecessor is placed before its
successors, so all incoming routes are known at placement time —
the DAG analogue of growing toward the next intensive application
through its neighbours).  On chain DAGs this visits applications left
to right, and the allocator reproduces the linear IMR's behaviour on
the workloads where both apply.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.metrics import Fitness
from .feasibility import analyze_dag
from .model import DagSystem

__all__ = ["map_dag_string", "DagAllocationOutcome", "allocate_dags"]


def map_dag_string(
    system: DagSystem,
    string_id: int,
    machine_util: np.ndarray,
    route_util: np.ndarray,
) -> np.ndarray:
    """Greedy machine assignment for one DAG string.

    ``machine_util`` / ``route_util`` are the utilizations committed by
    previously allocated strings (not mutated).
    """
    s = system.strings[string_id]
    net = system.network
    M = system.n_machines
    intensity = s.computational_intensity()

    # Topological order with intensity as the tie-break: process ready
    # applications most-intensive-first (Kahn's algorithm with a
    # priority choice).
    indegree = {i: s.graph.in_degree(i) for i in range(s.n_apps)}
    ready = [i for i, d in indegree.items() if d == 0]
    order: list[int] = []
    while ready:
        ready.sort(key=lambda i: (-intensity[i], i))
        node = ready.pop(0)
        order.append(node)
        for succ in s.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)

    part_machine = np.zeros(M)
    part_route = np.zeros((M, M))
    assignment = np.full(s.n_apps, -1, dtype=np.int64)
    idx_share = s.comp_times * s.cpu_utils / s.period  # (n, M)

    for i in order:
        m_util = machine_util + part_machine + idx_share[i]
        score = m_util.copy()
        placed_preds = [
            p for p in s.predecessors(i) if assignment[p] >= 0
        ]
        for p in placed_preds:
            jp = int(assignment[p])
            demand = s.edge_bytes(p, i) / s.period
            r_util = (
                route_util[jp, :]
                + part_route[jp, :]
                + demand * net.inv_bandwidth[jp, :]
            )
            score = np.maximum(score, r_util)
        j = int(np.argmin(score))
        assignment[i] = j
        part_machine[j] += idx_share[i, j]
        for p in placed_preds:
            jp = int(assignment[p])
            part_route[jp, j] += (
                s.edge_bytes(p, i) / s.period * net.inv_bandwidth[jp, j]
            )
    return assignment


class DagAllocationOutcome:
    """Result of the sequential DAG allocation."""

    __slots__ = ("system", "assignments", "mapped_ids", "failed_id", "report")

    def __init__(self, system, assignments, mapped_ids, failed_id, report):
        self.system = system
        self.assignments = assignments
        self.mapped_ids = mapped_ids
        self.failed_id = failed_id
        self.report = report

    @property
    def complete(self) -> bool:
        return self.failed_id is None

    def total_worth(self) -> float:
        return float(
            sum(self.system.strings[k].worth for k in self.mapped_ids)
        )

    def fitness(self) -> Fitness:
        return Fitness(
            worth=self.total_worth(),
            slackness=self.report.slackness(),
        )


def allocate_dags(
    system: DagSystem,
    order: Sequence[int] | None = None,
) -> DagAllocationOutcome:
    """Allocate DAG strings until the first feasibility failure.

    ``order`` defaults to worth descending (MWF).  Each string is
    mapped greedily and the full two-stage DAG analysis validates the
    intermediate allocation; the paper's stop-at-first-failure rule
    applies.
    """
    if order is None:
        order = sorted(
            range(system.n_strings),
            key=lambda k: (-system.strings[k].worth, k),
        )
    assignments: dict[int, np.ndarray] = {}
    machine_util = np.zeros(system.n_machines)
    route_util = np.zeros((system.n_machines, system.n_machines))
    mapped: list[int] = []
    failed: int | None = None
    report = analyze_dag(system, {})
    for k in order:
        candidate = map_dag_string(system, k, machine_util, route_util)
        trial = dict(assignments)
        trial[k] = candidate
        trial_report = analyze_dag(system, trial)
        if trial_report.feasible:
            assignments = trial
            report = trial_report
            mapped.append(k)
            from .feasibility import _loads

            m_load, r_load = _loads(system, k, candidate)
            machine_util += m_load
            route_util += r_load
        else:
            failed = k
            break
    return DagAllocationOutcome(
        system=system,
        assignments=assignments,
        mapped_ids=tuple(mapped),
        failed_id=failed,
        report=report,
    )
