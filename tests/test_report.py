"""Integration tests for the one-shot reproduction report
(repro.experiments.report)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    ReportSection,
    full_report,
)

# One-third size keeps every scenario's load character (matching the
# validated smoke preset); 0.25 breaks scenario 3's "lightly loaded"
# guarantee at n=6 strings.
TINY = ExperimentScale(
    name="tiny",
    n_runs=2,
    size_factor=1 / 3,
    population_size=10,
    max_iterations=40,
    max_stale_iterations=20,
    n_trials=1,
)


class TestReportSection:
    def test_markdown_structure(self):
        section = ReportSection(
            artifact="Table X",
            paper_finding="something holds",
            measured="a  b\n1  2",
            checks={"it holds": True, "it also holds": False},
            seconds=1.25,
        )
        md = section.to_markdown()
        assert md.startswith("### Table X")
        assert "- [x] it holds" in md
        assert "- [ ] it also holds" in md
        assert "1.2s" in md
        assert not section.passed

    def test_passed_when_all_checks_true(self):
        section = ReportSection("a", "b", "c", checks={"ok": True})
        assert section.passed


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report(scale=TINY)

    def test_covers_every_artifact(self, report):
        artifacts = [s.artifact for s in report.sections]
        assert any("Table 1" in a for a in artifacts)
        assert any("Figure 2" in a for a in artifacts)
        assert any("Figure 3" in a for a in artifacts)
        assert any("Figure 4" in a for a in artifacts)
        assert any("Figure 5" in a for a in artifacts)
        assert any("Survivability" in a for a in artifacts)
        assert any("Runtime" in a for a in artifacts)
        assert len(report.sections) == 7

    def test_all_checks_pass_at_tiny_scale(self, report):
        failing = [
            (s.artifact, name)
            for s in report.sections
            for name, ok in s.checks.items()
            if not ok
        ]
        assert not failing, failing
        assert report.all_passed

    def test_markdown_render(self, report):
        md = report.to_markdown()
        assert md.startswith("## Reproduction report")
        assert "tiny" in md
        assert md.count("###") == len(report.sections)

    def test_sections_record_runtime(self, report):
        assert all(s.seconds >= 0 for s in report.sections)
