"""ASCII bar charts mirroring the paper's figures.

Figures 3–5 are bar charts (one bar per heuristic plus the upper bound).
With no plotting backend available offline, the experiment harness
renders them as horizontal ASCII bars with error whiskers — enough to
read off the ordering and rough magnitudes the reproduction targets.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    errors: Sequence[float] | None = None,
    width: int = 50,
    title: str = "",
    value_format: str = "{:.4g}",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value.

    Parameters
    ----------
    labels / values:
        One bar per entry, drawn in the given order (the paper's figure
        order is PSG, MWF, TF, Seeded PSG, UB).
    errors:
        Optional 95%-CI half-widths, printed after the value as ``±e``.
    width:
        Character width of the longest bar.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if errors is not None and len(errors) != len(values):
        raise ValueError("errors must match values length")
    if width < 1:
        raise ValueError("width must be >= 1")
    vmax = max((v for v in values if v > 0), default=0.0)
    label_w = max((len(s) for s in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for i, (label, value) in enumerate(zip(labels, values)):
        n = 0 if vmax <= 0 else int(round(width * max(value, 0.0) / vmax))
        bar = "█" * n
        val = value_format.format(value)
        if errors is not None:
            val += f" ± {value_format.format(errors[i])}"
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {val}")
    return "\n".join(lines)
