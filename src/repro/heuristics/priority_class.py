"""Class-based allocation — the Section-4 alternate worth scheme.

The paper notes an alternative to its additive worth model: "higher
worth strings have a value of more than the total value of any number
of strings of medium or low worth.  In such a scheme, high worth
strings can be put in a special class.  The content of this class is
allocated first in the system" (citing Kim et al.).  The paper leaves
it out of scope; this module implements it as an extension.

Strings are partitioned into classes by worth level (100 > 10 > 1) and
allocated class by class, with a secondary criterion ordering strings
*within* each class — tightness by default (the hard-to-place strings
of each class go first), or plain id order.  Because the classes are
lexicographically dominant, the resulting ordering guarantees that no
lower-class string is attempted before every higher-class string, which
is exactly the semantics of the special-class scheme under the
allocate-until-first-failure projection.
"""

from __future__ import annotations

import numpy as np

from ..core.model import SystemModel
from ..core.tightness import average_tightness
from .base import HeuristicResult, timed_section
from .ordering import allocate_sequence

__all__ = ["class_order", "class_based"]


def class_order(
    model: SystemModel, within: str = "tightness"
) -> tuple[int, ...]:
    """Ordering: worth class descending, then the within-class criterion.

    Parameters
    ----------
    model:
        The problem instance.
    within:
        ``"tightness"`` (average tightness descending — TF inside each
        class) or ``"id"`` (stable id order inside each class).
    """
    if within not in ("tightness", "id"):
        raise ValueError(f"unknown within-class criterion {within!r}")
    worths = np.array([s.worth for s in model.strings])
    ids = np.arange(model.n_strings)
    if within == "tightness":
        secondary = -np.array([
            average_tightness(s, model.network) for s in model.strings
        ])
    else:
        secondary = ids.astype(float)
    # lexsort: last key primary -> worth desc, then secondary asc, then id.
    order = np.lexsort((ids, secondary, -worths))
    return tuple(int(k) for k in order)


def class_based(
    model: SystemModel,
    within: str = "tightness",
    rng: np.random.Generator | None = None,
) -> HeuristicResult:
    """Allocate worth classes in strict precedence order.

    Within the allocate-until-first-failure projection the class scheme
    reduces to a composite ordering; the result records the within-class
    criterion in ``stats``.
    """
    with timed_section() as elapsed:
        order = class_order(model, within=within)
        outcome = allocate_sequence(model, order, rng=rng)
    return HeuristicResult(
        name=f"class-{within}",
        allocation=outcome.state.as_allocation(),
        fitness=outcome.fitness(),
        order=order,
        mapped_ids=outcome.mapped_ids,
        runtime_seconds=elapsed[0],
        stats={
            "within": within,
            "failed_id": outcome.failed_id,
            "complete": outcome.complete,
        },
    )
