"""Discrete-event simulator for allocated string systems.

Executes an :class:`~repro.core.allocation.Allocation` on the fluid
resource model of :mod:`repro.des.fluid`:

* every mapped string releases a data set at the head application each
  period (periods aligned at t = 0, the paper's worst-case overlap
  convention);
* each application processes a data set as a cap-limited fluid job on
  its machine (work ``t·u``, cap ``u``), with priority given by the
  string's relative tightness — the paper's local scheduling policy;
* each inter-application transfer is a strict-priority fluid job on its
  route (work ``O`` bytes, cap = route bandwidth); intra-machine
  transfers complete instantly;
* application ``i+1`` starts on a data set the moment its transfer from
  application ``i`` arrives (pipelined execution — different data sets
  of one string are in flight simultaneously).

The simulator exists to *validate* the paper's analytic stage-2 model:
eqs. (5)–(6) should approximate the measured mean computation/transfer
spans, exactly reproducing the three CPU-sharing cases of Fig. 2 (see
:mod:`repro.des.validate` and the fig2 experiment).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ..core.allocation import Allocation
from ..core.exceptions import SimulationError
from ..core.tightness import relative_tightness
from .fluid import FluidResource, Job
from .trace import SimulationTrace, SpanRecord

__all__ = ["StringSimulator", "simulate_allocation"]


class StringSimulator:
    """Event-driven execution of an allocation.

    Parameters
    ----------
    allocation:
        The mapping to execute (feasibility not required — an
        over-committed system simply shows growing delays).
    n_datasets:
        Number of data sets released per string (string ``k`` releases
        at ``phase_k + d·P[k]`` for ``d = 0..n_datasets-1``).
    max_events:
        Safety guard against runaway simulations of badly over-committed
        systems.
    phases:
        Optional per-string release offsets (string id -> seconds).  The
        default aligns every period at t = 0 — the paper's worst-case
        overlap convention, under which eqs. (5)-(6) are derived.  The
        paper notes the estimates' accuracy "depends on ... how the data
        arrivals of different applications are relatively phased";
        passing random phases lets the validation quantify that.
    """

    def __init__(
        self,
        allocation: Allocation,
        n_datasets: int = 20,
        max_events: int = 2_000_000,
        phases: dict[int, float] | None = None,
    ):
        if n_datasets < 1:
            raise SimulationError("n_datasets must be >= 1")
        self.allocation = allocation
        self.model = allocation.model
        self.n_datasets = n_datasets
        self.max_events = max_events
        self.phases = dict(phases or {})
        for k, phase in self.phases.items():
            if k not in allocation:
                raise SimulationError(f"phase for unmapped string {k}")
            if phase < 0:
                raise SimulationError(f"negative phase for string {k}")
        self.trace = SimulationTrace()

        net = self.model.network
        self._machines = [
            FluidResource(1.0, name=f"machine-{j}")
            for j in range(self.model.n_machines)
        ]
        self._routes: dict[tuple[int, int], FluidResource] = {}
        for k in allocation:
            m = allocation.machines_for(k)
            for i in range(len(m) - 1):
                j1, j2 = int(m[i]), int(m[i + 1])
                if j1 != j2 and (j1, j2) not in self._routes:
                    self._routes[(j1, j2)] = FluidResource(
                        float(net.bandwidth[j1, j2]), name=f"route-{j1}->{j2}"
                    )
        self._tightness = {
            k: relative_tightness(
                self.model.strings[k], allocation.machines_for(k), net
            )
            for k in allocation
        }
        # event heap: (time, seq, kind, payload)
        self._heap: list[tuple[float, int, str, tuple]] = []
        self._seq = itertools.count()
        self._scan_version = 0
        self._release_times: dict[tuple[int, int], float] = {}

    # -- helpers -----------------------------------------------------------------

    def _priority(self, k: int, dataset: int, app: int) -> tuple:
        """Job priority: tightness, then string id, then FIFO by data set."""
        return (self._tightness[k], -k, -dataset, -app)

    def _push(self, time: float, kind: str, payload: tuple) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))

    def _all_resources(self):
        yield from self._machines
        yield from self._routes.values()

    def _schedule_scan(self) -> None:
        """(Re)schedule the single pending completion scan."""
        nxt = min(
            (r.next_completion() for r in self._all_resources()),
            default=np.inf,
        )
        if np.isfinite(nxt):
            self._scan_version += 1
            self._push(nxt, "scan", (self._scan_version,))

    # -- job lifecycle ---------------------------------------------------------------

    def _start_comp(self, k: int, i: int, dataset: int, now: float) -> None:
        s = self.model.strings[k]
        j = self.allocation.machine_of(k, i)
        job = Job(
            work=float(s.work[i, j]),
            cap=float(s.cpu_utils[i, j]),
            priority=self._priority(k, dataset, i),
            label=f"comp k={k} i={i} d={dataset}",
        )
        job.on_complete = lambda _job, t, k=k, i=i, d=dataset: (
            self._finish_comp(k, i, d, t)
        )
        self._machines[j].add(job, now)

    def _finish_comp(self, k: int, i: int, dataset: int, now: float) -> None:
        release = self._release_times.pop(("comp", k, i, dataset), None)
        if release is None:
            raise SimulationError(f"unknown comp completion k={k} i={i}")
        self.trace.record_comp(SpanRecord(k, i, dataset, release, now))
        s = self.model.strings[k]
        if i + 1 < s.n_apps:
            self._begin_transfer(k, i, dataset, now)
        else:
            head_release = self._release_times.pop(("head", k, dataset))
            self.trace.record_latency(k, dataset, head_release, now)

    def _begin_transfer(self, k: int, i: int, dataset: int, now: float) -> None:
        s = self.model.strings[k]
        j1 = self.allocation.machine_of(k, i)
        j2 = self.allocation.machine_of(k, i + 1)
        self._release_times[("tran", k, i, dataset)] = now
        if j1 == j2:
            # Infinite intra-machine bandwidth: instantaneous delivery.
            self.trace.record_tran(SpanRecord(k, i, dataset, now, now))
            self._arrive_input(k, i + 1, dataset, now)
            return
        job = Job(
            work=float(s.output_sizes[i]),
            cap=float(self.model.network.bandwidth[j1, j2]),
            priority=self._priority(k, dataset, i),
            label=f"tran k={k} i={i} d={dataset}",
        )
        job.on_complete = lambda _job, t, k=k, i=i, d=dataset: (
            self._finish_transfer(k, i, d, t)
        )
        self._routes[(j1, j2)].add(job, now)

    def _finish_transfer(self, k: int, i: int, dataset: int, now: float) -> None:
        release = self._release_times.pop(("tran", k, i, dataset))
        self.trace.record_tran(SpanRecord(k, i, dataset, release, now))
        self._arrive_input(k, i + 1, dataset, now)

    def _arrive_input(self, k: int, i: int, dataset: int, now: float) -> None:
        self._release_times[("comp", k, i, dataset)] = now
        self._start_comp(k, i, dataset, now)

    # -- the run -----------------------------------------------------------------------

    def run(self) -> SimulationTrace:
        """Execute the simulation; returns the collected trace."""
        for k in self.allocation:
            period = self.model.strings[k].period
            phase = self.phases.get(k, 0.0)
            for d in range(self.n_datasets):
                self._push(phase + d * period, "release", (k, d))

        events = 0
        while self._heap:
            events += 1
            if events > self.max_events:
                raise SimulationError(
                    f"exceeded {self.max_events} events — system badly "
                    "over-committed?"
                )
            time, _seq, kind, payload = heapq.heappop(self._heap)
            if kind == "scan":
                (version,) = payload
                if version != self._scan_version:
                    continue  # superseded scan
                for resource in self._all_resources():
                    for job in resource.pop_completed(time):
                        job.on_complete(job, time)
            elif kind == "release":
                k, d = payload
                self._release_times[("head", k, d)] = time
                self._arrive_input(k, 0, d, time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")
            self._schedule_scan()
        return self.trace


def simulate_allocation(
    allocation: Allocation,
    n_datasets: int = 20,
    max_events: int = 2_000_000,
    phases: dict[int, float] | None = None,
) -> SimulationTrace:
    """Convenience wrapper: build, run, and return the trace."""
    return StringSimulator(
        allocation, n_datasets=n_datasets, max_events=max_events,
        phases=phases,
    ).run()
