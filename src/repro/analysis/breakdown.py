"""Allocation diagnostics: per-resource and per-string breakdowns.

Renders what operators actually ask of an allocation: which machines
and routes carry how much load and from whom, which resource binds the
slackness, and how close each string sits to its QoS bounds.  Used by
``repro describe`` and the examples.
"""

from __future__ import annotations

import numpy as np

from ..core.allocation import Allocation
from ..core.feasibility import analyze
from ..core.metrics import system_slackness
from ..core.timing import TimingEstimator
from ..core.utilization import string_machine_load
from .tables import format_table

__all__ = [
    "machine_breakdown",
    "route_breakdown",
    "string_qos_margins",
    "describe_allocation",
]


def machine_breakdown(allocation: Allocation) -> list[dict]:
    """Per-machine load report.

    Each row: machine index, utilization, number of hosted applications,
    and the per-string load shares (descending).
    """
    model = allocation.model
    totals = np.zeros(model.n_machines)
    per_string: dict[int, np.ndarray] = {}
    for k in allocation:
        load = string_machine_load(
            model.strings[k], allocation.machines_for(k)
        )
        per_string[k] = load
        totals += load
    rows = []
    for j in range(model.n_machines):
        shares = sorted(
            (
                (float(load[j]), k)
                for k, load in per_string.items()
                if load[j] > 0
            ),
            reverse=True,
        )
        rows.append({
            "machine": j,
            "utilization": float(totals[j]),
            "n_apps": len(allocation.apps_on_machine(j)),
            "top_strings": [(k, share) for share, k in shares[:3]],
        })
    return rows


def route_breakdown(
    allocation: Allocation, top: int = 10
) -> list[dict]:
    """The ``top`` most-utilized inter-machine routes with their users."""
    model = allocation.model
    from ..core.utilization import route_utilization

    util = route_utilization(allocation)
    M = model.n_machines
    entries = [
        (float(util[j1, j2]), j1, j2)
        for j1 in range(M)
        for j2 in range(M)
        if j1 != j2 and util[j1, j2] > 0
    ]
    entries.sort(reverse=True)
    rows = []
    for value, j1, j2 in entries[:top]:
        rows.append({
            "route": (j1, j2),
            "utilization": value,
            "transfers": allocation.transfers_on_route(j1, j2),
        })
    return rows


def string_qos_margins(allocation: Allocation) -> list[dict]:
    """Per-string distance to the QoS bounds.

    ``latency_margin`` and ``throughput_margin`` are fractions of the
    respective bound still unused (negative = violated).
    """
    model = allocation.model
    estimator = TimingEstimator(allocation)
    rows = []
    for k, timing in estimator.all_timings().items():
        s = model.strings[k]
        latency = timing.end_to_end_latency()
        worst_comp = float(timing.comp_times.max(initial=0.0))
        worst_tran = float(timing.tran_times.max(initial=0.0))
        worst_stage = max(worst_comp, worst_tran)
        rows.append({
            "string": k,
            "name": s.name,
            "worth": s.worth,
            "latency": latency,
            "latency_bound": s.max_latency,
            "latency_margin": 1.0 - latency / s.max_latency,
            "throughput_margin": 1.0 - worst_stage / s.period,
        })
    rows.sort(key=lambda r: r["latency_margin"])
    return rows


def describe_allocation(allocation: Allocation) -> str:
    """Full text report: feasibility, slackness, binding resource,
    machine loads, hottest routes, and the tightest strings."""
    report = analyze(allocation)
    snapshot = report.utilization
    lines = [report.summary()]
    lines.append(
        f"slackness Λ = {system_slackness(snapshot):.4f} "
        f"(binding: {snapshot.binding_resource()})"
    )
    lines.append("")
    lines.append("machine loads:")
    rows = [
        (
            f"machine {r['machine']}",
            f"{r['utilization']:.4f}",
            r["n_apps"],
            ", ".join(
                f"s{k}:{share:.3f}" for k, share in r["top_strings"]
            ) or "-",
        )
        for r in machine_breakdown(allocation)
    ]
    lines.append(
        format_table(["resource", "U", "apps", "top strings"], rows)
    )
    routes = route_breakdown(allocation, top=5)
    if routes:
        lines.append("")
        lines.append("hottest routes:")
        rows = [
            (
                f"{r['route'][0]}->{r['route'][1]}",
                f"{r['utilization']:.4f}",
                len(r["transfers"]),
            )
            for r in routes
        ]
        lines.append(format_table(["route", "U", "transfers"], rows))
    margins = string_qos_margins(allocation)
    if margins:
        lines.append("")
        lines.append("tightest strings (by latency margin):")
        rows = [
            (
                f"s{r['string']} ({r['name']})",
                f"{r['worth']:g}",
                f"{r['latency']:.2f}/{r['latency_bound']:.2f}",
                f"{r['latency_margin']:.1%}",
                f"{r['throughput_margin']:.1%}",
            )
            for r in margins[:8]
        ]
        lines.append(format_table(
            ["string", "worth", "latency", "lat. margin", "thr. margin"],
            rows,
        ))
    return "\n".join(lines)
