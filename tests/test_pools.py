"""Unit tests for the machine-pool generalization (repro.pools)."""

import numpy as np
import pytest

from repro.core import AllocationState, ModelError, analyze
from repro.heuristics import imr_map_string, most_worth_first
from repro.pools import (
    Pool,
    PooledSystem,
    allocate_pooled,
    least_utilized_dispatch,
    pool_utilization,
    pooled_map_string,
    singleton_pools,
)
from repro.workload import SCENARIO_1, SCENARIO_3, generate_model

from conftest import build_string, uniform_network


class TestPool:
    def test_basic(self):
        p = Pool(0, [2, 0, 2], name="fwd")
        assert p.machines == (0, 2)
        assert p.size == 2
        assert 2 in p and 1 not in p

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            Pool(0, [])

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            Pool(-1, [0])

    def test_default_name(self):
        assert Pool(3, [1]).name == "pool-3"


class TestPooledSystem:
    def test_singleton_helper(self, small_model):
        system = PooledSystem(small_model, singleton_pools(3))
        assert system.n_pools == 3
        assert system.is_singleton()
        assert system.pool_of(2) == 2

    def test_partition_enforced_overlap(self, small_model):
        with pytest.raises(ModelError, match="belongs to pools"):
            PooledSystem(
                small_model, [Pool(0, [0, 1]), Pool(1, [1, 2])]
            )

    def test_partition_enforced_coverage(self, small_model):
        with pytest.raises(ModelError, match="belong to no pool"):
            PooledSystem(small_model, [Pool(0, [0, 1])])

    def test_unknown_machine(self, small_model):
        with pytest.raises(ModelError):
            PooledSystem(
                small_model, [Pool(0, [0, 1, 2]), Pool(1, [5])]
            )

    def test_index_positions(self, small_model):
        with pytest.raises(ModelError):
            PooledSystem(
                small_model, [Pool(1, [0, 1, 2])]
            )

    def test_pool_of(self, small_model):
        system = PooledSystem(
            small_model, [Pool(0, [0, 2]), Pool(1, [1])]
        )
        assert system.pool_of(0) == 0
        assert system.pool_of(1) == 1
        assert system.pool_of(2) == 0
        assert not system.is_singleton()


class TestPoolUtilization:
    def test_aggregates_members(self, small_model):
        system = PooledSystem(
            small_model, [Pool(0, [0, 1]), Pool(1, [2])]
        )
        machine_util = np.array([0.4, 0.2, 0.9])
        util = pool_utilization(system, machine_util)
        assert util[0] == pytest.approx(0.3)  # (0.4+0.2)/2
        assert util[1] == pytest.approx(0.9)


class TestDispatch:
    def test_picks_cheapest_member(self):
        net = uniform_network(3)
        # machine 1 is much cheaper for the app
        import numpy as np
        from repro.core import AppString, SystemModel

        comp = np.array([[8.0, 2.0, 8.0]])
        util = np.array([[1.0, 1.0, 1.0]])
        s = AppString(0, 1, 10.0, 100.0, comp, util, np.empty(0))
        model = SystemModel(net, [s])
        system = PooledSystem(model, [Pool(0, [0, 1, 2])])
        state = AllocationState(model)
        j = least_utilized_dispatch(
            system, state, np.zeros(3), 0, 0, 0
        )
        assert j == 1

    def test_accounts_for_committed_load(self, small_model):
        system = PooledSystem(small_model, [Pool(0, [0, 1, 2])])
        state = AllocationState(small_model)
        state.try_add(2, [0])  # load machine 0
        j = least_utilized_dispatch(
            system, state, np.zeros(3), 0, 1, 0
        )
        assert j in (1, 2)


class TestSingletonEquivalence:
    """With one machine per pool, the pooled mapper IS the paper's IMR."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pooled_imr_matches_plain_imr(self, seed):
        model = generate_model(
            SCENARIO_1.scaled(n_strings=15, n_machines=5), seed=seed
        )
        system = PooledSystem(model, singleton_pools(5))
        flat = AllocationState(model)
        pooled = AllocationState(model)
        for k in range(model.n_strings):
            a_flat = imr_map_string(flat, k)
            a_pool = pooled_map_string(system, pooled, k)
            np.testing.assert_array_equal(a_flat, a_pool)
            ok_flat = flat.try_add(k, a_flat)
            ok_pool = pooled.try_add(k, a_pool)
            assert ok_flat == ok_pool

    def test_pooled_mwf_matches_flat_mwf(self, scenario1_small):
        model = scenario1_small
        system = PooledSystem(
            model, singleton_pools(model.n_machines)
        )
        flat = most_worth_first(model)
        pooled = allocate_pooled(system)
        assert pooled.state.total_worth == flat.fitness.worth
        assert tuple(pooled.mapped_ids) == flat.mapped_ids


class TestPooledAllocation:
    def test_multi_machine_pools_feasible(self):
        model = generate_model(
            SCENARIO_1.scaled(n_strings=20, n_machines=6), seed=7
        )
        system = PooledSystem(
            model, [Pool(0, [0, 1, 2]), Pool(1, [3, 4, 5])]
        )
        out = allocate_pooled(system)
        assert analyze(out.state.as_allocation()).feasible
        assert out.state.total_worth > 0

    def test_complete_on_light_load(self):
        model = generate_model(
            SCENARIO_3.scaled(n_strings=6, n_machines=4), seed=8
        )
        system = PooledSystem(
            model, [Pool(0, [0, 1]), Pool(1, [2, 3])]
        )
        out = allocate_pooled(system)
        assert out.complete
        assert len(out.mapped_ids) == 6

    def test_custom_order(self, small_model):
        system = PooledSystem(small_model, singleton_pools(3))
        out = allocate_pooled(system, order=[2, 0])
        assert set(out.mapped_ids) == {2, 0}

    def test_dispatcher_exploits_intra_pool_heterogeneity(self):
        """Global mapper sees pool aggregates, but the dispatcher must
        still land the app on the cheap machine inside the pool."""
        net = uniform_network(4)
        import numpy as np
        from repro.core import AppString, SystemModel

        comp = np.array([[9.0, 1.0, 9.0, 9.0]])
        util = np.array([[1.0, 1.0, 1.0, 1.0]])
        s = AppString(0, 1, 10.0, 100.0, comp, util, np.empty(0))
        model = SystemModel(net, [s])
        system = PooledSystem(
            model, [Pool(0, [0, 1]), Pool(1, [2, 3])]
        )
        out = allocate_pooled(system)
        assert out.state.machines_for(0)[0] == 1
