"""Unit tests for the workload-surge analysis (repro.robustness.surge)."""

import numpy as np
import pytest

from repro.core import Allocation, SystemModel, analyze
from repro.core.exceptions import ModelError
from repro.heuristics import most_worth_first
from repro.robustness import (
    allocation_survives,
    max_absorbable_surge,
    stage1_surge_limit,
    surge_model,
    transfer_allocation,
)
from repro.workload import SCENARIO_3, generate_model

from conftest import build_string, uniform_network


class TestSurgeModel:
    def test_scales_times_and_outputs(self, small_model):
        surged = surge_model(small_model, 0.5)
        s0, s0s = small_model.strings[0], surged.strings[0]
        np.testing.assert_allclose(s0s.comp_times, s0.comp_times * 1.5)
        np.testing.assert_allclose(s0s.cpu_utils, s0.cpu_utils)
        assert s0s.period == s0.period
        assert s0s.max_latency == s0.max_latency

    def test_scales_output_sizes(self, small_model):
        surged = surge_model(small_model, 1.0)
        np.testing.assert_allclose(
            surged.strings[0].output_sizes,
            small_model.strings[0].output_sizes * 2.0,
        )

    def test_zero_surge_identity(self, small_model):
        surged = surge_model(small_model, 0.0)
        assert surged.strings[0] == small_model.strings[0]

    def test_negative_rejected(self, small_model):
        with pytest.raises(ValueError):
            surge_model(small_model, -0.1)


class TestSurvival:
    def test_survives_zero(self, small_allocation):
        assert allocation_survives(small_allocation, 0.0)

    def test_monotone_in_delta(self, small_allocation):
        """If the allocation fails at δ it must fail at every larger δ."""
        deltas = np.linspace(0.0, 12.0, 15)
        flags = [allocation_survives(small_allocation, d) for d in deltas]
        # once False, never True again
        seen_false = False
        for f in flags:
            if not f:
                seen_false = True
            if seen_false:
                assert not f

    def test_transfer_allocation_preserves_assignments(self, small_allocation):
        surged = surge_model(small_allocation.model, 0.3)
        moved = transfer_allocation(small_allocation, surged)
        for k in small_allocation:
            np.testing.assert_array_equal(
                moved.machines_for(k), small_allocation.machines_for(k)
            )


class TestTransferContract:
    """Structurally different targets must raise a clear ModelError —
    the fault injector's evict/transfer path depends on this."""

    def test_wrong_machine_count(self, small_allocation):
        strings = [
            build_string(k, s.n_apps, 4)
            for k, s in enumerate(small_allocation.model.strings)
        ]
        four_machines = SystemModel(uniform_network(4), strings)
        with pytest.raises(ModelError, match="cannot transfer"):
            transfer_allocation(small_allocation, four_machines)

    def test_missing_string_id(self, small_allocation):
        fewer = SystemModel(
            uniform_network(3),
            [build_string(0, 3, 3), build_string(1, 2, 3)],
        )
        with pytest.raises(ModelError, match="does not exist"):
            transfer_allocation(small_allocation, fewer)

    def test_mismatched_app_count(self, small_allocation):
        strings = [
            build_string(k, s.n_apps + 1, 3)  # one extra app everywhere
            for k, s in enumerate(small_allocation.model.strings)
        ]
        longer = SystemModel(uniform_network(3), strings)
        with pytest.raises(ModelError, match="applications"):
            transfer_allocation(small_allocation, longer)

    def test_unmapped_strings_do_not_matter(self, small_allocation):
        """Only *mapped* ids must exist: dropping an unmapped string is
        fine, which is what restricted allocations rely on."""
        partial = small_allocation.restricted_to([0, 1])
        fewer = SystemModel(
            uniform_network(3),
            [build_string(0, 3, 3), build_string(1, 2, 3)],
        )
        moved = transfer_allocation(partial, fewer)
        assert set(moved) == {0, 1}


class TestSurgeValidation:
    def test_nonpositive_upper_rejected(self, small_allocation):
        with pytest.raises(ValueError, match="upper"):
            max_absorbable_surge(small_allocation, upper=0.0)
        with pytest.raises(ValueError, match="upper"):
            max_absorbable_surge(small_allocation, upper=-1.0)

    def test_nonpositive_tol_rejected(self, small_allocation):
        with pytest.raises(ValueError, match="tol"):
            max_absorbable_surge(small_allocation, tol=0.0)
        with pytest.raises(ValueError, match="tol"):
            max_absorbable_surge(small_allocation, tol=-1e-6)


class TestStage1Limit:
    def test_closed_form(self):
        """Stage-1-only system: δ* = Λ/(1-Λ) exactly."""
        net = uniform_network(2)
        # single app, util 0.4 on machine 0, loose QoS everywhere
        s = build_string(0, 1, 2, period=10.0, t=4.0, u=1.0, latency=1e9)
        model = SystemModel(net, [s])
        alloc = Allocation(model, {0: [0]})
        limit = stage1_surge_limit(alloc)
        # slack = 0.6 -> limit = 1.5
        assert limit == pytest.approx(1.5)
        profile = max_absorbable_surge(alloc, tol=1e-4)
        assert profile.max_delta == pytest.approx(1.5, abs=1e-3)
        assert not profile.qos_bound

    def test_empty_allocation_infinite(self, small_model):
        alloc = Allocation.empty(small_model)
        assert stage1_surge_limit(alloc) == np.inf
        profile = max_absorbable_surge(alloc)
        assert profile.max_delta == np.inf


class TestMaxAbsorbableSurge:
    def test_qos_binds_before_capacity(self):
        """Tight latency makes δ* < Λ/(1-Λ)."""
        net = uniform_network(2)
        s = build_string(0, 1, 2, period=10.0, t=4.0, u=1.0, latency=5.0)
        model = SystemModel(net, [s])
        alloc = Allocation(model, {0: [0]})
        profile = max_absorbable_surge(alloc, tol=1e-4)
        # latency 5 with t=4: fails when 4(1+δ) > 5 -> δ* = 0.25
        assert profile.max_delta == pytest.approx(0.25, abs=1e-3)
        assert profile.qos_bound
        assert profile.stage1_limit == pytest.approx(1.5)

    def test_infeasible_start_rejected(self):
        net = uniform_network(2)
        s = build_string(0, 1, 2, period=10.0, t=20.0, u=1.0, latency=1e9)
        model = SystemModel(net, [s])
        alloc = Allocation(model, {0: [0]})
        with pytest.raises(ValueError):
            max_absorbable_surge(alloc)

    def test_survives_at_found_delta(self):
        model = generate_model(
            SCENARIO_3.scaled(n_strings=5, n_machines=4), seed=3
        )
        res = most_worth_first(model)
        profile = max_absorbable_surge(res.allocation, tol=1e-3)
        assert allocation_survives(res.allocation, profile.max_delta)
        assert not allocation_survives(
            res.allocation, profile.max_delta + 0.01
        )

    def test_higher_slack_absorbs_more_on_stage1_systems(self):
        """Two stage-1-bound allocations: more slack -> more surge."""
        net = uniform_network(2)
        strings = [
            build_string(0, 1, 2, period=10.0, t=4.0, u=1.0, latency=1e9),
            build_string(1, 1, 2, period=10.0, t=2.0, u=1.0, latency=1e9),
        ]
        model = SystemModel(net, strings)
        packed = Allocation(model, {0: [0], 1: [0]})  # slack 0.4
        spread = Allocation(model, {0: [0], 1: [1]})  # slack 0.6
        p1 = max_absorbable_surge(packed, tol=1e-4)
        p2 = max_absorbable_surge(spread, tol=1e-4)
        assert p2.max_delta > p1.max_delta
