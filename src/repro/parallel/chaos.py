"""Seeded chaos fault injection for the supervised process pool.

The paper's shipboard setting assumes resources fail *while the mission
runs*; the process infrastructure that executes the solvers must keep
producing bit-identical answers when workers are killed, stalled, or
return garbage.  :class:`ChaosPolicy` makes those failures injectable
and — crucially — **deterministic**: every fault decision is a pure
function of ``(policy.seed, task_id, attempt)``, so a chaotic run is
exactly reproducible and a test can pick a seed that kills attempt 0 of
a task but spares attempt 1.

Three fault kinds are modelled, matching what a real pool suffers:

* **kill** — the worker ``SIGKILL``s itself before running the task,
  which the parent observes as a ``BrokenProcessPool`` (the stdlib pool
  is condemned wholesale when any worker dies abruptly);
* **delay** — the task is stalled for ``delay_seconds`` before running,
  which trips per-task deadlines when one is configured;
* **corrupt** — the task runs to completion but its result envelope is
  returned truncated/mismatched, modelling transport corruption, which
  the supervisor detects via envelope validation.

A :class:`ChaosPolicy` only ever engages where it is explicitly threaded
(the :class:`~repro.parallel.supervisor.SupervisedPool` worker shim);
in-process quarantine replays run chaos-free, which is what makes the
determinism-under-failure contract hold (see ``docs/robustness.md``).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ModelError

__all__ = ["ChaosDecision", "ChaosPolicy"]


@dataclass(frozen=True)
class ChaosDecision:
    """The faults injected into one ``(task, attempt)`` execution."""

    kill: bool
    delay: float
    corrupt: bool

    @property
    def any(self) -> bool:
        return self.kill or self.delay > 0.0 or self.corrupt


@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic, seeded fault-injection schedule.

    Parameters
    ----------
    kill_rate:
        Probability that a task attempt SIGKILLs its worker before the
        task body runs (the parent sees ``BrokenProcessPool``).
    delay_rate:
        Probability that a task attempt is stalled by ``delay_seconds``
        before the task body runs.
    delay_seconds:
        Stall length for delayed attempts.
    corrupt_rate:
        Probability that a completed attempt's result envelope comes
        back corrupted (wrong task id), modelling transport truncation.
    seed:
        Root of the decision stream.  Decisions for a given
        ``(task_id, attempt)`` are independent of every other pair and
        of execution order, so chaotic runs replay exactly.
    """

    kill_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.01
    corrupt_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "delay_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must lie in [0, 1], got {value}")
        if self.delay_seconds < 0.0:
            raise ModelError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.seed < 0:
            raise ModelError(f"seed must be >= 0, got {self.seed}")

    def decide(self, task_id: int, attempt: int) -> ChaosDecision:
        """The faults this policy injects into one task attempt.

        Pure and deterministic: the same ``(seed, task_id, attempt)``
        always yields the same decision, in the parent or any worker.
        """
        if task_id < 0 or attempt < 0:
            raise ModelError("task_id and attempt must be >= 0")
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, task_id, attempt))
        )
        # Fixed draw order keeps each fault's marginal rate independent
        # of the other rates.
        kill = bool(rng.random() < self.kill_rate)
        delay = (
            self.delay_seconds if rng.random() < self.delay_rate else 0.0
        )
        corrupt = bool(rng.random() < self.corrupt_rate)
        return ChaosDecision(kill=kill, delay=delay, corrupt=corrupt)

    def inject_before(self, task_id: int, attempt: int) -> ChaosDecision:
        """Worker-side hook: apply pre-execution faults, return the plan.

        Applies the delay (sleep) and the kill (``SIGKILL`` to the
        calling process, so the parent observes an abrupt worker death
        rather than a tidy exception).  The returned decision carries
        the ``corrupt`` flag for the caller to apply on the way out.
        """
        decision = self.decide(task_id, attempt)
        if decision.delay > 0.0:
            time.sleep(decision.delay)
        if decision.kill:
            if hasattr(signal, "SIGKILL"):
                os.kill(os.getpid(), signal.SIGKILL)
            os._exit(137)  # pragma: no cover - non-POSIX fallback
        return decision
