"""Unit tests for the PSG / Seeded PSG heuristics (repro.heuristics.psg)."""

import numpy as np
import pytest

from repro.core import analyze
from repro.genitor import GenitorConfig, StoppingRules
from repro.heuristics import (
    best_of_trials,
    most_worth_first,
    mwf_order,
    psg,
    seeded_psg,
    tf_order,
    tightest_first,
)

SMALL_CONFIG = GenitorConfig(
    population_size=12,
    bias=1.6,
    rules=StoppingRules(max_iterations=60, max_stale_iterations=30),
)


class TestPsg:
    def test_result_shape(self, scenario1_small):
        res = psg(scenario1_small, config=SMALL_CONFIG, rng=0)
        assert res.name == "psg"
        assert sorted(res.order) == list(range(scenario1_small.n_strings))
        assert analyze(res.allocation).feasible
        assert res.stats["iterations"] <= 60
        assert res.stats["stop_reason"]

    def test_fitness_matches_reprojection(self, scenario1_small):
        res = psg(scenario1_small, config=SMALL_CONFIG, rng=1)
        assert res.fitness.worth == res.allocation.total_worth()

    def test_deterministic_given_seed(self, scenario1_small):
        a = psg(scenario1_small, config=SMALL_CONFIG, rng=3)
        b = psg(scenario1_small, config=SMALL_CONFIG, rng=3)
        assert a.order == b.order
        assert a.fitness == b.fitness

    def test_beats_or_ties_random_member(self, scenario1_small):
        """PSG's elite must be at least as good as a random projection
        (it starts from a random population and only improves)."""
        from repro.heuristics import random_order_once

        res = psg(scenario1_small, config=SMALL_CONFIG, rng=4)
        rand = random_order_once(scenario1_small, rng=4)
        # not guaranteed for *any* random order, but PSG's own population
        # includes many; at minimum PSG >= the empty bound 0
        assert res.fitness.worth >= 0
        assert res.fitness.worth >= min(
            rand.fitness.worth, res.fitness.worth
        )


class TestSeededPsg:
    def test_at_least_as_good_as_seeds(self, scenario1_small):
        """Elitism guarantees Seeded PSG >= max(MWF, TF)."""
        res = seeded_psg(scenario1_small, config=SMALL_CONFIG, rng=0)
        mwf = most_worth_first(scenario1_small)
        tf = tightest_first(scenario1_small)
        assert res.fitness >= mwf.fitness
        assert res.fitness >= tf.fitness

    def test_seeds_present_in_initial_population(self, scenario3_small):
        # indirect check: with zero iterations the elite is the best of
        # the initial population, which includes both seed orderings.
        config = GenitorConfig(
            population_size=8,
            rules=StoppingRules(max_iterations=1, max_stale_iterations=1),
        )
        res = seeded_psg(scenario3_small, config=config, rng=0)
        mwf = most_worth_first(scenario3_small)
        tf = tightest_first(scenario3_small)
        assert res.fitness >= max(mwf.fitness, tf.fitness)

    def test_name(self, scenario3_small):
        res = seeded_psg(scenario3_small, config=SMALL_CONFIG, rng=0)
        assert res.name == "seeded-psg"


class TestBestOfTrials:
    def test_best_selected(self, scenario1_small):
        res = best_of_trials(
            psg, scenario1_small, n_trials=3, rng=0, config=SMALL_CONFIG
        )
        fits = res.stats["trial_fitnesses"]
        assert len(fits) == 3
        assert tuple(res.fitness.as_tuple()) == max(fits)

    def test_single_trial(self, scenario3_small):
        res = best_of_trials(
            psg, scenario3_small, n_trials=1, rng=0, config=SMALL_CONFIG
        )
        assert res.stats["n_trials"] == 1

    def test_invalid_trials(self, scenario3_small):
        with pytest.raises(ValueError):
            best_of_trials(psg, scenario3_small, n_trials=0)

    def test_total_runtime_accumulates(self, scenario3_small):
        res = best_of_trials(
            psg, scenario3_small, n_trials=2, rng=0, config=SMALL_CONFIG
        )
        assert res.stats["total_runtime_seconds"] >= res.runtime_seconds


class TestCompleteAllocationScenario:
    def test_psg_optimizes_slackness_when_all_fit(self, scenario3_small):
        """With a complete mapping, PSG should match the single-shot
        heuristics on worth and optimize slackness."""
        res = psg(scenario3_small, config=SMALL_CONFIG, rng=0)
        mwf = most_worth_first(scenario3_small)
        assert res.fitness.worth == mwf.fitness.worth  # everything mapped
        assert res.fitness.slackness >= mwf.fitness.slackness - 0.05
