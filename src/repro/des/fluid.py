"""Fluid resource sharing with priority and per-job rate caps.

The paper's timing model (Section 3, Fig. 2) treats a machine as a
divisible CPU: at any instant the highest-tightness active application
receives up to its nominal utilization ``u`` of the CPU, the next one
receives up to ``u`` of what remains, and so on — case 3 of Fig. 2 shows
a lower-priority application running concurrently in the capacity a
higher-priority one (with ``u < 1``) leaves unused.  A communication
route is the same server with capacity equal to its bandwidth and every
transfer's cap equal to the full bandwidth (transfers are not
CPU-throttled), which degenerates to strict priority queueing.

:class:`FluidResource` implements that allocation discipline.  Between
simulator events the active-job set is constant, so rates are constant
and remaining work decays linearly; the simulator advances each resource
lazily and asks for the earliest completion.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["Job", "FluidResource"]

_WORK_EPS = 1e-12


class Job:
    """A unit of work being served by one :class:`FluidResource`.

    Parameters
    ----------
    work:
        Total work: CPU-seconds (``t_nominal · u``) for computations,
        bytes for transfers.
    cap:
        Maximum service rate this job can absorb: ``u`` (CPU fraction)
        for computations, the route bandwidth for transfers.
    priority:
        Larger-compares-first key; the library uses
        :func:`repro.core.tightness.priority_key` tuples.
    on_complete:
        Callback invoked by the simulator when the job finishes.
    label:
        Free-form identification for traces.
    """

    __slots__ = (
        "work_remaining",
        "total_work",
        "cap",
        "priority",
        "on_complete",
        "label",
        "rate",
        "release_time",
        "start_service_time",
    )

    def __init__(
        self,
        work: float,
        cap: float,
        priority: tuple,
        on_complete: Optional[Callable[["Job", float], None]] = None,
        label: str = "",
    ):
        if work < 0:
            raise SimulationError(f"negative work: {work}")
        if cap <= 0:
            raise SimulationError(f"cap must be positive, got {cap}")
        self.work_remaining = float(work)
        self.total_work = float(work)
        self.cap = float(cap)
        self.priority = priority
        self.on_complete = on_complete
        self.label = label
        self.rate = 0.0
        self.release_time: float | None = None
        self.start_service_time: float | None = None

    @property
    def completion_eps(self) -> float:
        """Work level below which the job counts as finished (relative)."""
        return max(1e-9 * self.total_work, _WORK_EPS)

    def __repr__(self) -> str:
        return (
            f"Job({self.label!r}, remaining={self.work_remaining:.4g}, "
            f"rate={self.rate:.4g})"
        )


class FluidResource:
    """A divisible server with priority-ordered, cap-limited sharing."""

    def __init__(self, capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.name = name
        self.jobs: list[Job] = []
        self.last_update = 0.0
        #: Integral of allocated rate over time (for utilization traces).
        self.busy_integral = 0.0

    # -- time evolution --------------------------------------------------------

    def advance(self, now: float) -> None:
        """Drain work at the current rates up to time ``now``."""
        dt = now - self.last_update
        if dt < -1e-9:
            raise SimulationError(
                f"{self.name}: time moved backwards ({self.last_update} -> {now})"
            )
        if dt > 0:
            for job in self.jobs:
                job.work_remaining -= job.rate * dt
                if job.work_remaining < -1e-6 * max(job.cap, 1.0):
                    raise SimulationError(
                        f"{self.name}: job {job.label} overdrained "
                        f"({job.work_remaining})"
                    )
                job.work_remaining = max(job.work_remaining, 0.0)
            self.busy_integral += dt * sum(j.rate for j in self.jobs)
        self.last_update = now

    def _reallocate(self, now: float) -> None:
        """Recompute rates: priority order, each takes min(cap, left)."""
        remaining = self.capacity
        for job in sorted(self.jobs, key=lambda j: j.priority, reverse=True):
            rate = min(job.cap, remaining)
            job.rate = rate
            if rate > 0 and job.start_service_time is None:
                job.start_service_time = now
            remaining -= rate

    # -- job management -----------------------------------------------------------

    def add(self, job: Job, now: float) -> None:
        """Admit a job at time ``now`` (resource must be advanced first)."""
        self.advance(now)
        job.release_time = now
        self.jobs.append(job)
        self._reallocate(now)

    def pop_completed(self, now: float) -> list[Job]:
        """Advance to ``now`` and remove jobs whose work hit zero.

        Completion uses a *relative* threshold: float cancellation in
        ``work -= rate * dt`` leaves residuals proportional to the job's
        total work (bytes-scale transfers leave ~1e-10-byte residues),
        and an absolute epsilon would schedule completions below the
        clock's ULP, freezing simulated time.

        A job additionally completes when its remaining service time
        ``work / rate`` is smaller than one representable clock tick at
        ``now`` — such work can never drain (``now + dt == now`` in
        floating point), so waiting for it would deadlock the simulation
        (fast routes draining byte-residues late in a run hit this).
        """
        self.advance(now)
        tick = 4.0 * np.spacing(max(abs(now), 1.0))

        def finished(j: Job) -> bool:
            if j.work_remaining <= j.completion_eps:
                return True
            return j.rate > 0 and j.work_remaining <= j.rate * tick

        done = [j for j in self.jobs if finished(j)]
        if done:
            self.jobs = [j for j in self.jobs if not finished(j)]
            self._reallocate(now)
        return done

    def next_completion(self) -> float:
        """Earliest absolute time an active job can finish (inf if none)."""
        best = np.inf
        for job in self.jobs:
            if job.rate > 0:
                best = min(best, self.last_update + job.work_remaining / job.rate)
        return best

    def utilization(self, horizon: float) -> float:
        """Average fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return self.busy_integral / (self.capacity * horizon)

    def __repr__(self) -> str:
        return f"FluidResource({self.name!r}, active={len(self.jobs)})"
