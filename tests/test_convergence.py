"""Unit tests for the GA convergence-trace experiment
(repro.experiments.convergence)."""

import numpy as np
import pytest

from repro.experiments import ExperimentScale, run_convergence
from repro.workload import SCENARIO_1

TINY = ExperimentScale(
    name="tiny",
    n_runs=1,
    size_factor=0.25,
    population_size=8,
    max_iterations=40,
    max_stale_iterations=20,
    n_trials=1,
)


@pytest.fixture(scope="module")
def outcome():
    return run_convergence(scale=TINY, seed=7_100)


class TestTraces:
    def test_all_checks_pass(self, outcome):
        assert all(outcome["checks"].values()), outcome["checks"]

    def test_trace_lengths_match_iterations(self, outcome):
        # one entry per iteration plus the initial elite
        assert len(outcome["psg"].worth) >= 2
        assert len(outcome["seeded"].worth) >= 2

    def test_monotone(self, outcome):
        assert outcome["psg"].is_monotone()
        assert outcome["seeded"].is_monotone()

    def test_seeded_head_start(self, outcome):
        start = outcome["seeded"].worth[0]
        assert start >= max(outcome["mwf_worth"], outcome["tf_worth"]) - 1e-9

    def test_final_at_least_start(self, outcome):
        for key in ("psg", "seeded"):
            trace = outcome[key]
            assert trace.final() >= trace.worth[0] - 1e-9

    def test_stop_reason_recorded(self, outcome):
        assert outcome["psg"].stop_reason in (
            "max-iterations", "stale-elite", "converged",
        )

    def test_stats_recorded(self, outcome):
        assert outcome["psg"].stats["evaluations"] > 0


class TestDeterminism:
    def test_same_seed_same_traces(self):
        a = run_convergence(scale=TINY, seed=7_200)
        b = run_convergence(scale=TINY, seed=7_200)
        np.testing.assert_array_equal(a["psg"].worth, b["psg"].worth)
        np.testing.assert_array_equal(
            a["seeded"].worth, b["seeded"].worth
        )
