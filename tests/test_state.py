"""Unit and property tests for the incremental AllocationState
(repro.core.state) — incremental analysis must match the from-scratch one."""

import numpy as np
import pytest

from repro.core import (
    Allocation,
    AllocationError,
    AllocationState,
    SystemModel,
    analyze,
)
from repro.core.timing import TimingEstimator
from repro.workload import SCENARIO_1, SCENARIO_2, generate_model

from conftest import build_string, uniform_network


def random_assignment(model, string, rng):
    return rng.integers(0, model.n_machines, size=string.n_apps)


class TestBasics:
    def test_empty_state(self, small_model):
        state = AllocationState(small_model)
        assert state.n_strings == 0
        assert state.total_worth == 0.0
        assert state.slackness() == 1.0

    def test_add_and_query(self, small_model):
        state = AllocationState(small_model)
        assert state.try_add(0, [0, 1, 2])
        assert 0 in state
        assert state.total_worth == 100.0
        assert list(state.machines_for(0)) == [0, 1, 2]

    def test_double_add_rejected(self, small_model):
        state = AllocationState(small_model)
        state.try_add(0, [0, 1, 2])
        with pytest.raises(AllocationError):
            state.try_add(0, [0, 0, 0])

    def test_bad_assignment_rejected(self, small_model):
        state = AllocationState(small_model)
        with pytest.raises(AllocationError):
            state.try_add(0, [0, 1])  # wrong length
        with pytest.raises(AllocationError):
            state.try_add(2, [5])  # machine out of range

    def test_as_allocation_round_trip(self, small_model):
        state = AllocationState(small_model)
        state.try_add(0, [0, 1, 2])
        state.try_add(2, [1])
        alloc = state.as_allocation()
        assert alloc == Allocation(small_model, {0: [0, 1, 2], 2: [1]})

    def test_fitness_matches_metrics(self, small_model):
        from repro.core.metrics import evaluate

        state = AllocationState(small_model)
        state.try_add(0, [0, 1, 2])
        state.try_add(3, [2, 0, 1, 2])
        fit_inc = state.fitness()
        fit_full = evaluate(state.as_allocation())
        assert fit_inc.worth == fit_full.worth
        assert fit_inc.slackness == pytest.approx(fit_full.slackness)


class TestRejection:
    def test_stage1_rejection_reported(self):
        net = uniform_network(2)
        s = build_string(0, 1, 2, period=10.0, t=20.0, u=1.0, latency=1e9)
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assert not state.try_add(0, [0])
        assert state.last_rejection is not None
        assert state.last_rejection.stage == 1
        assert state.n_strings == 0

    def test_stage2_new_string_rejection(self):
        net = uniform_network(2)
        s = build_string(0, 1, 2, period=5.0, t=6.0, u=0.1, latency=1e9)
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assert not state.try_add(0, [0])
        assert state.last_rejection.stage == 2
        assert state.last_rejection.kind == "throughput-comp"

    def test_stage2_existing_string_rejection(self):
        """Adding a tighter string can break an already-mapped one."""
        net = uniform_network(2)
        loose = build_string(0, 1, 2, period=8.5, t=8.0, u=0.5, latency=1e6)
        tight = build_string(1, 1, 2, period=40.0, t=8.0, u=0.5,
                             latency=16.0)
        model = SystemModel(net, [loose, tight])
        state = AllocationState(model)
        assert state.try_add(0, [0])  # loose alone is fine (8 <= 8.5)
        assert not state.try_add(1, [0])  # would push loose to 9 > 8.5
        assert state.last_rejection.kind == "throughput-comp"
        assert "string 0" in state.last_rejection.where
        # state untouched
        assert state.n_strings == 1
        assert analyze(state.as_allocation()).feasible

    def test_latency_rejection_of_existing(self):
        net = uniform_network(2)
        loose = build_string(0, 2, 2, period=20.0, t=4.0, u=1.0,
                             latency=8.9)
        tight = build_string(1, 1, 2, period=10.0, t=4.0, u=1.0,
                             latency=5.0)
        model = SystemModel(net, [loose, tight])
        state = AllocationState(model)
        assert state.try_add(0, [0, 0])
        assert not state.try_add(1, [0])
        assert state.last_rejection.kind in ("latency", "throughput-comp")


class TestRemove:
    def test_remove_restores_empty(self, small_model):
        state = AllocationState(small_model)
        state.try_add(0, [0, 1, 2])
        state.remove(0)
        assert state.n_strings == 0
        assert state.machine_util.sum() == pytest.approx(0.0, abs=1e-12)
        assert state.route_util.sum() == pytest.approx(0.0, abs=1e-12)

    def test_remove_unknown_raises(self, small_model):
        state = AllocationState(small_model)
        with pytest.raises(AllocationError):
            state.remove(0)

    def test_remove_is_inverse_of_add(self, scenario1_small):
        """add A, add B, remove B leaves state equivalent to just A."""
        model = scenario1_small
        rng = np.random.default_rng(5)
        state = AllocationState(model)
        a_assign = random_assignment(model, model.strings[0], rng)
        b_assign = random_assignment(model, model.strings[1], rng)
        assert state.try_add(0, a_assign)
        lat_before = state.estimated_latency(0)
        if state.try_add(1, b_assign):
            state.remove(1)
        assert state.estimated_latency(0) == pytest.approx(lat_before)
        # utilizations match a fresh single-string state
        fresh = AllocationState(model)
        fresh.try_add(0, a_assign)
        np.testing.assert_allclose(state.machine_util, fresh.machine_util)
        np.testing.assert_allclose(state.route_util, fresh.route_util)


class TestIncrementalMatchesFull:
    """The central property: the incremental accept/reject decision and
    the cached latencies agree with the from-scratch analysis."""

    @pytest.mark.parametrize("scenario,seed", [
        (SCENARIO_1, 0), (SCENARIO_1, 1), (SCENARIO_2, 2), (SCENARIO_2, 3),
    ])
    def test_greedy_random_allocation(self, scenario, seed):
        params = scenario.scaled(n_strings=30, n_machines=4)
        model = generate_model(params, seed=seed)
        rng = np.random.default_rng(seed + 100)
        state = AllocationState(model)
        accepted = []
        for s in model.strings:
            assign = random_assignment(model, s, rng)
            before = state.as_allocation()
            ok = state.try_add(s.string_id, assign)
            candidate = before.with_string(s.string_id, assign)
            full = analyze(candidate).feasible
            assert ok == full, (
                f"string {s.string_id}: incremental={ok} full={full}"
            )
            if ok:
                accepted.append(s.string_id)
        # final state consistent with full analysis
        final = state.as_allocation()
        report = analyze(final)
        assert report.feasible
        est = TimingEstimator(final).all_timings()
        for k in accepted:
            assert state.estimated_latency(k) == pytest.approx(
                est[k].end_to_end_latency(), rel=1e-9
            )

    def test_utilization_accumulators_match(self, scenario1_small):
        from repro.core import machine_utilization, route_utilization

        model = scenario1_small
        rng = np.random.default_rng(77)
        state = AllocationState(model)
        for s in model.strings:
            state.try_add(s.string_id, random_assignment(model, s, rng))
        alloc = state.as_allocation()
        np.testing.assert_allclose(
            state.machine_util, machine_utilization(alloc), atol=1e-12
        )
        np.testing.assert_allclose(
            state.route_util, route_utilization(alloc), atol=1e-12
        )


class TestUtilizationQueries:
    def test_machine_util_if(self, small_model):
        state = AllocationState(small_model)
        state.try_add(2, [0])  # load 2*0.5/30 on machine 0
        base = 1.0 / 30.0
        # string 1 app 0: 2*0.5/50 = 0.02
        assert state.machine_util_if(0, 1, 0) == pytest.approx(base + 0.02)
        assert state.machine_util_if(1, 1, 0) == pytest.approx(0.02)
        assert state.machine_util_if(
            1, 1, 0, extra=0.1
        ) == pytest.approx(0.12)

    def test_route_util_if(self, small_model):
        state = AllocationState(small_model)
        # string 1 transfer 0: 1000/50 B/s over 1e6 -> 2e-5
        assert state.route_util_if(0, 1, 1, 0) == pytest.approx(2e-5)
        assert state.route_util_if(0, 0, 1, 0) == 0.0  # intra-machine
