"""JSON persistence for models and allocations.

:mod:`repro.io_utils.atomic` is the sanctioned durable-write layer
(write temp → fsync → ``os.replace`` → fsync dir); every persistent
artifact in the repository goes through it (enforced by lint rule
RPR014).
"""

from .atomic import atomic_write_bytes, atomic_write_text, fsync_dir
from .dag_serialize import (
    dag_system_from_dict,
    dag_system_to_dict,
    load_dag_system,
    save_dag_system,
)
from .serialize import (
    allocation_from_dict,
    allocation_to_dict,
    load_allocation,
    load_model,
    model_from_dict,
    model_to_dict,
    save_allocation,
    save_model,
)

__all__ = [
    "allocation_from_dict",
    "allocation_to_dict",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "dag_system_from_dict",
    "dag_system_to_dict",
    "load_dag_system",
    "save_dag_system",
    "load_allocation",
    "load_model",
    "model_from_dict",
    "model_to_dict",
    "save_allocation",
    "save_model",
]
