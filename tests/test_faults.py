"""Unit tests for fault events and the injector (repro.faults)."""

import numpy as np
import pytest

from repro.core import Allocation, analyze
from repro.core.exceptions import ModelError
from repro.faults import (
    DamageZone,
    MachineDegradation,
    MachineFailure,
    RouteDegradation,
    RouteFailure,
    blocking_bandwidth,
    inject,
    normalize_faults,
    parse_fault,
    touches_failed_resource,
)

from conftest import build_string, uniform_network


class TestEventValidation:
    def test_negative_machine_rejected(self):
        with pytest.raises(ModelError):
            MachineFailure(-1)

    def test_intra_machine_route_rejected(self):
        with pytest.raises(ModelError):
            RouteFailure((2, 2))

    @pytest.mark.parametrize("capacity", [0.0, -0.5, 1.5])
    def test_degradation_capacity_bounds(self, capacity):
        with pytest.raises(ModelError):
            MachineDegradation(0, capacity)
        with pytest.raises(ModelError):
            RouteDegradation((0, 1), capacity)

    def test_full_capacity_allowed(self):
        assert MachineDegradation(0, 1.0).capacity == 1.0

    def test_zone_collateral_capacity_bounds(self):
        with pytest.raises(ModelError):
            DamageZone(0, collateral_routes=((1, 2),),
                       collateral_capacity=2.0)

    def test_describe_mentions_resource(self):
        assert "machine 3" in MachineFailure(3).describe()
        assert "1->2" in RouteFailure((1, 2)).describe()
        assert "50%" in MachineDegradation(0, 0.5).describe()


class TestParseFault:
    def test_all_forms(self):
        assert parse_fault("machine:3") == MachineFailure(3)
        assert parse_fault("route:0-2") == RouteFailure((0, 2))
        assert parse_fault("degrade-machine:1:0.5") == (
            MachineDegradation(1, 0.5)
        )
        assert parse_fault("degrade-route:0-2:0.25") == (
            RouteDegradation((0, 2), 0.25)
        )
        zone = parse_fault("zone:2:0-1,3-1")
        assert zone == DamageZone(2, collateral_routes=((0, 1), (3, 1)))

    def test_zone_without_collateral(self):
        assert parse_fault("zone:2") == DamageZone(2)

    @pytest.mark.parametrize("spec", [
        "machine:x", "route:0", "degrade-machine:1", "warp:3", "machine:",
    ])
    def test_malformed_specs(self, spec):
        with pytest.raises(ModelError):
            parse_fault(spec)


class TestNormalize:
    def test_failure_dominates_degradation(self):
        fs = normalize_faults(
            [MachineDegradation(0, 0.5), MachineFailure(0)], n_machines=3
        )
        assert fs.failed_machines == {0}
        assert 0 not in fs.machine_capacity

    def test_degradations_compound(self):
        fs = normalize_faults(
            [MachineDegradation(1, 0.5), MachineDegradation(1, 0.5)],
            n_machines=3,
        )
        assert fs.machine_capacity[1] == pytest.approx(0.25)

    def test_route_degradations_compound(self):
        fs = normalize_faults(
            [RouteDegradation((0, 1), 0.5), RouteDegradation((0, 1), 0.8)],
            n_machines=3,
        )
        assert fs.route_capacity[(0, 1)] == pytest.approx(0.4)

    def test_all_machines_failing_rejected(self):
        with pytest.raises(ModelError, match="at least one must survive"):
            normalize_faults(
                [MachineFailure(0), MachineFailure(1)], n_machines=2
            )

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError, match="out of range"):
            normalize_faults([MachineFailure(5)], n_machines=3)
        with pytest.raises(ModelError, match="out of range"):
            normalize_faults([RouteFailure((0, 5))], n_machines=3)

    def test_zone_expands_incident_routes(self):
        fs = normalize_faults([DamageZone(1)], n_machines=3)
        assert fs.failed_machines == {1}
        assert fs.failed_routes == {(1, 0), (1, 2), (0, 1), (2, 1)}

    def test_zone_collateral_failure_and_degradation(self):
        failed = normalize_faults(
            [DamageZone(0, collateral_routes=((1, 2),))], n_machines=3
        )
        assert (1, 2) in failed.failed_routes
        degraded = normalize_faults(
            [DamageZone(0, collateral_routes=((1, 2),),
                        collateral_capacity=0.5)],
            n_machines=3,
        )
        assert degraded.route_capacity[(1, 2)] == pytest.approx(0.5)

    def test_empty_set(self):
        fs = normalize_faults([], n_machines=3)
        assert fs.is_empty
        assert fs.describe() == "no faults"


class TestInjector:
    def test_empty_events_return_model_unchanged(self, small_model):
        injection = inject(small_model, [])
        assert injection.faulted is small_model

    def test_index_stability(self, small_model):
        injection = inject(small_model, [MachineFailure(1)])
        faulted = injection.faulted
        assert faulted.n_machines == small_model.n_machines
        assert faulted.n_strings == small_model.n_strings
        for s, fs in zip(small_model.strings, faulted.strings):
            assert s.string_id == fs.string_id
            assert s.n_apps == fs.n_apps
            assert s.worth == fs.worth

    def test_failed_machine_rejects_any_placement(self, small_model):
        injection = inject(small_model, [MachineFailure(1)])
        # string 2 has a single app; placing it alone on machine 1 must
        # fail stage 1 on the masked model, and must succeed elsewhere.
        dead = Allocation(injection.faulted, {2: [1]})
        assert not analyze(dead).feasible
        alive = Allocation(injection.faulted, {2: [0]})
        assert analyze(alive).feasible

    def test_failed_route_blocks_transfers(self, small_model):
        injection = inject(small_model, [RouteFailure((0, 1))])
        uses_route = Allocation(injection.faulted, {1: [0, 1]})
        assert not analyze(uses_route).feasible
        reverse_route = Allocation(injection.faulted, {1: [1, 0]})
        assert analyze(reverse_route).feasible

    def test_degraded_machine_scales_comp_times(self, small_model):
        injection = inject(small_model, [MachineDegradation(2, 0.5)])
        orig = small_model.strings[0].comp_times
        masked = injection.faulted.strings[0].comp_times
        np.testing.assert_allclose(masked[:, 2], orig[:, 2] * 2.0)
        np.testing.assert_allclose(masked[:, 0], orig[:, 0])

    def test_degraded_route_scales_bandwidth(self, small_model):
        injection = inject(small_model, [RouteDegradation((0, 1), 0.25)])
        orig = small_model.network.bandwidth
        masked = injection.faulted.network.bandwidth
        assert masked[0, 1] == pytest.approx(orig[0, 1] * 0.25)
        assert masked[1, 0] == pytest.approx(orig[1, 0])

    def test_evict_splits_by_failed_resources(self, small_allocation):
        # placements: 0 -> [0,1,2], 1 -> [1,1], 2 -> [2], 3 -> [0,2,1,0]
        injection = inject(small_allocation.model, [MachineFailure(0)])
        survivors, evicted = injection.evict(small_allocation)
        assert set(evicted) == {0, 3}
        assert set(survivors) == {1, 2}
        assert survivors.model is injection.faulted

    def test_evict_on_route_failure(self, small_allocation):
        # only string 0 ([0,1,2]) transfers over route 1->2
        injection = inject(
            small_allocation.model, [RouteFailure((1, 2))]
        )
        _, evicted = injection.evict(small_allocation)
        assert set(evicted) == {0}

    def test_surviving_machine_count(self, small_model):
        injection = inject(
            small_model, [MachineFailure(0), MachineFailure(2)]
        )
        assert injection.n_surviving_machines == 1

    def test_describe_lists_events_and_net_effect(self, small_model):
        injection = inject(
            small_model, [MachineFailure(0), RouteDegradation((1, 2), 0.5)]
        )
        text = injection.describe()
        assert "machine 0 failed" in text
        assert "net effect" in text


class TestTouchesFailedResource:
    def test_machine_hit(self):
        fs = normalize_faults([MachineFailure(1)], n_machines=3)
        assert touches_failed_resource(np.array([0, 1]), fs)
        assert not touches_failed_resource(np.array([0, 2]), fs)

    def test_route_is_directional(self):
        fs = normalize_faults([RouteFailure((0, 1))], n_machines=3)
        assert touches_failed_resource(np.array([0, 1]), fs)
        assert not touches_failed_resource(np.array([1, 0]), fs)

    def test_colocated_apps_use_no_route(self):
        fs = normalize_faults([RouteFailure((0, 1))], n_machines=3)
        assert not touches_failed_resource(np.array([0, 0]), fs)


class TestBlockingBandwidth:
    def test_blocks_every_transfer(self, small_model):
        w = blocking_bandwidth(small_model)
        for s in small_model.strings:
            if s.n_apps > 1:
                # route load O/(P w) > 1 for the smallest transfer
                assert float(s.output_sizes.min()) / (s.period * w) > 1.0

    def test_transfer_free_model_gets_positive_value(self):
        from repro.core import SystemModel

        model = SystemModel(
            uniform_network(2),
            [build_string(0, 1, 2), build_string(1, 1, 2)],
        )
        assert blocking_bandwidth(model) > 0.0
