"""Crash-safety tests for the experiment runner.

Covers the failure-capture path (serial and ``as_completed`` parallel
collection), the per-run timeout, and JSON checkpoint/resume — in
particular the acceptance scenario: kill a checkpointed experiment
mid-run, re-invoke it, and verify the finished runs are not recomputed.
"""

import json
import time

import pytest

import repro.experiments.runner as runner_mod
from repro.core.exceptions import ModelError
from repro.experiments.checkpoint import (
    ExperimentCheckpoint,
    config_fingerprint,
    record_from_dict,
    record_to_dict,
)
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentScale,
    RunRecord,
    RunTimeoutError,
    _run_deadline,
    run_experiment,
)
from repro.workload import SCENARIO_3

TINY = ExperimentScale(
    name="tiny",
    n_runs=3,
    size_factor=0.25,
    population_size=8,
    max_iterations=20,
    max_stale_iterations=10,
    n_trials=1,
)


def _deterministic_part(record: RunRecord) -> dict:
    """Per-heuristic (worth, slackness, n_mapped) — runtime is wall-clock."""
    return {
        name: (worth, slack, n)
        for name, (worth, slack, _rt, n) in record.results.items()
    }


def tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        scenario=SCENARIO_3.scaled(n_strings=8, n_machines=4),
        heuristics=("mwf",),
        scale=TINY,
        metric="worth",
        compute_ub=False,
        base_seed=4_000,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestFailureCapture:
    def test_serial_failure_recorded_others_kept(self, monkeypatch):
        real = runner_mod._run_one

        def flaky(config, run_index, run_timeout=None):
            if run_index == 1:
                raise RuntimeError("simulated crash")
            return real(config, run_index, run_timeout)

        monkeypatch.setattr(runner_mod, "_run_one", flaky)
        outcome = run_experiment(tiny_config())
        assert [r.run_index for r in outcome.records] == [0, 2]
        assert len(outcome.failures) == 1
        assert outcome.failures[0].run_index == 1
        assert "RuntimeError: simulated crash" in outcome.failures[0].error
        assert not outcome.complete

    def test_parallel_worker_exception_recorded(self):
        # an unknown heuristic raises KeyError inside each worker
        outcome = run_experiment(tiny_config(heuristics=("nope",)),
                                 n_workers=2)
        assert outcome.records == []
        assert len(outcome.failures) == TINY.n_runs
        assert all("KeyError" in f.error for f in outcome.failures)
        assert not outcome.complete

    def test_parallel_success_is_complete_and_sorted(self):
        outcome = run_experiment(tiny_config(), n_workers=2)
        assert outcome.complete
        assert [r.run_index for r in outcome.records] == [0, 1, 2]

    def test_parallel_matches_serial(self):
        config = tiny_config()
        serial = run_experiment(config)
        parallel = run_experiment(config, n_workers=2)
        for a, b in zip(serial.records, parallel.records):
            assert _deterministic_part(a) == _deterministic_part(b)

    def test_progress_counts_attempted_runs(self, monkeypatch):
        def always_fail(config, run_index, run_timeout=None):
            raise RuntimeError("boom")

        monkeypatch.setattr(runner_mod, "_run_one", always_fail)
        seen = []
        outcome = run_experiment(
            tiny_config(), progress=lambda d, n: seen.append((d, n))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]
        assert len(outcome.failures) == 3


class TestRunTimeout:
    def test_hung_run_becomes_failure(self, monkeypatch):
        def hang(config, run_index):
            time.sleep(5.0)

        monkeypatch.setattr(runner_mod, "_run_one_inner", hang)
        outcome = run_experiment(tiny_config(), run_timeout=0.05)
        assert outcome.records == []
        assert len(outcome.failures) == TINY.n_runs
        assert all("RunTimeoutError" in f.error for f in outcome.failures)

    def test_generous_timeout_is_harmless(self):
        outcome = run_experiment(tiny_config(), run_timeout=120.0)
        assert outcome.complete

    def test_deadline_rejects_nonpositive(self):
        with pytest.raises(ModelError, match="positive"):
            with _run_deadline(-1.0):
                pass

    def test_deadline_none_is_noop(self):
        with _run_deadline(None):
            pass

    def test_deadline_raises_in_body(self):
        with pytest.raises(RunTimeoutError):
            with _run_deadline(0.05):
                time.sleep(5.0)


class TestCheckpoint:
    def test_record_round_trip(self):
        record = RunRecord(
            run_index=2,
            seed=4_002,
            results={"mwf": (10.0, 0.5, 0.01, 4)},
            ub_value=12.5,
            ub_runtime=0.2,
        )
        assert record_from_dict(record_to_dict(record)) == record
        no_ub = RunRecord(run_index=0, seed=1, results={"tf": (1, 0, 0, 1)})
        restored = record_from_dict(record_to_dict(no_ub))
        assert restored.ub_value is None

    def test_kill_and_resume_skips_finished_runs(
        self, tmp_path, monkeypatch
    ):
        config = tiny_config()
        ckpt = tmp_path / "ck.json"
        calls: list[int] = []
        real = runner_mod._run_one

        def counting(config, run_index, run_timeout=None):
            calls.append(run_index)
            return real(config, run_index, run_timeout)

        monkeypatch.setattr(runner_mod, "_run_one", counting)

        class Killed(Exception):
            pass

        def kill_after_two(done, total):
            if done == 2:
                raise Killed

        with pytest.raises(Killed):
            run_experiment(
                config, progress=kill_after_two, checkpoint=str(ckpt)
            )
        assert calls == [0, 1]
        # the finished runs were persisted *before* the kill
        persisted = json.loads(ckpt.read_text())
        assert [r["run_index"] for r in persisted["records"]] == [0, 1]

        calls.clear()
        outcome = run_experiment(config, checkpoint=str(ckpt))
        assert calls == [2]  # only the missing run was recomputed
        assert outcome.complete
        assert [r.run_index for r in outcome.records] == [0, 1, 2]

    def test_resumed_records_match_fresh_run(self, tmp_path):
        config = tiny_config()
        ckpt = tmp_path / "ck.json"
        first = run_experiment(config, checkpoint=str(ckpt))
        resumed = run_experiment(config, checkpoint=str(ckpt))
        fresh = run_experiment(config)
        for a, b, c in zip(first.records, resumed.records, fresh.records):
            assert (
                _deterministic_part(a)
                == _deterministic_part(b)
                == _deterministic_part(c)
            )

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        run_experiment(tiny_config(), checkpoint=str(ckpt))
        other = tiny_config(base_seed=9_999)
        with pytest.raises(ModelError, match="different experiment"):
            run_experiment(other, checkpoint=str(ckpt))

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        ckpt.write_text("not json at all {")
        with pytest.raises(ModelError, match="cannot read"):
            ExperimentCheckpoint.open(ckpt, tiny_config())

    def test_foreign_document_rejected(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        ckpt.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ModelError, match="not a"):
            ExperimentCheckpoint.open(ckpt, tiny_config())

    def test_out_of_range_records_dropped_on_open(self, tmp_path):
        config = tiny_config()
        ckpt = ExperimentCheckpoint(
            tmp_path / "ck.json", config_fingerprint(config)
        )
        ckpt.add(RunRecord(run_index=7, seed=0,
                           results={"mwf": (1.0, 0.1, 0.0, 1)}))
        reopened = ExperimentCheckpoint.open(tmp_path / "ck.json", config)
        assert reopened.completed_indices == frozenset()

    def test_failures_are_not_persisted(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        outcome = run_experiment(
            tiny_config(heuristics=("nope",)), checkpoint=str(ckpt)
        )
        assert len(outcome.failures) == TINY.n_runs
        # no run completed, so nothing was ever flushed
        assert not ckpt.exists()
