"""Sequential allocate-until-first-failure (the permutation→solution map).

Every heuristic in the paper translates an *ordering* of strings (a point
in the permutation space) into a mapping (a point in the solution space)
the same way: walk the ordering, map each string with the IMR, validate
the intermediate mapping with the two-stage feasibility analysis, and
**terminate the whole process at the first string that fails** — the
previous intermediate mapping is the final result (Section 5, MWF
description; the same projection is used for every GENITOR chromosome).

:func:`allocate_sequence` implements that projection on top of the
incremental :class:`~repro.core.state.AllocationState`, whose
``try_add`` performs exactly the intermediate feasibility analysis
(leaving the state untouched on failure).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.metrics import Fitness
from ..core.profile import ProfileCache
from ..core.state import AllocationState
from ..core.model import SystemModel
from .imr import imr_map_string

if TYPE_CHECKING:
    from .projection_cache import ProjectionCache

__all__ = ["allocate_sequence", "SequenceOutcome"]


class SequenceOutcome:
    """Result of projecting one string ordering into the solution space.

    Attributes
    ----------
    state:
        The allocation state after the final successful addition.
    mapped_ids:
        Prefix of the ordering that was allocated.
    failed_id:
        The string at which allocation stopped, or ``None`` when the
        entire ordering allocated (complete resource allocation).
    """

    __slots__ = ("state", "mapped_ids", "failed_id")

    def __init__(
        self,
        state: AllocationState,
        mapped_ids: tuple[int, ...],
        failed_id: int | None,
    ):
        self.state = state
        self.mapped_ids = mapped_ids
        self.failed_id = failed_id

    @property
    def complete(self) -> bool:
        """True when every string in the ordering was allocated."""
        return self.failed_id is None

    def fitness(self) -> Fitness:
        return self.state.fitness()


def allocate_sequence(
    model: SystemModel,
    order: Sequence[int],
    rng: np.random.Generator | None = None,
    stop_on_failure: bool = True,
    cache: "ProjectionCache | None" = None,
    profile_cache: ProfileCache | None = None,
) -> SequenceOutcome:
    """Allocate strings in ``order`` with the IMR until the first failure.

    Parameters
    ----------
    model:
        The problem instance.
    order:
        A permutation (or subset) of string ids.
    rng:
        Optional generator for IMR tie-breaking.
    stop_on_failure:
        ``True`` (paper semantics): terminate at the first string whose
        intermediate mapping fails feasibility.  ``False``: skip failing
        strings and keep trying the rest — a best-effort variant used by
        the skip-ahead baseline and ablations.
    cache:
        Optional :class:`~repro.heuristics.projection_cache.ProjectionCache`
        of ordering prefixes.  The projection resumes from the deepest
        cached snapshot of a matching prefix instead of replaying from an
        empty state.  Only consulted for the deterministic projection
        (``rng is None`` and ``stop_on_failure=True``) — with IMR
        tie-breaking randomness the state after a prefix is not a
        function of the prefix, so the cache is silently bypassed.
    profile_cache:
        Optional model-scoped memo of per-(string, assignment) resource
        profiles shared across projections.

    Returns
    -------
    SequenceOutcome
    """
    if cache is not None and rng is None and stop_on_failure:
        return _allocate_sequence_cached(model, order, cache, profile_cache)
    state = AllocationState(model, profile_cache=profile_cache)
    mapped: list[int] = []
    failed: int | None = None
    for k in order:
        assignment = imr_map_string(state, k, rng=rng)
        if state.try_add(k, assignment):
            mapped.append(k)
        else:
            failed = k
            if stop_on_failure:
                break
    return SequenceOutcome(state, tuple(mapped), failed)


def _allocate_sequence_cached(
    model: SystemModel,
    order: Sequence[int],
    cache: "ProjectionCache",
    profile_cache: ProfileCache | None,
) -> SequenceOutcome:
    """Deterministic projection resuming from a cached prefix state.

    Because the IMR is deterministic given the intermediate state, the
    state after consuming ``order[:d]`` depends only on that prefix; the
    cache restores the deepest snapshotted prefix, replays the remaining
    known-successful elements (extending the trie and dropping fresh
    snapshots every ``snapshot_stride`` depths), and short-circuits when
    the trie already knows which element fails next.
    """
    hit = cache.lookup(order)
    state = AllocationState(model, profile_cache=profile_cache)
    if hit.snapshot is not None:
        state.restore(hit.snapshot)
    mapped = list(order[: hit.snapshot_depth])
    if hit.known_failure:
        # Replay the successful prefix (snapshot -> matched depth) but
        # skip the final feasibility analysis: the outcome is known.
        for d in range(hit.snapshot_depth, hit.matched_depth):
            k = order[d]
            assignment = imr_map_string(state, k)
            if not state.try_add(k, assignment):  # pragma: no cover
                raise RuntimeError(
                    f"projection cache corrupted: string {k} failed on a "
                    f"cached-successful prefix"
                )
            mapped.append(k)
        return SequenceOutcome(
            state, tuple(mapped), int(order[hit.matched_depth])
        )
    node = hit.snapshot_node
    failed: int | None = None
    depth = hit.snapshot_depth
    stride = cache.snapshot_stride
    for k in order[hit.snapshot_depth:]:
        assignment = imr_map_string(state, k)
        if state.try_add(k, assignment):
            mapped.append(k)
            depth += 1
            node = cache.extend(node, k)
            if node.snapshot is None and depth % stride == 0:
                cache.store_snapshot(node, state.snapshot())
        else:
            failed = k
            cache.mark_failure(node, k)
            break
    if failed is None and node is not cache.root and node.snapshot is None:
        # Terminal snapshot: a re-projection of this exact ordering (the
        # engine re-projects the elite) becomes a pure restore.
        cache.store_snapshot(node, state.snapshot())
    cache.maybe_evict()
    return SequenceOutcome(state, tuple(mapped), failed)
