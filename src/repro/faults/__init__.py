"""Fault injection and degraded-mode recovery.

The paper's case for maximizing system slackness is a shipboard
environment where resources — not just workloads — change without
warning (Sections 1, 4).  This package models the resource side:

* :mod:`repro.faults.events` — typed fault events (machine/route
  failures, partial degradations, correlated damage zones) and their
  normalized union;
* :mod:`repro.faults.injector` — apply events to a
  :class:`~repro.core.model.SystemModel`, producing an index-stable
  masked model and the evicted strings;
* :mod:`repro.faults.recovery` — respond with the drift-remapping
  policies (shed / repair / full remap) and report worth retained,
  strings moved, and residual slackness;
* :mod:`repro.faults.scenarios` — random fault sampling with
  guaranteed kind diversity;
* :mod:`repro.faults.criticality` — per-machine worth-at-risk ranking.

The multi-run survivability experiment lives in
:mod:`repro.experiments.survivability`; the CLI surface is
``repro survivability`` and ``repro inject``.
"""

from .criticality import MachineCriticality, critical_machines
from .events import (
    DamageZone,
    FaultEvent,
    FaultSet,
    MachineDegradation,
    MachineFailure,
    Route,
    RouteDegradation,
    RouteFailure,
    fault_from_record,
    fault_to_record,
    normalize_faults,
    parse_fault,
)
from .injector import (
    FaultInjection,
    blocking_bandwidth,
    inject,
    touches_failed_resource,
)
from .recovery import (
    RECOVERY_POLICIES,
    RecoveryOutcome,
    available_policies,
    get_recovery_policy,
    recover,
    recover_from_events,
)
from .scenarios import FAULT_KINDS, sample_faults

__all__ = [
    "FAULT_KINDS",
    "RECOVERY_POLICIES",
    "DamageZone",
    "FaultEvent",
    "FaultInjection",
    "FaultSet",
    "MachineCriticality",
    "MachineDegradation",
    "MachineFailure",
    "RecoveryOutcome",
    "Route",
    "RouteDegradation",
    "RouteFailure",
    "available_policies",
    "blocking_bandwidth",
    "critical_machines",
    "fault_from_record",
    "fault_to_record",
    "get_recovery_policy",
    "inject",
    "normalize_faults",
    "parse_fault",
    "recover",
    "recover_from_events",
    "sample_faults",
    "touches_failed_resource",
]
