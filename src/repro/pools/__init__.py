"""Machine pools (footnote-1 generalization): pool-level allocation
with per-pool dispatch, collapsing to the paper's model on singleton
pools."""

from .dispatch import (
    PooledOutcome,
    allocate_pooled,
    least_utilized_dispatch,
    pool_utilization,
    pooled_map_string,
)
from .model import Pool, PooledSystem, singleton_pools

__all__ = [
    "Pool",
    "PooledOutcome",
    "PooledSystem",
    "allocate_pooled",
    "least_utilized_dispatch",
    "pool_utilization",
    "pooled_map_string",
    "singleton_pools",
]
