"""Whitley's linear-bias rank selection (GENITOR's selective pressure).

GENITOR selects parents by *rank*, not raw fitness.  With population size
``N`` sorted best-first and bias ``b ∈ (1, 2]``, the selected rank is

.. math::

   \\left\\lfloor N \\cdot \\frac{b - \\sqrt{b^2 - 4(b-1)\\,u}}{2(b-1)}
   \\right\\rfloor, \\qquad u \\sim U(0, 1)

which makes the top-ranked individual ``b`` times more likely to be
chosen than the median one — the paper's definition of bias ("a bias of
1.5 implies that the top ranked chromosome is 1.5 times more likely to
be selected ... than the median chromosome").  The paper tunes the bias
to 1.6 by sweeping [1, 2] in steps of 0.1.

``b = 1`` degenerates to uniform selection and is handled explicitly.
"""

from __future__ import annotations

import numpy as np

from ..core.numeric import isclose

__all__ = ["biased_rank", "selection_probabilities"]


def biased_rank(
    n: int, bias: float, rng: np.random.Generator
) -> int:
    """Sample a rank in ``[0, n)`` (0 = best) with linear bias.

    Parameters
    ----------
    n:
        Population size.
    bias:
        Selective pressure in ``[1, 2]``; larger favors better ranks.
    rng:
        Randomness source.
    """
    if n <= 0:
        raise ValueError("population must be non-empty")
    if not 1.0 <= bias <= 2.0:
        raise ValueError(f"bias must be in [1, 2], got {bias}")
    u = rng.random()
    if isclose(bias, 1.0):
        idx = int(n * u)
    else:
        idx = int(
            n
            * (bias - np.sqrt(bias * bias - 4.0 * (bias - 1.0) * u))
            / (2.0 * (bias - 1.0))
        )
    return min(idx, n - 1)


def selection_probabilities(n: int, bias: float) -> np.ndarray:
    """Exact selection probability of each rank (0 = best).

    Used by tests to verify :func:`biased_rank` realizes the documented
    distribution, and handy for diagnostics.  The linear-bias sampler
    maps ``u`` to rank ``r`` when ``r/n <= f(u) < (r+1)/n`` for the
    inverse transform above; solving for ``u`` gives rank probability
    ``P(r) = (b·(2r+1)/n - (2r+1)(r+... )``; rather than carrying the
    algebra, we integrate the density ``p(x) = b - 2(b-1)x`` of the
    continuous rank fraction ``x = r/n`` over each rank's interval.
    """
    if not 1.0 <= bias <= 2.0:
        raise ValueError(f"bias must be in [1, 2], got {bias}")
    edges = np.linspace(0.0, 1.0, n + 1)
    # CDF of the continuous rank fraction: F(x) = b·x - (b-1)·x².
    cdf = bias * edges - (bias - 1.0) * edges**2
    return np.diff(cdf)
