"""Unit tests for the dynamic remapping subsystem (repro.dynamic)."""

import numpy as np
import pytest

from repro.core import Allocation, SystemModel, analyze
from repro.dynamic import (
    RemapPolicy,
    RepairPolicy,
    ShedPolicy,
    carry_forward,
    hotspot_surge,
    random_walk,
    scale_workload,
    simulate_drift,
    uniform_ramp,
)
from repro.heuristics import most_worth_first
from repro.workload import SCENARIO_3, generate_model

from conftest import build_string, uniform_network


@pytest.fixture(scope="module")
def drift_model():
    return generate_model(
        SCENARIO_3.scaled(n_strings=8, n_machines=4), seed=6
    )


@pytest.fixture(scope="module")
def drift_initial(drift_model):
    return most_worth_first(drift_model)


class TestScaleWorkload:
    def test_per_string_factors(self, small_model):
        factors = np.array([2.0, 1.0, 1.0, 1.5])
        scaled = scale_workload(small_model, factors)
        np.testing.assert_allclose(
            scaled.strings[0].comp_times,
            small_model.strings[0].comp_times * 2.0,
        )
        np.testing.assert_allclose(
            scaled.strings[1].comp_times, small_model.strings[1].comp_times
        )
        np.testing.assert_allclose(
            scaled.strings[3].output_sizes,
            small_model.strings[3].output_sizes * 1.5,
        )

    def test_wrong_shape(self, small_model):
        with pytest.raises(ValueError):
            scale_workload(small_model, np.ones(3))

    def test_nonpositive_rejected(self, small_model):
        with pytest.raises(ValueError):
            scale_workload(small_model, np.array([1.0, 0.0, 1.0, 1.0]))


class TestTrajectories:
    def test_uniform_ramp_shape_and_endpoints(self):
        t = uniform_ramp(5, 10, peak_delta=0.8)
        assert t.shape == (10, 5)
        np.testing.assert_allclose(t[0], 1.0)
        np.testing.assert_allclose(t[-1], 1.8)
        assert np.all(np.diff(t, axis=0) >= 0)

    def test_uniform_ramp_validation(self):
        with pytest.raises(ValueError):
            uniform_ramp(5, 0, 0.5)
        with pytest.raises(ValueError):
            uniform_ramp(5, 10, -0.1)

    def test_hotspot_only_affects_hot_strings(self):
        t = hotspot_surge(6, 10, hot_ids=[1, 4], peak_delta=2.0, onset=3)
        np.testing.assert_allclose(t[:3], 1.0)
        np.testing.assert_allclose(t[3:, [1, 4]], 3.0)
        cold = [0, 2, 3, 5]
        np.testing.assert_allclose(t[:, cold], 1.0)

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_surge(4, 10, [5], 1.0)
        with pytest.raises(ValueError):
            hotspot_surge(4, 10, [0], 1.0, onset=10)

    def test_random_walk_reproducible(self):
        a = random_walk(4, 12, sigma=0.2, rng=5)
        b = random_walk(4, 12, sigma=0.2, rng=5)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (12, 4)
        np.testing.assert_allclose(a[0], 1.0)
        assert np.all(a >= 0.1)

    def test_random_walk_zero_sigma_constant(self):
        t = random_walk(3, 5, sigma=0.0, rng=0)
        np.testing.assert_allclose(t, 1.0)


class TestCarryForward:
    def test_keeps_feasible_placements(self, drift_model, drift_initial):
        state, shed = carry_forward(drift_model, drift_initial.allocation)
        assert shed == []
        assert set(state.mapped_ids) == set(drift_initial.allocation)

    def test_sheds_under_heavy_surge(self, drift_model, drift_initial):
        surged = scale_workload(
            drift_model, np.full(drift_model.n_strings, 20.0)
        )
        state, shed = carry_forward(surged, drift_initial.allocation)
        assert shed  # something must give at 20x workload
        assert analyze(state.as_allocation()).feasible

    def test_worth_preference(self):
        """Under pressure, the high-worth string keeps its slot."""
        net = uniform_network(2)
        strings = [
            build_string(0, 1, 2, period=10.0, t=3.0, u=1.0, worth=1,
                         latency=1e6),
            build_string(1, 1, 2, period=10.0, t=3.0, u=1.0, worth=100,
                         latency=1e6),
        ]
        model = SystemModel(net, strings)
        both = Allocation(model, {0: [0], 1: [0]})
        surged = scale_workload(model, np.array([2.5, 2.5]))
        state, shed = carry_forward(surged, Allocation(
            surged, {0: [0], 1: [0]}
        ))
        assert 1 in state
        assert shed == [0]


class TestPolicies:
    def _surged(self, model, factor):
        return scale_workload(model, np.full(model.n_strings, factor))

    def test_shed_never_moves(self, drift_model, drift_initial):
        surged = self._surged(drift_model, 5.0)
        resp = ShedPolicy().respond(surged, drift_initial.allocation)
        assert resp.moved == ()
        for k in resp.allocation:
            np.testing.assert_array_equal(
                resp.allocation.machines_for(k),
                drift_initial.allocation.machines_for(k),
            )

    def test_repair_at_least_shed_worth(self, drift_model, drift_initial):
        surged = self._surged(drift_model, 5.0)
        shed = ShedPolicy().respond(surged, drift_initial.allocation)
        repair = RepairPolicy().respond(surged, drift_initial.allocation)
        assert (
            repair.allocation.total_worth()
            >= shed.allocation.total_worth()
        )

    def test_remap_produces_feasible(self, drift_model, drift_initial):
        surged = self._surged(drift_model, 5.0)
        resp = RemapPolicy("mwf").respond(surged, drift_initial.allocation)
        # re-anchor onto surged model for analysis
        alloc = Allocation(
            surged,
            {k: resp.allocation.machines_for(k) for k in resp.allocation},
        )
        assert analyze(alloc).feasible

    def test_policy_names(self):
        assert ShedPolicy().name == "shed"
        assert RepairPolicy().name == "repair"
        assert RemapPolicy("tf").name == "remap-tf"


class TestSimulateDrift:
    def test_no_drift_no_interventions(self, drift_model, drift_initial):
        traj = np.ones((5, drift_model.n_strings))
        run = simulate_drift(drift_model, drift_initial, traj, ShedPolicy())
        assert run.n_interventions == 0
        assert run.worth_retention() == pytest.approx(1.0)
        assert run.first_intervention_step() is None

    def test_heavy_ramp_triggers_interventions(
        self, drift_model, drift_initial
    ):
        traj = uniform_ramp(drift_model.n_strings, 10, peak_delta=6.0)
        run = simulate_drift(drift_model, drift_initial, traj, ShedPolicy())
        assert run.n_interventions > 0
        assert run.total_shed > 0
        assert run.worth_retention() < 1.0

    def test_step_records_complete(self, drift_model, drift_initial):
        traj = uniform_ramp(drift_model.n_strings, 7, peak_delta=2.0)
        run = simulate_drift(drift_model, drift_initial, traj, ShedPolicy())
        assert len(run.steps) == 7
        assert [s.step for s in run.steps] == list(range(7))
        assert all(0 <= s.slackness <= 1 for s in run.steps)

    def test_repair_dominates_shed_from_shared_state(
        self, drift_model, drift_initial
    ):
        """From the *same* previous allocation and drifted model, the
        repair response never yields less worth than the shed response.
        (Across whole trajectories the histories diverge and per-step
        dominance is not an invariant.)"""
        traj = uniform_ramp(drift_model.n_strings, 8, peak_delta=4.0)
        allocation = drift_initial.allocation
        for factors in traj:
            drifted = scale_workload(drift_model, factors)
            shed_resp = ShedPolicy().respond(drifted, allocation)
            repair_resp = RepairPolicy().respond(drifted, allocation)
            assert (
                repair_resp.allocation.total_worth()
                >= shed_resp.allocation.total_worth() - 1e-9
            )
            # follow the shed history (deterministic reference)
            allocation = shed_resp.allocation

    def test_trajectory_shape_validated(self, drift_model, drift_initial):
        with pytest.raises(ValueError):
            simulate_drift(
                drift_model, drift_initial, np.ones((5, 3)), ShedPolicy()
            )

    def test_summary_text(self, drift_model, drift_initial):
        traj = np.ones((3, drift_model.n_strings))
        run = simulate_drift(drift_model, drift_initial, traj, ShedPolicy())
        assert "retention" in run.summary()


class TestDriftRunEdgeCases:
    def test_empty_initial_worth_retention(self, drift_model):
        from repro.core import Allocation
        from repro.dynamic import DriftRun

        run = DriftRun(policy_name="x", initial_worth=0.0)
        assert run.worth_retention() == 1.0

    def test_empty_allocation_trajectory(self, drift_model):
        alloc = Allocation.empty(drift_model)
        traj = uniform_ramp(drift_model.n_strings, 4, peak_delta=5.0)
        run = simulate_drift(drift_model, alloc, traj, ShedPolicy())
        assert run.n_interventions == 0
        assert all(s.worth == 0.0 for s in run.steps)
