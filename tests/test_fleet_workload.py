"""Tests for the fleet-scale workload generator (repro.workload.fleet)."""

import numpy as np
import pytest

from repro.core.exceptions import ModelError
from repro.workload import (
    FLEET_BENCH,
    FLEET_LARGE,
    FLEET_SMOKE,
    FleetScenario,
    MONOLITHIC_LIMIT,
    generate_fleet,
    get_fleet_scenario,
    materialize_model,
    materialize_string,
)


@pytest.fixture(scope="module")
def smoke():
    return generate_fleet(FLEET_SMOKE, seed=42)


class TestGeneration:
    def test_same_seed_bit_identical(self, smoke):
        other = generate_fleet(FLEET_SMOKE, seed=42)
        assert np.array_equal(smoke.zone_of, other.zone_of)
        for a, b in zip(smoke.strings, other.strings):
            assert a.n_apps == b.n_apps
            assert a.worth == b.worth
            assert a.period == b.period
            assert a.max_latency == b.max_latency
            assert np.array_equal(a.t_base, b.t_base)
            assert np.array_equal(a.u_base, b.u_base)
            assert np.array_equal(a.output_sizes, b.output_sizes)
            assert (a.home_zone, a.peer_zone) == (b.home_zone, b.peer_zone)

    def test_different_seed_differs(self, smoke):
        other = generate_fleet(FLEET_SMOKE, seed=43)
        assert not all(
            np.array_equal(a.t_base, b.t_base)
            for a, b in zip(smoke.strings, other.strings)
        )

    def test_zones_partition_machines(self, smoke):
        sizes = [len(smoke.zone_members(z)) for z in range(FLEET_SMOKE.n_zones)]
        assert sum(sizes) == FLEET_SMOKE.n_machines
        assert max(sizes) - min(sizes) <= 1

    def test_string_fields_within_ranges(self, smoke):
        p = FLEET_SMOKE.base
        for s in smoke.strings:
            assert p.apps_per_string[0] <= s.n_apps <= p.apps_per_string[1]
            assert s.worth in p.worth_choices
            assert s.t_base.shape == (s.n_apps,)
            assert s.output_sizes.shape == (s.n_apps - 1,)
            assert (s.t_base >= p.comp_time_range[0]).all()
            assert (s.t_base <= p.comp_time_range[1]).all()
            assert 0 <= s.home_zone < FLEET_SMOKE.n_zones
            assert 0 <= s.peer_zone < FLEET_SMOKE.n_zones
            assert s.period > 0 and s.max_latency > 0

    def test_cross_zone_rate_zero_means_no_cross_strings(self):
        w = generate_fleet(FLEET_SMOKE.scaled(cross_zone_rate=0.0), seed=1)
        assert all(s.home_zone == s.peer_zone for s in w.strings)

    def test_invalid_seed_rejected(self):
        with pytest.raises(ModelError):
            generate_fleet(FLEET_SMOKE, seed=-1)
        with pytest.raises(ModelError):
            generate_fleet(FLEET_SMOKE, seed=2**63)

    def test_large_fleet_generates_compactly(self):
        scn = FLEET_LARGE.scaled(n_strings=2000)
        w = generate_fleet(scn, seed=7)
        assert w.n_machines == 1000
        assert w.n_strings == 2000
        # The description holds no dense machine-squared state: per-string
        # storage is O(n_apps) and the only machine-indexed array is the
        # zone map.
        assert w.zone_of.shape == (1000,)
        for s in w.strings[:50]:
            assert s.t_base.shape == (s.n_apps,)


class TestMaterialization:
    def test_subset_independence(self, smoke):
        """A cell depends only on global ids, never on the subset chosen."""
        full = materialize_model(
            smoke, np.arange(smoke.n_machines), range(smoke.n_strings)
        )
        sub = materialize_model(smoke, [3, 17, 9], [5, 40])
        s5 = full.strings[5]
        assert np.array_equal(s5.comp_times[:, 17], sub.strings[0].comp_times[:, 1])
        assert np.array_equal(s5.cpu_utils[:, 9], sub.strings[0].cpu_utils[:, 2])
        assert full.network.bandwidth[3, 17] == sub.network.bandwidth[0, 1]
        assert full.network.bandwidth[17, 3] == sub.network.bandwidth[1, 0]
        s40 = full.strings[40]
        assert np.array_equal(s40.comp_times[:, 3], sub.strings[1].comp_times[:, 0])

    def test_strings_renumbered_consecutively(self, smoke):
        m = materialize_model(smoke, [0, 1, 2, 3], [10, 30, 20])
        assert [s.string_id for s in m.strings] == [0, 1, 2]
        assert m.strings[0].worth == smoke.strings[10].worth
        assert m.strings[1].period == smoke.strings[30].period

    def test_qos_bounds_machine_independent(self, smoke):
        """Period/latency come from the compact description, not a subset."""
        a = materialize_string(smoke, 7, [0, 1], local_id=0)
        b = materialize_string(smoke, 7, [20, 21, 22], local_id=0)
        assert a.period == b.period
        assert a.max_latency == b.max_latency

    def test_intra_zone_links_faster_on_average(self, smoke):
        full = materialize_model(
            smoke, np.arange(smoke.n_machines), range(1)
        )
        zones = smoke.zone_of
        bw = full.network.bandwidth
        off = ~np.eye(smoke.n_machines, dtype=bool)
        same = (zones[:, None] == zones[None, :]) & off
        cross = ~(zones[:, None] == zones[None, :])
        assert bw[same].mean() > bw[cross].mean()

    def test_zero_heterogeneity_gives_uniform_rows(self):
        w = generate_fleet(FLEET_SMOKE.scaled(heterogeneity=0.0), seed=3)
        s = materialize_string(w, 0, [0, 5, 11])
        assert np.allclose(s.comp_times, s.comp_times[:, :1])
        assert np.array_equal(s.comp_times[:, 0], w.strings[0].t_base)

    def test_monolithic_guard(self, smoke):
        big = FLEET_LARGE.scaled(n_strings=1)
        w = generate_fleet(big, seed=1)
        ids = np.arange(MONOLITHIC_LIMIT + 1)
        with pytest.raises(ModelError, match="MONOLITHIC_LIMIT"):
            materialize_model(w, ids, [0])

    def test_bad_machine_ids_rejected(self, smoke):
        with pytest.raises(ModelError, match="distinct"):
            materialize_model(smoke, [1, 1, 2], [0])
        with pytest.raises(ModelError, match="out of range"):
            materialize_model(smoke, [0, 99], [0])
        with pytest.raises(ModelError, match="non-empty"):
            materialize_model(smoke, [], [0])


class TestScenarios:
    def test_lookup(self):
        assert get_fleet_scenario("fleet-bench") is FLEET_BENCH
        with pytest.raises(ModelError, match="unknown fleet scenario"):
            get_fleet_scenario("nope")

    def test_validation(self):
        with pytest.raises(ModelError):
            FLEET_SMOKE.scaled(n_zones=0)
        with pytest.raises(ModelError):
            FLEET_SMOKE.scaled(n_zones=FLEET_SMOKE.n_machines + 1)
        with pytest.raises(ModelError):
            FLEET_SMOKE.scaled(cross_zone_rate=1.5)
        with pytest.raises(ModelError):
            FLEET_SMOKE.scaled(inter_zone_factor=0.0)
        with pytest.raises(ModelError):
            FLEET_SMOKE.scaled(heterogeneity=1.0)

    def test_scaled_returns_new_instance(self):
        before = FLEET_BENCH.n_strings
        scn = FLEET_BENCH.scaled(n_strings=10)
        assert scn.n_strings == 10
        assert FLEET_BENCH.n_strings == before  # original untouched
        assert isinstance(scn, FleetScenario)
