"""JSON round-trip serialization of mission and fault events.

The journal persists every mission event as a record; a subclass that
forgets its serializer would silently break recovery, so the round-trip
coverage here is *exhaustive by introspection*: every concrete subclass
is discovered and checked, not just the ones listed by hand.
"""

from __future__ import annotations

import json

import pytest

from repro.core.exceptions import ModelError
from repro.faults.events import (
    DamageZone,
    FaultEvent,
    MachineDegradation,
    MachineFailure,
    RouteDegradation,
    RouteFailure,
    fault_from_record,
    fault_to_record,
)
from repro.service.events import (
    DriftStep,
    FaultsCleared,
    MissionEvent,
    PlatformFault,
    StringArrival,
    StringDeparture,
    event_from_record,
    event_to_record,
)

FAULT_SAMPLES = [
    MachineFailure(3),
    RouteFailure((0, 2)),
    MachineDegradation(1, 0.5),
    RouteDegradation((2, 4), 0.25),
    DamageZone(0, collateral_routes=((1, 2),), collateral_capacity=0.5),
    DamageZone(2),
]

EVENT_SAMPLES = [
    StringArrival(4),
    StringDeparture(0),
    PlatformFault(MachineFailure(1)),
    PlatformFault(DamageZone(0, collateral_routes=((1, 3), (2, 3)))),
    FaultsCleared(),
    DriftStep((1.0, 0.9, 1.25)),
]


def _concrete_subclasses(base):
    found = set()
    stack = list(base.__subclasses__())
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        if cls.kind != "abstract":
            found.add(cls)
    return found


@pytest.mark.parametrize("fault", FAULT_SAMPLES, ids=lambda f: f.describe())
def test_fault_roundtrip(fault):
    record = fault_to_record(fault)
    # must survive an actual JSON hop, not just the dict form
    assert fault_from_record(json.loads(json.dumps(record))) == fault


@pytest.mark.parametrize("event", EVENT_SAMPLES, ids=lambda e: e.kind)
def test_event_roundtrip(event):
    record = event_to_record(event)
    assert record["kind"] == event.kind
    assert event_from_record(json.loads(json.dumps(record))) == event


def test_every_fault_subclass_is_sampled():
    assert _concrete_subclasses(FaultEvent) == {
        type(f) for f in FAULT_SAMPLES
    }


def test_every_event_subclass_is_sampled_and_roundtrips():
    """Exhaustiveness: a new MissionEvent subclass must ship both a
    sample here and working to_record/from_record overrides."""
    concrete = _concrete_subclasses(MissionEvent)
    assert concrete == {type(e) for e in EVENT_SAMPLES}
    for cls in concrete:
        assert cls.to_record is not MissionEvent.to_record, (
            f"{cls.__name__} does not override to_record"
        )
        assert (
            cls.from_record.__func__
            is not MissionEvent.from_record.__func__
        ), f"{cls.__name__} does not override from_record"


def test_base_event_serializers_refuse():
    with pytest.raises(ModelError):
        MissionEvent().to_record()
    with pytest.raises(ModelError):
        MissionEvent.from_record({})


@pytest.mark.parametrize(
    "record",
    [
        {},  # no kind
        {"kind": "no-such-event"},
        {"kind": "arrival"},  # missing service_id
        {"kind": "fault", "fault": {"kind": "no-such-fault"}},
        {"kind": "drift"},  # missing step_factors
        {"kind": "drift", "step_factors": [0.0]},  # invalid factor
    ],
)
def test_malformed_event_records_raise_modelerror(record):
    with pytest.raises(ModelError):
        event_from_record(record)


@pytest.mark.parametrize(
    "record",
    [
        {},
        {"kind": "machine-failure"},  # missing machine
        {"kind": "machine-failure", "machine": True},  # bool is not int
        {"kind": "route-failure", "route": [1]},  # malformed route
        {"kind": "machine-degradation", "machine": 0, "capacity": "x"},
    ],
)
def test_malformed_fault_records_raise_modelerror(record):
    with pytest.raises(ModelError):
        fault_from_record(record)
