"""Unit tests for stage-1 utilization (repro.core.utilization, eqs. 2-3)."""

import numpy as np
import pytest

from repro.core import (
    Allocation,
    UtilizationSnapshot,
    machine_utilization,
    route_utilization,
    string_machine_load,
    string_route_load,
)

from conftest import build_string, uniform_network


class TestStringMachineLoad:
    def test_single_app(self):
        s = build_string(0, 1, 2, period=10.0, t=4.0, u=0.5)
        load = string_machine_load(s, [1])
        # t*u/P = 4*0.5/10 = 0.2 on machine 1 only
        assert load == pytest.approx([0.0, 0.2])

    def test_multiple_apps_same_machine_sum(self):
        s = build_string(0, 3, 2, period=10.0, t=4.0, u=0.5)
        load = string_machine_load(s, [0, 0, 0])
        assert load == pytest.approx([0.6, 0.0])

    def test_uses_assigned_machine_entries(self):
        comp = np.array([[2.0, 8.0]])
        util = np.array([[0.5, 1.0]])
        s = build_string(0, 1, 2, period=10.0)
        s = type(s)(0, 1, 10.0, s.max_latency, comp, util, np.empty(0))
        assert string_machine_load(s, [0])[0] == pytest.approx(0.1)
        assert string_machine_load(s, [1])[1] == pytest.approx(0.8)


class TestStringRouteLoad:
    def test_single_transfer(self):
        net = uniform_network(2, bandwidth=100.0)
        s = build_string(0, 2, 2, period=10.0, out=300.0)
        load = string_route_load(s, [0, 1], net)
        # (O/P)/w = 30/100 = 0.3
        assert load[0, 1] == pytest.approx(0.3)
        assert load.sum() == pytest.approx(0.3)

    def test_intra_machine_transfer_zero(self):
        net = uniform_network(2, bandwidth=100.0)
        s = build_string(0, 2, 2, period=10.0, out=300.0)
        load = string_route_load(s, [1, 1], net)
        assert load.sum() == 0.0

    def test_repeated_route_accumulates(self):
        net = uniform_network(2, bandwidth=100.0)
        s = build_string(0, 3, 2, period=10.0, out=100.0)
        # 0 -> 1 -> 0 uses routes (0,1) and (1,0)
        load = string_route_load(s, [0, 1, 0], net)
        assert load[0, 1] == pytest.approx(0.1)
        assert load[1, 0] == pytest.approx(0.1)

    def test_single_app_no_routes(self):
        net = uniform_network(2)
        s = build_string(0, 1, 2)
        assert string_route_load(s, [0], net).sum() == 0.0


class TestAggregates:
    def test_machine_utilization_sums_strings(self, small_model):
        alloc = Allocation(small_model, {1: [0, 0], 2: [0]})
        u = machine_utilization(alloc)
        # string 1: 2 apps * 2*0.5/50 = 0.04 ; string 2: 2*0.5/30
        assert u[0] == pytest.approx(0.04 + 1.0 / 30.0)
        assert u[1] == 0.0

    def test_route_utilization_diagonal_zero(self, small_allocation):
        r = route_utilization(small_allocation)
        assert np.all(np.diag(r) == 0.0)

    def test_empty_allocation(self, small_model):
        alloc = Allocation.empty(small_model)
        assert machine_utilization(alloc).sum() == 0.0
        assert route_utilization(alloc).sum() == 0.0


class TestSnapshot:
    def test_within_capacity(self, small_allocation):
        snap = UtilizationSnapshot.of(small_allocation)
        assert snap.within_capacity()
        assert 0.0 < snap.max_utilization() < 1.0

    def test_overload_detected(self, small_model):
        # Period 50, t=2, u=0.5 -> each app contributes 0.02; build an
        # artificial snapshot instead of hunting for a overloaded model.
        snap = UtilizationSnapshot(
            machine=np.array([0.5, 1.2, 0.1]), route=np.zeros((3, 3))
        )
        assert not snap.within_capacity()
        assert snap.max_utilization() == pytest.approx(1.2)

    def test_route_can_dominate(self):
        route = np.zeros((2, 2))
        route[0, 1] = 0.9
        snap = UtilizationSnapshot(machine=np.array([0.3, 0.3]), route=route)
        assert snap.max_utilization() == pytest.approx(0.9)
        assert "route 0->1" in snap.binding_resource()

    def test_binding_resource_machine(self):
        snap = UtilizationSnapshot(
            machine=np.array([0.3, 0.8]), route=np.zeros((2, 2))
        )
        assert "machine 1" in snap.binding_resource()
