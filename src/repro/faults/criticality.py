"""Critical-machine analysis: which resource loss hurts the most?

For each machine, fail it alone, recover with a chosen policy, and
record the worth lost — a direct measure of how much mission capability
rides on that machine under the given mapping.  Sorting machines by
worth lost identifies the placements a ship designer (or a smarter
allocator) should spread out; a perfectly fault-tolerant mapping has a
flat profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.allocation import Allocation
from ..core.exceptions import ModelError
from ..dynamic.policies import Policy
from .events import MachineFailure
from .injector import inject
from .recovery import recover

__all__ = ["MachineCriticality", "critical_machines"]


@dataclass(frozen=True)
class MachineCriticality:
    """Impact of losing one machine under a recovery policy."""

    machine: int
    worth_lost: float
    retained_fraction: float
    n_evicted: int
    n_reinserted: int

    def __str__(self) -> str:
        return (
            f"machine {self.machine}: worth lost {self.worth_lost:g} "
            f"(retained {self.retained_fraction:.1%}, evicted "
            f"{self.n_evicted}, reinserted {self.n_reinserted})"
        )


def critical_machines(
    allocation: Allocation,
    policy: Policy | str = "shed",
) -> list[MachineCriticality]:
    """Rank machines by the worth lost when each fails alone.

    Returns one entry per machine, sorted by descending worth lost
    (ties broken by machine index).  ``policy`` controls how hard the
    system fights back — under ``"shed"`` the ranking reflects the raw
    exposure of the mapping; under ``"repair"`` or a remap policy it
    reflects the residual exposure after recovery.
    """
    model = allocation.model
    if model.n_machines < 2:
        raise ModelError(
            "criticality analysis needs at least 2 machines "
            "(one must survive each failure)"
        )
    out: list[MachineCriticality] = []
    for j in range(model.n_machines):
        outcome = recover(
            inject(model, [MachineFailure(j)]), allocation, policy
        )
        out.append(
            MachineCriticality(
                machine=j,
                worth_lost=outcome.worth_before - outcome.worth_after,
                retained_fraction=outcome.worth_retained,
                n_evicted=len(outcome.evicted),
                n_reinserted=len(outcome.reinserted),
            )
        )
    out.sort(key=lambda c: (-c.worth_lost, c.machine))
    return out
