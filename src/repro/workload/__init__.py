"""Synthetic workload generation (paper Sections 6 and 8).

Public surface: the three scenario definitions (:data:`SCENARIO_1`,
:data:`SCENARIO_2`, :data:`SCENARIO_3` and :func:`get_scenario`) and the
deterministic generator :func:`generate_model`.
"""

from .fleet import (
    FLEET_BENCH,
    FLEET_LARGE,
    FLEET_SCENARIOS,
    FLEET_SMOKE,
    FleetScenario,
    FleetString,
    FleetWorkload,
    MONOLITHIC_LIMIT,
    generate_fleet,
    get_fleet_scenario,
    materialize_model,
    materialize_string,
)
from .generator import generate_model, generate_network, generate_string
from .heterogeneity import (
    HETEROGENEITY_MODELS,
    consistency_index,
    generate_heterogeneous_model,
    sample_comp_times,
)
from .parameters import (
    KBYTE,
    MB_PER_SEC,
    SCENARIO_1,
    SCENARIO_2,
    SCENARIO_3,
    SCENARIOS,
    ScenarioParameters,
    get_scenario,
)

__all__ = [
    "FLEET_BENCH",
    "FLEET_LARGE",
    "FLEET_SCENARIOS",
    "FLEET_SMOKE",
    "FleetScenario",
    "FleetString",
    "FleetWorkload",
    "HETEROGENEITY_MODELS",
    "KBYTE",
    "MB_PER_SEC",
    "MONOLITHIC_LIMIT",
    "SCENARIO_1",
    "SCENARIO_2",
    "SCENARIO_3",
    "SCENARIOS",
    "ScenarioParameters",
    "consistency_index",
    "generate_fleet",
    "generate_heterogeneous_model",
    "generate_model",
    "generate_network",
    "generate_string",
    "get_fleet_scenario",
    "get_scenario",
    "materialize_model",
    "materialize_string",
    "sample_comp_times",
]
