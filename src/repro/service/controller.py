"""The mission controller: events in, feasible allocations out — on time.

:class:`MissionController` is the tentpole of :mod:`repro.service`.  It
owns the mission state — which catalog services are active, the
accumulated platform faults, the drifted workload factors — and serves
each :class:`~repro.service.events.MissionEvent` as one *request*:

1. apply the event to the mission state;
2. drain the worth-priority admission queue under the current health
   state's slack floor;
3. build the **working model**: the active catalog strings (contiguous
   local ids), workload scaled by the accumulated drift, accumulated
   faults masked in via :func:`repro.faults.injector.inject`;
4. compute the *carry-forward floor*: re-validating the previous
   placements is microseconds and gives a guaranteed feasible answer
   before any search starts;
5. run the :class:`~repro.service.cascade.SolverCascade` under the
   request deadline (tiers restricted by health policy), and keep
   whichever of cascade/floor is lexicographically better;
6. shed lowest-worth services while slackness sits below the health
   floor; record everything in a :class:`RequestOutcome`;
7. feed slackness / deadline / breaker signals back into the
   :class:`~repro.service.health.HealthMonitor`.

The controller never raises on a servable request: step 4 guarantees a
feasible (possibly empty) allocation even when every solver tier is
broken or the budget is already gone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..core.allocation import Allocation
from ..core.exceptions import ModelError
from ..core.model import AppString, SystemModel
from ..dynamic.policies import carry_forward
from ..faults.events import FaultEvent, normalize_faults
from ..faults.injector import inject
from ..heuristics import HeuristicResult
from .admission import QueuedRequest, RequestQueue, plan_shedding
from .breaker import BreakerState
from .cascade import CascadeConfig, SolverCascade
from .deadline import Deadline
from .events import (
    DriftStep,
    FaultsCleared,
    MissionEvent,
    PlatformFault,
    StringArrival,
    StringDeparture,
)
from .health import HealthConfig, HealthMonitor, HealthState

__all__ = [
    "MissionController",
    "RequestOutcome",
    "ServiceConfig",
    "build_working_model",
]

#: accumulated drift factors are clipped to this range so a long walk
#: cannot underflow a string's workload to zero or blow it up unboundedly
_DRIFT_CLIP = (0.1, 10.0)


def build_working_model(
    catalog: SystemModel,
    active: tuple[int, ...],
    drift: np.ndarray,
    fault_events: Sequence[FaultEvent],
) -> SystemModel:
    """The model the solvers see: active catalog strings with contiguous
    local ids, workload scaled by the accumulated drift factors, and the
    accumulated faults masked in (index-stable, see
    :mod:`repro.faults.injector`)."""
    strings = []
    for local, sid in enumerate(active):
        s = catalog.strings[sid]
        f = float(drift[sid])
        strings.append(
            AppString(
                string_id=local,
                worth=s.worth,
                period=s.period,
                max_latency=s.max_latency,
                comp_times=s.comp_times * f,
                cpu_utils=s.cpu_utils,
                output_sizes=s.output_sizes * f,
                name=s.name,
            )
        )
    model = SystemModel(catalog.network, strings, catalog.machines)
    if fault_events:
        model = inject(model, fault_events).faulted
    return model


@dataclass(frozen=True)
class ServiceConfig:
    """Controller-level tuning knobs."""

    #: wall-clock budget per request (seconds)
    default_budget: float = 0.25
    #: acceptance tolerance beyond the deadline (seconds); the soak
    #: harness asserts no request ever exceeds budget + grace
    grace: float = 0.25
    cascade: CascadeConfig = field(default_factory=CascadeConfig)
    health: HealthConfig = field(default_factory=HealthConfig)

    def __post_init__(self) -> None:
        if self.default_budget <= 0:
            raise ModelError("default_budget must be positive")
        if self.grace < 0:
            raise ModelError("grace must be >= 0")


@dataclass
class RequestOutcome:
    """Everything that happened while serving one event."""

    seq: int
    event_kind: str
    event_detail: str
    n_active: int
    worth: float
    slackness: float
    deadline_hit: bool
    elapsed_seconds: float
    budget_seconds: float
    tier_used: str | None
    health: str
    admitted: tuple[int, ...] = ()
    rejected: tuple[int, ...] = ()
    shed: tuple[int, ...] = ()
    attempt_statuses: tuple[str, ...] = ()
    note: str = ""


class MissionController:
    """Online allocation service over a fixed mission catalog.

    Parameters
    ----------
    catalog:
        The full mission model; catalog service ``k`` is
        ``catalog.strings[k]``.  Active services are a subset.
    config:
        Service tuning (budgets, cascade, health thresholds).
    rng:
        Seed or generator for the stochastic solver tiers.
    clock / sleep:
        Injectable time sources (deterministic tests).
    """

    def __init__(
        self,
        catalog: SystemModel,
        config: ServiceConfig | None = None,
        rng: np.random.Generator | int | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.catalog = catalog
        self.config = config or ServiceConfig()
        # per-request RNGs are derived from (base seed, request seq) so a
        # checkpoint-resumed controller reproduces the original stream
        self._base_seed = int(np.random.default_rng(rng).integers(2**32))
        self._clock = clock
        self.cascade = SolverCascade(
            self.config.cascade, clock=clock, sleep=sleep
        )
        self.monitor = HealthMonitor(self.config.health)
        self.queue = RequestQueue()
        #: active catalog service ids
        self.active: set[int] = set()
        #: service id -> machine assignment (one machine per application)
        self.placements: dict[int, tuple[int, ...]] = {}
        self._fault_events: list[FaultEvent] = []
        self._drift = np.ones(catalog.n_strings)
        self._seq = 0
        self.n_rejected_total = 0
        self.n_shed_total = 0

    # -- public API ------------------------------------------------------------

    @property
    def health(self) -> HealthState:
        return self.monitor.state

    def activate(self, service_ids: Iterable[int]) -> None:
        """Mark services active without serving a request (initial load)."""
        for sid in service_ids:
            self._check_service(sid)
            self.active.add(sid)

    def handle(
        self, event: MissionEvent, budget: float | None = None
    ) -> RequestOutcome:
        """Serve one mission event within a wall-clock budget."""
        budget = self.config.default_budget if budget is None else budget
        deadline = Deadline(budget, clock=self._clock)
        self._seq += 1
        note = self._apply(event)
        admitted, rejected = self._drain_queue()
        outcome = self._solve_request(event, deadline, note)
        outcome.admitted = tuple(admitted)
        outcome.rejected = tuple(rejected)
        self.n_rejected_total += len(rejected)
        return outcome

    def run(
        self,
        events: Sequence[MissionEvent],
        budget: float | None = None,
    ) -> list[RequestOutcome]:
        """Serve an event stream; one outcome per event."""
        return [self.handle(event, budget=budget) for event in events]

    def allocation_snapshot(self) -> dict[int, tuple[int, ...]]:
        """The current placements, keyed by catalog service id."""
        return dict(self.placements)

    def apply_event_state(self, event: MissionEvent) -> str:
        """Apply an event's *state* effect without serving a request.

        Used by checkpoint resume (:mod:`repro.service.soak`) to replay
        fault accumulation and drift for already-finished steps without
        re-running their solves.  Arrival/departure effects are restored
        wholesale via :meth:`restore` instead, so this skips the queue.
        """
        if isinstance(event, (StringArrival, StringDeparture)):
            return "skipped (restored from checkpoint)"
        return self._apply(event)

    def restore(
        self,
        active: Iterable[int],
        placements: dict[int, tuple[int, ...]],
        n_served: int,
    ) -> None:
        """Restore committed allocation state from a checkpoint."""
        self.active = set(active)
        for sid in self.active:
            self._check_service(sid)
        self.placements = dict(placements)
        self._seq = n_served

    # -- event application -----------------------------------------------------

    def _check_service(self, sid: int) -> None:
        if not 0 <= sid < self.catalog.n_strings:
            raise ModelError(
                f"service id {sid} out of range "
                f"[0, {self.catalog.n_strings})"
            )

    def _apply(self, event: MissionEvent) -> str:
        if isinstance(event, StringArrival):
            self._check_service(event.service_id)
            if event.service_id in self.active:
                return "already active"
            self.queue.push(
                QueuedRequest(
                    event.service_id,
                    self.catalog.strings[event.service_id].worth,
                )
            )
            return ""
        if isinstance(event, StringDeparture):
            self._check_service(event.service_id)
            if event.service_id not in self.active:
                return "not active"
            self.active.discard(event.service_id)
            self.placements.pop(event.service_id, None)
            return ""
        if isinstance(event, PlatformFault):
            try:
                normalize_faults(
                    [*self._fault_events, event.fault],
                    self.catalog.n_machines,
                )
            except ModelError as exc:
                return f"fault ignored: {exc}"
            self._fault_events.append(event.fault)
            return ""
        if isinstance(event, FaultsCleared):
            self._fault_events.clear()
            return ""
        if isinstance(event, DriftStep):
            steps = np.asarray(event.step_factors, dtype=float)
            if steps.shape != (self.catalog.n_strings,):
                raise ModelError(
                    f"drift step needs {self.catalog.n_strings} factors, "
                    f"got {steps.shape}"
                )
            self._drift = np.clip(self._drift * steps, *_DRIFT_CLIP)
            return ""
        raise ModelError(f"unknown mission event {event!r}")

    def _drain_queue(self) -> tuple[list[int], list[int]]:
        """Admit queued arrivals, highest worth first, under the floor."""
        floor = self.monitor.policy.admission_slack_floor
        current_slack = self._current_slackness()
        admitted: list[int] = []
        rejected: list[int] = []
        while self.queue:
            request = self.queue.pop()
            if request.service_id in self.active:
                continue
            if floor > 0 and current_slack < floor:
                rejected.append(request.service_id)
                continue
            self.active.add(request.service_id)
            admitted.append(request.service_id)
        return admitted, rejected

    def _current_slackness(self) -> float:
        """Slackness of the standing allocation on the current model."""
        active = tuple(sorted(self.active))
        if not active:
            return 1.0
        model = self._working_model(active)
        state, _ = carry_forward(
            model, self._restricted_allocation(model, active)
        )
        return state.slackness()

    # -- model construction ----------------------------------------------------

    def _working_model(self, active: tuple[int, ...]) -> SystemModel:
        """Active catalog strings, drift-scaled, faults masked in."""
        return build_working_model(
            self.catalog, active, self._drift, self._fault_events
        )

    def _restricted_allocation(
        self, model: SystemModel, active: tuple[int, ...]
    ) -> Allocation:
        """The stored placements translated into working-model ids."""
        assignments = {
            local: np.asarray(self.placements[sid], dtype=np.int64)
            for local, sid in enumerate(active)
            if sid in self.placements
        }
        return Allocation(model, assignments)

    # -- request solving -------------------------------------------------------

    def _solve_request(
        self, event: MissionEvent, deadline: Deadline, note: str
    ) -> RequestOutcome:
        active = tuple(sorted(self.active))
        if not active:
            self.placements.clear()
            self.monitor.observe(
                slackness=1.0,
                deadline_hit=True,
                open_breakers=self._open_breakers(),
            )
            return RequestOutcome(
                seq=self._seq,
                event_kind=event.kind,
                event_detail=event.describe(),
                n_active=0,
                worth=0.0,
                slackness=1.0,
                deadline_hit=True,
                elapsed_seconds=deadline.elapsed(),
                budget_seconds=deadline.budget,
                tier_used=None,
                health=self.monitor.state.name,
                note=note or "no active services",
            )

        model = self._working_model(active)

        # guaranteed floor: carrying forward the old placements is
        # microseconds, so a feasible answer exists before any search
        floor_state, _ = carry_forward(
            model, self._restricted_allocation(model, active)
        )
        floor_result = HeuristicResult(
            name="carry-forward",
            allocation=floor_state.as_allocation(),
            fitness=floor_state.fitness(),
            order=tuple(floor_state.mapped_ids),
            mapped_ids=tuple(floor_state.mapped_ids),
        )
        floor_within = not deadline.expired

        cascade_result = self.cascade.solve(
            model,
            deadline,
            allowed_tiers=self.monitor.policy.allowed_tiers,
            rng=np.random.default_rng((self._base_seed, self._seq)),
        )

        if (
            cascade_result.best is not None
            and cascade_result.best.fitness > floor_result.fitness
        ):
            best = cascade_result.best
            deadline_hit = cascade_result.deadline_hit
        else:
            best = floor_result
            deadline_hit = floor_within

        allocation, slackness, shed_sids = self._apply_slack_floor(
            model, active, best.allocation
        )
        worth = allocation.total_worth()

        # commit: unmapped / shed services stand down
        mapped_sids = {active[local] for local in allocation}
        implicit = tuple(
            sid for sid in active
            if sid not in mapped_sids and sid not in shed_sids
        )
        all_shed = tuple(shed_sids) + implicit
        self.active = set(mapped_sids)
        self.placements = {
            active[local]: tuple(
                int(j) for j in allocation.machines_for(local)
            )
            for local in allocation
        }
        self.n_shed_total += len(all_shed)

        self.monitor.observe(
            slackness=slackness,
            deadline_hit=deadline_hit,
            open_breakers=self._open_breakers(),
        )
        return RequestOutcome(
            seq=self._seq,
            event_kind=event.kind,
            event_detail=event.describe(),
            n_active=len(self.active),
            worth=worth,
            slackness=slackness,
            deadline_hit=deadline_hit,
            elapsed_seconds=deadline.elapsed(),
            budget_seconds=deadline.budget,
            tier_used=best.name,
            health=self.monitor.state.name,
            shed=all_shed,
            attempt_statuses=tuple(
                f"{a.tier}:{a.status}" for a in cascade_result.attempts
            ),
            note=note,
        )

    def _apply_slack_floor(
        self,
        model: SystemModel,
        active: tuple[int, ...],
        allocation: Allocation,
    ) -> tuple[Allocation, float, list[int]]:
        """Shed lowest-worth services while slackness is below the floor."""
        state, _ = carry_forward(model, allocation)
        slackness = state.slackness()
        floor = self.monitor.policy.admission_slack_floor
        if slackness >= floor or len(allocation) == 0:
            return state.as_allocation(), slackness, []

        def project(kept: frozenset[int]) -> float | None:
            projected, _ = carry_forward(
                model, allocation.restricted_to(kept)
            )
            return projected.slackness()

        mapped = tuple(allocation)
        worths = {
            local: model.strings[local].worth for local in mapped
        }
        shed_locals, final_slack = plan_shedding(
            mapped, worths, project, floor
        )
        kept = [local for local in mapped if local not in set(shed_locals)]
        final_state, _ = carry_forward(
            model, allocation.restricted_to(kept)
        )
        return (
            final_state.as_allocation(),
            final_state.slackness(),
            [active[local] for local in shed_locals],
        )

    def _open_breakers(self) -> int:
        return sum(
            1
            for breaker in self.cascade.breakers.values()
            if breaker.state is BreakerState.OPEN
        )
