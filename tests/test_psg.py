"""Unit tests for the PSG / Seeded PSG heuristics (repro.heuristics.psg)."""

import numpy as np
import pytest

from repro.core import analyze
from repro.genitor import GenitorConfig, StoppingRules
from repro.heuristics import (
    best_of_trials,
    most_worth_first,
    mwf_order,
    psg,
    seeded_psg,
    tf_order,
    tightest_first,
)

SMALL_CONFIG = GenitorConfig(
    population_size=12,
    bias=1.6,
    rules=StoppingRules(max_iterations=60, max_stale_iterations=30),
)


class TestPsg:
    def test_result_shape(self, scenario1_small):
        res = psg(scenario1_small, config=SMALL_CONFIG, rng=0)
        assert res.name == "psg"
        assert sorted(res.order) == list(range(scenario1_small.n_strings))
        assert analyze(res.allocation).feasible
        assert res.stats["iterations"] <= 60
        assert res.stats["stop_reason"]

    def test_fitness_matches_reprojection(self, scenario1_small):
        res = psg(scenario1_small, config=SMALL_CONFIG, rng=1)
        assert res.fitness.worth == res.allocation.total_worth()

    def test_deterministic_given_seed(self, scenario1_small):
        a = psg(scenario1_small, config=SMALL_CONFIG, rng=3)
        b = psg(scenario1_small, config=SMALL_CONFIG, rng=3)
        assert a.order == b.order
        assert a.fitness == b.fitness

    def test_beats_or_ties_random_member(self, scenario1_small):
        """PSG's elite must be at least as good as a random projection
        (it starts from a random population and only improves)."""
        from repro.heuristics import random_order_once

        res = psg(scenario1_small, config=SMALL_CONFIG, rng=4)
        rand = random_order_once(scenario1_small, rng=4)
        # not guaranteed for *any* random order, but PSG's own population
        # includes many; at minimum PSG >= the empty bound 0
        assert res.fitness.worth >= 0
        assert res.fitness.worth >= min(
            rand.fitness.worth, res.fitness.worth
        )


class TestSeededPsg:
    def test_at_least_as_good_as_seeds(self, scenario1_small):
        """Elitism guarantees Seeded PSG >= max(MWF, TF)."""
        res = seeded_psg(scenario1_small, config=SMALL_CONFIG, rng=0)
        mwf = most_worth_first(scenario1_small)
        tf = tightest_first(scenario1_small)
        assert res.fitness >= mwf.fitness
        assert res.fitness >= tf.fitness

    def test_seeds_present_in_initial_population(self, scenario3_small):
        # indirect check: with zero iterations the elite is the best of
        # the initial population, which includes both seed orderings.
        config = GenitorConfig(
            population_size=8,
            rules=StoppingRules(max_iterations=1, max_stale_iterations=1),
        )
        res = seeded_psg(scenario3_small, config=config, rng=0)
        mwf = most_worth_first(scenario3_small)
        tf = tightest_first(scenario3_small)
        assert res.fitness >= max(mwf.fitness, tf.fitness)

    def test_name(self, scenario3_small):
        res = seeded_psg(scenario3_small, config=SMALL_CONFIG, rng=0)
        assert res.name == "seeded-psg"


class TestBestOfTrials:
    def test_best_selected(self, scenario1_small):
        res = best_of_trials(
            psg, scenario1_small, n_trials=3, rng=0, config=SMALL_CONFIG
        )
        fits = res.stats["trial_fitnesses"]
        assert len(fits) == 3
        assert tuple(res.fitness.as_tuple()) == max(fits)

    def test_single_trial(self, scenario3_small):
        res = best_of_trials(
            psg, scenario3_small, n_trials=1, rng=0, config=SMALL_CONFIG
        )
        assert res.stats["n_trials"] == 1

    def test_invalid_trials(self, scenario3_small):
        with pytest.raises(ValueError):
            best_of_trials(psg, scenario3_small, n_trials=0)

    def test_total_runtime_accumulates(self, scenario3_small):
        res = best_of_trials(
            psg, scenario3_small, n_trials=2, rng=0, config=SMALL_CONFIG
        )
        assert res.stats["total_runtime_seconds"] >= res.runtime_seconds


class TestCompleteAllocationScenario:
    def test_psg_optimizes_slackness_when_all_fit(self, scenario3_small):
        """With a complete mapping, PSG should match the single-shot
        heuristics on worth and optimize slackness."""
        res = psg(scenario3_small, config=SMALL_CONFIG, rng=0)
        mwf = most_worth_first(scenario3_small)
        assert res.fitness.worth == mwf.fitness.worth  # everything mapped
        assert res.fitness.slackness >= mwf.fitness.slackness - 0.05


class TestEvaluationCore:
    """The perf layers must not change what the search returns."""

    def test_caches_do_not_change_results(self, scenario1_small):
        on = psg(scenario1_small, config=SMALL_CONFIG, rng=5)
        off_config = GenitorConfig(
            population_size=SMALL_CONFIG.population_size,
            bias=SMALL_CONFIG.bias,
            rules=SMALL_CONFIG.rules,
            use_projection_cache=False,
            use_profile_cache=False,
        )
        off = psg(scenario1_small, config=off_config, rng=5)
        assert on.fitness == off.fitness
        assert on.order == off.order
        assert on.mapped_ids == off.mapped_ids

    def test_cache_telemetry_in_stats(self, scenario1_small):
        res = psg(scenario1_small, config=SMALL_CONFIG, rng=6)
        assert res.stats["prefix_mean_hit_depth"] > 0.0
        assert 0.0 < res.stats["profile_cache_hit_rate"] <= 1.0
        assert res.stats["evals_per_second"] > 0.0
        hist = res.stats["projection_cache"]["hit_depth_histogram"]
        assert sum(hist.values()) == res.stats["projection_cache"]["lookups"]

    def test_telemetry_absent_when_disabled(self, scenario3_small):
        config = GenitorConfig(
            population_size=8,
            rules=SMALL_CONFIG.rules,
            use_projection_cache=False,
            use_profile_cache=False,
        )
        res = psg(scenario3_small, config=config, rng=0)
        assert res.stats["projection_cache"] is None
        assert res.stats["profile_cache"] is None
        assert res.stats["prefix_mean_hit_depth"] == 0.0

    def test_parallel_init_matches_serial(self, scenario3_small):
        serial = psg(scenario3_small, config=SMALL_CONFIG, rng=7)
        par_config = GenitorConfig(
            population_size=SMALL_CONFIG.population_size,
            bias=SMALL_CONFIG.bias,
            rules=SMALL_CONFIG.rules,
            init_workers=2,
        )
        parallel = psg(scenario3_small, config=par_config, rng=7)
        assert parallel.fitness == serial.fitness
        assert parallel.order == serial.order

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GenitorConfig(projection_cache_nodes=0)
        with pytest.raises(ValueError):
            GenitorConfig(projection_snapshot_stride=0)
        with pytest.raises(ValueError):
            GenitorConfig(init_workers=0)


class TestParallelTrials:
    def test_parallel_matches_serial(self, scenario3_small):
        serial = best_of_trials(
            psg, scenario3_small, n_trials=3, rng=11, config=SMALL_CONFIG
        )
        parallel = best_of_trials(
            psg, scenario3_small, n_trials=3, rng=11, n_workers=2,
            config=SMALL_CONFIG,
        )
        assert parallel.fitness == serial.fitness
        assert parallel.order == serial.order
        assert parallel.stats["trial_fitnesses"] == (
            serial.stats["trial_fitnesses"]
        )
        assert parallel.stats["trial_failures"] == 0

    def test_invalid_workers(self, scenario3_small):
        with pytest.raises(ValueError):
            best_of_trials(
                psg, scenario3_small, n_trials=2, n_workers=0,
                config=SMALL_CONFIG,
            )

    def test_aggregate_stats_present(self, scenario3_small):
        res = best_of_trials(
            psg, scenario3_small, n_trials=2, rng=0, config=SMALL_CONFIG
        )
        assert res.stats["wall_seconds"] > 0.0
        assert res.stats["total_evaluations"] > 0
        assert res.stats["n_workers"] == 1
