"""Typed fault events for the shipboard fault-injection subsystem.

The paper's motivation (Sections 1, 4) is an environment where "machines
may fail" and resources can be lost without warning — a ship takes
damage, a compartment floods, a switch burns out — yet a static
allocation must retain as much mission worth as possible.  This module
defines the vocabulary of such events:

* :class:`MachineFailure` — a machine is lost outright; nothing can
  execute on it.
* :class:`RouteFailure` — one virtual point-to-point route is lost;
  no transfer can use it.
* :class:`MachineDegradation` — a machine survives at a fraction of its
  nominal speed (e.g. thermal throttling, partial hardware loss).
* :class:`RouteDegradation` — a route survives at a fraction of its
  nominal bandwidth.
* :class:`DamageZone` — the correlated case: physical damage takes out
  a machine *and* every route incident to it, plus optional collateral
  routes between other machines whose physical links ran through the
  damaged zone.

Events are pure declarations; :func:`normalize_faults` folds any
sequence of them into a :class:`FaultSet` (failures dominate
degradations, repeated degradations compound multiplicatively) which
:mod:`repro.faults.injector` then applies to a
:class:`~repro.core.model.SystemModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping, Sequence

from ..core.exceptions import ModelError
from ..core.numeric import is_zero

__all__ = [
    "Route",
    "FaultEvent",
    "MachineFailure",
    "RouteFailure",
    "MachineDegradation",
    "RouteDegradation",
    "DamageZone",
    "FaultSet",
    "fault_from_record",
    "fault_to_record",
    "normalize_faults",
    "parse_fault",
]

Route = tuple[int, int]


@dataclass(frozen=True)
class FaultEvent:
    """Base class for all fault events (never instantiated directly)."""

    kind: ClassVar[str] = "abstract"

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.kind


def _check_route(route: Route) -> None:
    j1, j2 = route
    if j1 < 0 or j2 < 0:
        raise ModelError(f"route indices must be >= 0, got {route}")
    if j1 == j2:
        raise ModelError(
            f"route {route} is intra-machine; intra-machine routes have "
            "infinite bandwidth and cannot fail"
        )


def _check_capacity(capacity: float, what: str) -> None:
    if not 0.0 < capacity <= 1.0:
        raise ModelError(
            f"{what} capacity must lie in (0, 1], got {capacity}"
        )


@dataclass(frozen=True)
class MachineFailure(FaultEvent):
    """Machine ``machine`` is lost outright."""

    machine: int
    kind: ClassVar[str] = "machine-failure"

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ModelError(
                f"machine index must be >= 0, got {self.machine}"
            )

    def describe(self) -> str:
        return f"machine {self.machine} failed"


@dataclass(frozen=True)
class RouteFailure(FaultEvent):
    """The virtual route ``route[0] -> route[1]`` is lost."""

    route: Route
    kind: ClassVar[str] = "route-failure"

    def __post_init__(self) -> None:
        _check_route(self.route)

    def describe(self) -> str:
        return f"route {self.route[0]}->{self.route[1]} failed"


@dataclass(frozen=True)
class MachineDegradation(FaultEvent):
    """Machine ``machine`` runs at ``capacity`` of its nominal speed.

    Nominal execution times on the machine grow by ``1 / capacity``;
    CPU utilizations, and therefore the *shape* of the sharing model,
    stay fixed.
    """

    machine: int
    capacity: float
    kind: ClassVar[str] = "machine-degradation"

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ModelError(
                f"machine index must be >= 0, got {self.machine}"
            )
        _check_capacity(self.capacity, "machine")

    def describe(self) -> str:
        return (
            f"machine {self.machine} degraded to "
            f"{self.capacity:.0%} capacity"
        )


@dataclass(frozen=True)
class RouteDegradation(FaultEvent):
    """Route ``route`` retains ``capacity`` of its nominal bandwidth."""

    route: Route
    capacity: float
    kind: ClassVar[str] = "route-degradation"

    def __post_init__(self) -> None:
        _check_route(self.route)
        _check_capacity(self.capacity, "route")

    def describe(self) -> str:
        return (
            f"route {self.route[0]}->{self.route[1]} degraded to "
            f"{self.capacity:.0%} bandwidth"
        )


@dataclass(frozen=True)
class DamageZone(FaultEvent):
    """Correlated damage: a machine, its routes, and collateral links.

    The machine fails, every route incident to it fails with it, and
    each ``collateral_routes`` entry (a route between *other* machines
    whose physical link ran through the damaged zone) fails when
    ``collateral_capacity`` is 0 or degrades to that capacity otherwise.
    """

    machine: int
    collateral_routes: tuple[Route, ...] = field(default=())
    collateral_capacity: float = 0.0
    kind: ClassVar[str] = "damage-zone"

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ModelError(
                f"machine index must be >= 0, got {self.machine}"
            )
        if not 0.0 <= self.collateral_capacity <= 1.0:
            raise ModelError(
                "collateral capacity must lie in [0, 1], got "
                f"{self.collateral_capacity}"
            )
        for route in self.collateral_routes:
            _check_route(route)

    def describe(self) -> str:
        extra = ""
        if self.collateral_routes:
            routes = ", ".join(
                f"{a}->{b}" for a, b in self.collateral_routes
            )
            fate = (
                "failed"
                if is_zero(self.collateral_capacity)
                else f"degraded to {self.collateral_capacity:.0%}"
            )
            extra = f"; collateral routes {routes} {fate}"
        return f"damage zone around machine {self.machine}{extra}"


@dataclass(frozen=True)
class FaultSet:
    """Normalized union of a sequence of fault events.

    ``machine_capacity`` / ``route_capacity`` carry the *surviving*
    capacity fraction of degraded-but-alive resources; failed resources
    never appear in them (failure dominates degradation).
    """

    failed_machines: frozenset[int]
    failed_routes: frozenset[Route]
    machine_capacity: Mapping[int, float]
    route_capacity: Mapping[Route, float]

    @property
    def is_empty(self) -> bool:
        return not (
            self.failed_machines
            or self.failed_routes
            or self.machine_capacity
            or self.route_capacity
        )

    def describe(self) -> str:
        parts: list[str] = []
        if self.failed_machines:
            parts.append(
                "failed machines: "
                + ", ".join(str(j) for j in sorted(self.failed_machines))
            )
        if self.failed_routes:
            parts.append(
                "failed routes: "
                + ", ".join(
                    f"{a}->{b}" for a, b in sorted(self.failed_routes)
                )
            )
        for j, cap in sorted(self.machine_capacity.items()):
            parts.append(f"machine {j} at {cap:.0%}")
        for (a, b), cap in sorted(self.route_capacity.items()):
            parts.append(f"route {a}->{b} at {cap:.0%}")
        return "; ".join(parts) if parts else "no faults"


def normalize_faults(
    events: Sequence[FaultEvent], n_machines: int
) -> FaultSet:
    """Fold fault events into a validated :class:`FaultSet`.

    Rules: failure dominates degradation on the same resource; repeated
    degradations compound multiplicatively; a :class:`DamageZone`
    expands to its machine failure plus the incident and collateral
    route faults.  Raises :class:`~repro.core.exceptions.ModelError`
    when a resource index is out of range or every machine would be
    lost (an empty platform has no recovery story).
    """
    failed_machines: set[int] = set()
    failed_routes: set[Route] = set()
    machine_capacity: dict[int, float] = {}
    route_capacity: dict[Route, float] = {}

    def check_machine(j: int) -> None:
        if not 0 <= j < n_machines:
            raise ModelError(
                f"machine index {j} out of range [0, {n_machines})"
            )

    def check_route(route: Route) -> None:
        for j in route:
            if not 0 <= j < n_machines:
                raise ModelError(
                    f"route {route} out of range [0, {n_machines})"
                )

    def fail_route(route: Route) -> None:
        check_route(route)
        failed_routes.add(route)

    for event in events:
        if isinstance(event, MachineFailure):
            check_machine(event.machine)
            failed_machines.add(event.machine)
        elif isinstance(event, RouteFailure):
            fail_route(event.route)
        elif isinstance(event, MachineDegradation):
            check_machine(event.machine)
            machine_capacity[event.machine] = (
                machine_capacity.get(event.machine, 1.0) * event.capacity
            )
        elif isinstance(event, RouteDegradation):
            check_route(event.route)
            route_capacity[event.route] = (
                route_capacity.get(event.route, 1.0) * event.capacity
            )
        elif isinstance(event, DamageZone):
            check_machine(event.machine)
            failed_machines.add(event.machine)
            for other in range(n_machines):
                if other != event.machine:
                    failed_routes.add((event.machine, other))
                    failed_routes.add((other, event.machine))
            for route in event.collateral_routes:
                if is_zero(event.collateral_capacity):
                    fail_route(route)
                else:
                    check_route(route)
                    route_capacity[route] = (
                        route_capacity.get(route, 1.0)
                        * event.collateral_capacity
                    )
        else:
            raise ModelError(f"unknown fault event {event!r}")

    if len(failed_machines) >= n_machines:
        raise ModelError(
            "fault set fails every machine; at least one must survive"
        )
    # failure dominates degradation
    for j in failed_machines:
        machine_capacity.pop(j, None)
    for route in failed_routes:
        route_capacity.pop(route, None)
    return FaultSet(
        failed_machines=frozenset(failed_machines),
        failed_routes=frozenset(failed_routes),
        machine_capacity=machine_capacity,
        route_capacity=route_capacity,
    )


def fault_to_record(event: FaultEvent) -> dict[str, object]:
    """Encode one fault event as JSON-compatible data.

    The inverse of :func:`fault_from_record`; used by the service
    journal (:mod:`repro.service.journal`) to persist
    :class:`~repro.service.events.PlatformFault` mission events.
    """
    if isinstance(event, MachineFailure):
        return {"kind": event.kind, "machine": event.machine}
    if isinstance(event, RouteFailure):
        return {"kind": event.kind, "route": list(event.route)}
    if isinstance(event, MachineDegradation):
        return {
            "kind": event.kind,
            "machine": event.machine,
            "capacity": event.capacity,
        }
    if isinstance(event, RouteDegradation):
        return {
            "kind": event.kind,
            "route": list(event.route),
            "capacity": event.capacity,
        }
    if isinstance(event, DamageZone):
        return {
            "kind": event.kind,
            "machine": event.machine,
            "collateral_routes": [
                list(r) for r in event.collateral_routes
            ],
            "collateral_capacity": event.collateral_capacity,
        }
    raise ModelError(f"cannot serialize fault event {event!r}")


def _record_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ModelError(f"expected a number in fault record, got {value!r}")
    return int(value)


def _record_float(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ModelError(f"expected a number in fault record, got {value!r}")
    return float(value)


def _record_route(value: object) -> Route:
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise ModelError(f"malformed route in fault record: {value!r}")
    return (_record_int(value[0]), _record_int(value[1]))


def fault_from_record(record: Mapping[str, object]) -> FaultEvent:
    """Decode :func:`fault_to_record` output (validated reconstruction)."""
    if not isinstance(record, Mapping) or "kind" not in record:
        raise ModelError(f"fault record has no 'kind': {record!r}")
    kind = record["kind"]
    try:
        if kind == MachineFailure.kind:
            return MachineFailure(_record_int(record["machine"]))
        if kind == RouteFailure.kind:
            return RouteFailure(_record_route(record["route"]))
        if kind == MachineDegradation.kind:
            return MachineDegradation(
                _record_int(record["machine"]),
                _record_float(record["capacity"]),
            )
        if kind == RouteDegradation.kind:
            return RouteDegradation(
                _record_route(record["route"]),
                _record_float(record["capacity"]),
            )
        if kind == DamageZone.kind:
            routes = record.get("collateral_routes", [])
            if not isinstance(routes, (list, tuple)):
                raise ModelError(
                    f"malformed collateral_routes: {routes!r}"
                )
            return DamageZone(
                _record_int(record["machine"]),
                collateral_routes=tuple(
                    _record_route(r) for r in routes
                ),
                collateral_capacity=_record_float(
                    record.get("collateral_capacity", 0.0)
                ),
            )
    except KeyError as exc:
        raise ModelError(f"malformed fault record {record!r}") from exc
    raise ModelError(f"unknown fault kind {kind!r} in record")


def _parse_route(text: str) -> Route:
    try:
        a, b = text.split("-")
        return (int(a), int(b))
    except ValueError:
        raise ModelError(
            f"cannot parse route {text!r}; expected 'J1-J2'"
        ) from None


def parse_fault(spec: str) -> FaultEvent:
    """Parse a CLI fault spec into an event.

    Accepted forms::

        machine:J                    machine J fails
        route:J1-J2                  route J1->J2 fails
        degrade-machine:J:F          machine J keeps fraction F of speed
        degrade-route:J1-J2:F        route keeps fraction F of bandwidth
        zone:J[:J1-J2,J3-J4,...]     damage zone around J (+ collateral)
    """
    head, _, rest = spec.partition(":")
    try:
        if head == "machine":
            return MachineFailure(int(rest))
        if head == "route":
            return RouteFailure(_parse_route(rest))
        if head == "degrade-machine":
            j, _, cap = rest.partition(":")
            return MachineDegradation(int(j), float(cap))
        if head == "degrade-route":
            route, _, cap = rest.partition(":")
            return RouteDegradation(_parse_route(route), float(cap))
        if head == "zone":
            j, _, collateral = rest.partition(":")
            routes = tuple(
                _parse_route(r) for r in collateral.split(",") if r
            )
            return DamageZone(int(j), collateral_routes=routes)
    except ModelError:
        raise
    except ValueError:
        raise ModelError(f"cannot parse fault spec {spec!r}") from None
    raise ModelError(
        f"unknown fault kind {head!r}; expected machine | route | "
        "degrade-machine | degrade-route | zone"
    )
