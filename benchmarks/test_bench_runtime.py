"""Benchmark + regeneration of the Section-8 runtime comparison.

The paper reports (full scale, 2005 hardware): MWF/TF "a few seconds",
PSG/Seeded PSG "approximately two hours per single run", LP "less than
two seconds".  Absolute numbers are not reproducible across hardware and
implementation language; the asserted reproduction target is the
*ordering* — evolutionary heuristics are orders of magnitude slower than
the single-shot ones.
"""

from __future__ import annotations

from repro.experiments import run_runtime_table


def test_runtime_ordering(benchmark, bench_scale):
    out = benchmark.pedantic(
        lambda: run_runtime_table(scale=bench_scale, seed=2_000),
        rounds=1,
        iterations=1,
    )
    print()
    print(out["table"])
    for row in out["rows"]:
        benchmark.extra_info[row.name] = row.seconds
    assert out["ordering_ok"]
    timings = {r.name: r.seconds for r in out["rows"]}
    # evolutionary heuristics at least 10x the single-shot heuristics
    assert timings["psg"] > 10 * timings["mwf"]
    assert timings["seeded-psg"] > 10 * timings["tf"]
