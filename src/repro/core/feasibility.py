"""Two-stage feasibility analysis (Section 3).

An allocation is *feasible* when

* **Stage 1** — every machine utilization (eq. 2) and every route
  utilization (eq. 3) is at most 1, and
* **Stage 2** — under the tightness-priority sharing model, the estimated
  computation times (eq. 5), transfer times (eq. 6), and end-to-end
  latency of every mapped string satisfy the QoS constraints of eq. (1):

  .. math::

     t_{comp}^k[i] \\le P[k], \\qquad
     t_{tran}^k[i] \\le P[k], \\qquad
     t_{comp}^k[n_k] + \\sum_{i<n_k}(t_{comp}^k[i] + t_{tran}^k[i])
         \\le L_{max}[k].

:func:`analyze` runs both stages and returns a structured
:class:`FeasibilityReport`; :func:`is_feasible` is the boolean shortcut.
The analysis here recomputes everything from scratch (vectorized, one
priority-ordered sweep); the heuristics use the incremental
:class:`repro.core.state.AllocationState`, which the test suite checks
against this module property-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .allocation import Allocation
from .timing import TimingEstimator
from .utilization import UtilizationSnapshot

__all__ = [
    "DEFAULT_TOL",
    "Violation",
    "FeasibilityReport",
    "analyze",
    "is_feasible",
]

#: Relative tolerance applied to every capacity/QoS comparison.  Guards
#: against spurious failures from floating-point accumulation order; the
#: incremental and from-scratch analyses must agree for utilizations this
#: close to a bound.
DEFAULT_TOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed constraint.

    ``kind`` is one of ``machine-capacity``, ``route-capacity``,
    ``throughput-comp``, ``throughput-tran``, ``latency``.  ``where``
    identifies the resource or (string, app) pair; ``value``/``bound``
    hold the violated comparison.
    """

    kind: str
    where: str
    value: float
    bound: float

    def __str__(self) -> str:
        return f"{self.kind} at {self.where}: {self.value:.6g} > {self.bound:.6g}"


@dataclass
class FeasibilityReport:
    """Outcome of the two-stage analysis.

    Attributes
    ----------
    stage1_ok / stage2_ok:
        Per-stage verdicts.  Stage 2 is still evaluated when stage 1
        fails (useful for diagnosis), matching the paper's description of
        the stages as independent checks.
    violations:
        All constraint failures found (empty iff feasible).
    utilization:
        The stage-1 :class:`~repro.core.utilization.UtilizationSnapshot`.
    latencies:
        Estimated end-to-end latency per mapped string.
    """

    stage1_ok: bool
    stage2_ok: bool
    utilization: UtilizationSnapshot
    latencies: dict[int, float] = field(default_factory=dict)
    violations: list[Violation] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return self.stage1_ok and self.stage2_ok

    def summary(self) -> str:
        if self.feasible:
            return (
                "feasible (max utilization "
                f"{self.utilization.max_utilization():.4f})"
            )
        head = f"infeasible ({len(self.violations)} violations)"
        lines = [head] + [f"  - {v}" for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def analyze(
    allocation: Allocation, tol: float = DEFAULT_TOL
) -> FeasibilityReport:
    """Run the full two-stage feasibility analysis on an allocation."""
    model = allocation.model
    snapshot = UtilizationSnapshot.of(allocation)
    violations: list[Violation] = []

    # --- stage 1: capacity --------------------------------------------------
    for j in np.flatnonzero(snapshot.machine > 1.0 + tol):
        violations.append(
            Violation("machine-capacity", f"machine {j}", float(snapshot.machine[j]), 1.0)
        )
    route = snapshot.route
    over = np.argwhere(route > 1.0 + tol)
    for j1, j2 in over:
        if j1 != j2:
            violations.append(
                Violation(
                    "route-capacity",
                    f"route {j1}->{j2}",
                    float(route[j1, j2]),
                    1.0,
                )
            )
    stage1_ok = not violations

    # --- stage 2: throughput and latency -------------------------------------
    stage2_ok = True
    latencies: dict[int, float] = {}
    estimator = TimingEstimator(allocation)
    for k, timing in estimator.all_timings().items():
        s = model.strings[k]
        period = s.period
        for i, t in enumerate(timing.comp_times):
            if t > period * (1.0 + tol):
                stage2_ok = False
                violations.append(
                    Violation(
                        "throughput-comp",
                        f"string {k} app {i}",
                        float(t),
                        period,
                    )
                )
        for i, t in enumerate(timing.tran_times):
            if t > period * (1.0 + tol):
                stage2_ok = False
                violations.append(
                    Violation(
                        "throughput-tran",
                        f"string {k} transfer {i}",
                        float(t),
                        period,
                    )
                )
        lat = timing.end_to_end_latency()
        latencies[k] = lat
        if lat > s.max_latency * (1.0 + tol):
            stage2_ok = False
            violations.append(
                Violation("latency", f"string {k}", lat, s.max_latency)
            )

    return FeasibilityReport(
        stage1_ok=stage1_ok,
        stage2_ok=stage2_ok,
        utilization=snapshot,
        latencies=latencies,
        violations=violations,
    )


def is_feasible(allocation: Allocation, tol: float = DEFAULT_TOL) -> bool:
    """``True`` iff the allocation passes both feasibility stages."""
    return analyze(allocation, tol=tol).feasible
