"""Batched population evaluation over stacked SoA buffers.

The scalar kernels (:mod:`repro.core.state_soa` and friends) score one
candidate ordering at a time; every NumPy operation they issue touches a
``(c, N)`` block small enough that per-call dispatch overhead rivals the
arithmetic.  This module amortizes that overhead across a *population*:
:class:`BatchSoaState` stacks ``B`` independent lane states into one
``(B, 7 + 4·(C+1), N)`` float64 buffer and runs the two-stage
feasibility analysis for one candidate string **per lane** as vectorized
passes over the whole batch — stage-1 capacity, stage-2a/2b
interference and latency re-checks, worth accumulation, and commit all
execute once per placement step instead of once per lane.

Lanes are independent: an ordering that fails at step ``s`` simply goes
inactive (early-exit masking) while the rest of the batch keeps
stepping.  Failed-lane arithmetic in later stages of the same step is
computed but masked out of both the rejection decoding and the commit.

Padding and the dummy row
-------------------------
Per step each lane contributes its candidate's
:class:`~repro.core.profile.StringProfile`; profiles touch different
numbers of resources, so per-lane resource vectors are padded to the
widest profile in the step.  Padded entries carry ``res_idx = C`` — an
extra *dummy row* appended to every per-resource block (and to the fused
utilization vector) — with zero load/tmax/count.  Every gather from the
dummy row is annihilated by a zero multiplier or an empty membership
mask, and every scatter to it writes values that nothing reads, so
padding never perturbs lane arithmetic.

Bit-identity
------------
Batched and scalar evaluation are bit-identical — same fitness, same
``last_rejection`` fields, same committed state per lane.  The batched
passes perform the scalar kernels' IEEE-754 operations elementwise with
the lane axis prepended; the two genuinely sequential accumulations
(the new string's ``wait_sum`` chain and the stage-2b per-slot wait
fold) are explicit Python loops over the resource axis — vectorized
across lanes, sequential within a lane — because handing them to
``np.add.reduce`` over an *inner* array axis would invite NumPy's
pairwise summation and silently reassociate the chain.  Zero-initialized
accumulators match the scalar chains exactly: every addend is
non-negative, and ``0.0 + x == x`` holds bitwise for non-negative
``x``.  The randomized equivalence walks in ``tests/test_state_batch.py``
gate all of this against the scalar backends.

Projection-cache interop
------------------------
Lane states convert losslessly to and from
:class:`~repro.core.state_soa.SoaStateSnapshot`, so a batch projection
can resume from — and store snapshots into — the same
:class:`~repro.heuristics.projection_cache.ProjectionCache` the scalar
SoA path uses.  Snapshots do **not** transfer across backend families:
when the run's scalar backend resolves to ``record`` the callers below
leave the shared cache to the scalar path and batch-evaluate cache-less
(results are identical either way; caches only change speed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, cast

import numpy as np

from .feasibility import DEFAULT_TOL
from .metrics import Fitness
from .model import SystemModel
from .profile import ProfileCache, StringProfile, compute_profile
from .state import AllocationState, RejectionReason
from .state_soa import SoaAllocationState, SoaStateSnapshot
from .types import FloatArray, IntVectorLike

if TYPE_CHECKING:
    from ..heuristics.projection_cache import ProjectionCache, _TrieNode

__all__ = [
    "BatchEvaluator",
    "BatchOutcome",
    "BatchSoaState",
    "DEFAULT_MAX_LANES",
    "evaluate_batch",
    "probe_try_add",
    "project_batch",
]

#: Scalar rows ahead of the per-resource blocks (mirrors state_soa).
_SCALAR_ROWS = 7

#: Default lane-chunk width: bounds the stacked buffer to a few tens of
#: megabytes at the paper's largest scenario scale while keeping enough
#: lanes in flight to amortize per-pass dispatch.
DEFAULT_MAX_LANES = 32


def _res_name(rho: int, n_machines: int) -> str:
    if rho < n_machines:
        return f"machine {rho}"
    j1, j2 = divmod(rho - n_machines, n_machines)
    return f"route {j1}->{j2}"


class _LaneView:
    """Duck-typed stand-in for an :class:`AllocationState` exposing just
    what the deterministic IMR reads: the model and the committed
    utilization views of one lane."""

    __slots__ = ("model", "machine_util", "route_util")

    def __init__(
        self,
        model: SystemModel,
        machine_util: FloatArray,
        route_util: FloatArray,
    ) -> None:
        self.model = model
        self.machine_util = machine_util
        self.route_util = route_util


class _StepArrays:
    """Padded per-step candidate arrays (one row per stepping lane)."""

    __slots__ = (
        "lanes", "sid", "Ridx", "Rload", "Rtmax", "Rcnt",
        "t", "P", "nomp", "mlat", "valid",
    )

    def __init__(
        self,
        lanes: Sequence[int],
        sids: Sequence[int],
        profs: Sequence[StringProfile],
        dummy_row: int,
    ) -> None:
        A = len(lanes)
        cmax = max(p.res_idx.size for p in profs)
        self.lanes = np.asarray(lanes, dtype=np.int64)
        self.sid = np.asarray(sids, dtype=np.int64)
        self.Ridx = np.full((A, cmax), dummy_row, dtype=np.int64)
        self.Rload = np.zeros((A, cmax))
        self.Rtmax = np.zeros((A, cmax))
        self.Rcnt = np.zeros((A, cmax))
        self.valid = np.zeros((A, cmax), dtype=bool)
        self.t = np.empty(A)
        self.P = np.empty(A)
        self.nomp = np.empty(A)
        self.mlat = np.empty(A)
        for i, p in enumerate(profs):
            c = p.res_idx.size
            self.Ridx[i, :c] = p.res_idx
            self.Rload[i, :c] = p.res_load
            self.Rtmax[i, :c] = p.res_tmax
            self.Rcnt[i, :c] = p.res_count
            self.valid[i, :c] = True
            self.t[i] = p.tightness
            self.P[i] = p.period
            self.nomp[i] = p.nominal_path
            self.mlat[i] = p.max_latency


class _StageResults:
    """Raw check/intermediate arrays of one batched feasibility pass."""

    __slots__ = (
        "nu", "viol1", "f1", "lhs2a", "viol2a", "f2a", "latency", "f2alat",
        "lhs2b", "viol2b", "f2b", "newlat", "violL", "fL", "ok",
        "Hnew", "ws", "wd", "Hg", "Hp", "Ml",
    )


def _staged_checks(
    sa: _StepArrays,
    util: FloatArray,
    tight: FloatArray,
    cnt: FloatArray,
    load: FloatArray,
    tmax: FloatArray,
    H: FloatArray,
    period: FloatArray,
    wait: FloatArray,
    nominal: FloatArray,
    pbound: FloatArray,
    lbound: FloatArray,
    ids: np.ndarray,
    tol: float,
) -> _StageResults:
    """Run the two-stage analysis for all stepping lanes at once.

    The per-lane state arrays arrive pre-gathered with the lane axis
    prepended — ``util`` is ``(A, ·)``, ``tight``/``wait``/… are
    ``(A, N)``, and the resource blocks are ``(A, c, N)`` — so the same
    code serves both the stacked buffer (lanes gathered per step) and
    the broadcast single-state probe.  Nothing here mutates state.
    """
    r = _StageResults()
    bound = 1.0 + tol
    A, cmax = sa.Ridx.shape
    N = ids.size

    # ---- stage 1: capacity (fused machines + routes) --------------------
    r.nu = util + sa.Rload
    r.viol1 = (r.nu > bound) & sa.valid
    r.f1 = r.viol1.any(axis=1)

    # ---- priority partition ---------------------------------------------
    hi = (tight > sa.t[:, None]) | (
        (tight == sa.t[:, None])  # repro: noqa[RPR001] exact-key tie
        & (ids[None, :] < sa.sid[:, None])
    )
    used = cnt > 0.0
    Mh = used & hi[:, None, :] & sa.valid[:, :, None]
    Ml = (used ^ (used & hi[:, None, :])) & sa.valid[:, :, None]
    r.Ml = Ml

    # ---- stage 2a: the new string under existing interference -----------
    # Priority predecessor per (lane, resource): argmin over the reversed
    # slot axis = minimum tightness, largest id on ties — the scalar
    # kernel's exact selection.
    keyed = np.where(Mh, tight[:, None, :], np.inf)
    has = Mh.any(axis=2)
    wsel = (N - 1) - keyed[:, :, ::-1].argmin(axis=2)
    gl = np.take_along_axis(load, wsel[:, :, None], axis=2)[:, :, 0]
    gH = np.take_along_axis(H, wsel[:, :, None], axis=2)[:, :, 0]
    r.Hnew = np.where(has, gH + gl, 0.0)
    r.lhs2a = sa.Rtmax + sa.P[:, None] * r.Hnew
    r.viol2a = (r.lhs2a > (sa.P * bound)[:, None]) & sa.valid
    r.f2a = r.viol2a.any(axis=1)

    # Canonical wait_sum chain: sequential over the resource axis (an
    # explicit loop — reduce over an inner axis may sum pairwise),
    # vectorized across lanes.  Padded products are +0.0, which is exact.
    ws = np.zeros(A)
    prods_ws = sa.Rcnt * r.Hnew
    for ci in range(cmax):
        ws += prods_ws[:, ci]
    r.ws = ws
    r.latency = sa.nomp + sa.P * ws
    r.f2alat = r.latency > sa.mlat * bound

    # ---- stage 2b: existing lower-priority strings gain interference ----
    r.Hg = H
    r.Hp = H + sa.Rload[:, :, None]
    ph = period[:, None, :] * r.Hp
    r.lhs2b = tmax + ph
    r.viol2b = (r.lhs2b > pbound[:, None, :]) & Ml
    r.f2b = r.viol2b.any(axis=(1, 2))

    # Per-slot wait increments: same explicit sequential fold over the
    # resource axis as the scalar kernels' np.add.reduce over rows.
    prods = np.where(Ml, cnt * sa.Rload[:, :, None], 0.0)
    wd = np.zeros((A, N))
    for ci in range(cmax):
        wd += prods[:, ci, :]
    r.wd = wd
    r.newlat = nominal + period * (wait + wd)
    r.violL = r.newlat > lbound
    r.fL = r.violL.any(axis=1)

    r.ok = ~(r.f1 | r.f2a | r.f2alat | r.f2b | r.fL)
    return r


def _decode_rejection(
    r: _StageResults,
    sa: _StepArrays,
    i: int,
    period_row: FloatArray,
    maxlat_row: FloatArray,
    n_machines: int,
) -> RejectionReason:
    """Scalar-identical ``last_rejection`` for stepping lane ``i``.

    The scalar kernels report the *first* violated check in stage order,
    scanning resources in fused order and slots ascending; the argmaxes
    below reproduce exactly that scan.
    """
    sid = int(sa.sid[i])
    if r.f1[i]:
        ci = int(r.viol1[i].argmax())
        rho = int(sa.Ridx[i, ci])
        kind = "machine-capacity" if rho < n_machines else "route-capacity"
        return RejectionReason(
            1, kind, _res_name(rho, n_machines), float(r.nu[i, ci]), 1.0
        )
    if r.f2a[i]:
        ci = int(r.viol2a[i].argmax())
        rho = int(sa.Ridx[i, ci])
        kind = "throughput-comp" if rho < n_machines else "throughput-tran"
        return RejectionReason(
            2, kind, f"string {sid} on {_res_name(rho, n_machines)}",
            float(r.lhs2a[i, ci]), float(sa.P[i]),
        )
    if r.f2alat[i]:
        return RejectionReason(
            2, "latency", f"string {sid}",
            float(r.latency[i]), float(sa.mlat[i]),
        )
    if r.f2b[i]:
        rows = r.viol2b[i].any(axis=1)
        ci = int(rows.argmax())
        z = int(r.viol2b[i, ci].argmax())
        rho = int(sa.Ridx[i, ci])
        kind = "throughput-comp" if rho < n_machines else "throughput-tran"
        return RejectionReason(
            2, kind, f"string {z} on {_res_name(rho, n_machines)}",
            float(r.lhs2b[i, ci, z]), float(period_row[z]),
        )
    z = int(r.violL[i].argmax())
    return RejectionReason(
        2, "latency", f"string {z}", float(r.newlat[i, z]),
        float(maxlat_row[z]),
    )


class BatchSoaState:
    """``B`` lane states stacked into one buffer, stepped together.

    Each lane is an independent allocation state with the exact SoA
    layout (plus the dummy resource row); :meth:`try_add_batch` performs
    one scalar-identical ``try_add`` per listed lane as a handful of
    whole-batch vectorized passes.
    """

    def __init__(
        self,
        model: SystemModel,
        n_lanes: int,
        tol: float = DEFAULT_TOL,
        profile_cache: ProfileCache | None = None,
    ) -> None:
        if n_lanes < 1:
            raise ValueError(f"n_lanes must be >= 1, got {n_lanes}")
        self.model = model
        self.tol = tol
        self.profile_cache = profile_cache
        M = model.n_machines
        N = len(model.strings)
        C = M + M * M
        self._M = M
        self._N = N
        self._C = C
        self.n_lanes = n_lanes
        C1 = C + 1  # + dummy row
        buf = np.zeros((n_lanes, _SCALAR_ROWS + 4 * C1, N))
        self._buf: FloatArray = buf
        self._period: FloatArray = buf[:, 0]
        self._nominal: FloatArray = buf[:, 1]
        self._maxlat: FloatArray = buf[:, 2]
        self._tight: FloatArray = buf[:, 3]
        self._wait: FloatArray = buf[:, 4]
        self._pbound: FloatArray = buf[:, 5]
        self._lbound: FloatArray = buf[:, 6]
        o = _SCALAR_ROWS
        self._load: FloatArray = buf[:, o : o + C1]
        self._tmax: FloatArray = buf[:, o + C1 : o + 2 * C1]
        self._cnt: FloatArray = buf[:, o + 2 * C1 : o + 3 * C1]
        self._H: FloatArray = buf[:, o + 3 * C1 : o + 4 * C1]
        self._util: FloatArray = np.zeros((n_lanes, C1))
        self._mapped = np.zeros((n_lanes, N), dtype=bool)
        self._ids = np.arange(N, dtype=np.int64)
        self._profiles: list[dict[int, StringProfile]] = [
            {} for _ in range(n_lanes)
        ]
        self._worth: list[float] = [0.0] * n_lanes
        self._views = [
            _LaneView(
                model,
                self._util[b, :M],
                self._util[b, M:C].reshape(M, M),
            )
            for b in range(n_lanes)
        ]

    # -- lane management ---------------------------------------------------

    def lane_view(self, b: int) -> AllocationState:
        """The lane's utilization view, duck-typed for the IMR."""
        return cast(AllocationState, self._views[b])

    def reset_lane(self, b: int) -> None:
        """Return lane ``b`` to the empty state (all-zero, as a fresh
        scalar state starts)."""
        self._buf[b] = 0.0
        self._util[b] = 0.0
        self._mapped[b] = False
        self._profiles[b] = {}
        self._worth[b] = 0.0

    def load_snapshot(self, b: int, snap: SoaStateSnapshot) -> None:
        """Seed lane ``b`` from a scalar SoA snapshot."""
        C, C1, o = self._C, self._C + 1, _SCALAR_ROWS
        lane = self._buf[b]
        lane[:o] = snap.buf[:o]
        for blk in range(4):
            dst = lane[o + blk * C1 : o + blk * C1 + C]
            dst[:] = snap.buf[o + blk * C : o + (blk + 1) * C]
            lane[o + blk * C1 + C] = 0.0
        # Re-derive the pre-multiplied bound rows under this state's
        # tolerance, exactly as the scalar restore does.
        bound = 1.0 + self.tol
        np.multiply(lane[0], bound, out=lane[5])
        np.multiply(lane[2], bound, out=lane[6])
        self._util[b, :C] = snap.util
        self._util[b, C] = 0.0
        self._mapped[b] = snap.mapped
        self._profiles[b] = dict(snap.profiles)
        self._worth[b] = snap.worth

    def lane_snapshot(self, b: int) -> SoaStateSnapshot:
        """Detach lane ``b`` as a scalar-compatible SoA snapshot."""
        C, C1, o = self._C, self._C + 1, _SCALAR_ROWS
        buf = np.empty((o + 4 * C, self._N))
        lane = self._buf[b]
        buf[:o] = lane[:o]
        for blk in range(4):
            buf[o + blk * C : o + (blk + 1) * C] = (
                lane[o + blk * C1 : o + blk * C1 + C]
            )
        return SoaStateSnapshot(
            buf=buf,
            util=self._util[b, : self._C].copy(),
            mapped=self._mapped[b].copy(),
            profiles=dict(self._profiles[b]),
            worth=self._worth[b],
        )

    def lane_fitness(self, b: int) -> Fitness:
        """Scalar-identical (worth, slackness) of lane ``b``."""
        M, C = self._M, self._C
        machine = self._util[b, :M]
        route = self._util[b, M:C].reshape(M, M)
        slack = 1.0 - float(machine.max(initial=0.0))
        off = route[~np.eye(M, dtype=bool)]
        if off.size:
            slack = min(slack, 1.0 - float(off.max()))
        return Fitness(worth=self._worth[b], slackness=slack)

    def lane_worth(self, b: int) -> float:
        return self._worth[b]

    def lane_mapped_count(self, b: int) -> int:
        return len(self._profiles[b])

    def get_profile(
        self, string_id: int, machines: IntVectorLike
    ) -> StringProfile:
        if self.profile_cache is not None:
            return self.profile_cache.get_or_compute(
                self.model, string_id, machines
            )
        return compute_profile(self.model, string_id, machines)

    # -- the batched step --------------------------------------------------

    def try_add_batch(
        self,
        lanes: Sequence[int],
        sids: Sequence[int],
        profs: Sequence[StringProfile],
    ) -> list[tuple[bool, RejectionReason | None]]:
        """One ``try_add`` per listed lane, executed as batch passes.

        Returns ``(accepted, rejection)`` per lane in input order;
        accepted lanes are committed, rejected lanes are untouched
        (exactly the scalar contract).  Lanes must be distinct.
        """
        sa = _StepArrays(lanes, sids, profs, dummy_row=self._C)
        L = sa.lanes
        Lc = L[:, None]
        r = _staged_checks(
            sa,
            util=self._util[Lc, sa.Ridx],
            tight=self._tight[L],
            cnt=self._cnt[Lc, sa.Ridx],
            load=self._load[Lc, sa.Ridx],
            tmax=self._tmax[Lc, sa.Ridx],
            H=self._H[Lc, sa.Ridx],
            period=self._period[L],
            wait=self._wait[L],
            nominal=self._nominal[L],
            pbound=self._pbound[L],
            lbound=self._lbound[L],
            ids=self._ids,
            tol=self.tol,
        )

        # ---- commit the accepted lanes ----------------------------------
        ki = np.flatnonzero(r.ok)
        if ki.size:
            bound = 1.0 + self.tol
            Lo = L[ki]
            Lo1 = Lo[:, None]
            Ro = sa.Ridx[ki]
            sido = sa.sid[ki]
            # Fancy scatters: within a lane real resource indices are
            # distinct; every padded duplicate lands on the dummy row
            # with a zero (or unread) value.
            self._util[Lo1, Ro] += sa.Rload[ki]
            wb = np.where(r.Ml[ki], r.Hp[ki], r.Hg[ki])
            self._H[Lo1, Ro] = wb
            self._wait[Lo] += r.wd[ki]
            self._period[Lo, sido] = sa.P[ki]
            self._nominal[Lo, sido] = sa.nomp[ki]
            self._maxlat[Lo, sido] = sa.mlat[ki]
            self._tight[Lo, sido] = sa.t[ki]
            self._wait[Lo, sido] = r.ws[ki]
            self._pbound[Lo, sido] = sa.P[ki] * bound
            self._lbound[Lo, sido] = sa.mlat[ki] * bound
            sidc = sido[:, None]
            self._load[Lo1, Ro, sidc] = sa.Rload[ki]
            self._tmax[Lo1, Ro, sidc] = sa.Rtmax[ki]
            self._cnt[Lo1, Ro, sidc] = sa.Rcnt[ki]
            self._H[Lo1, Ro, sidc] = r.Hnew[ki]
            self._mapped[Lo, sido] = True
            for i in ki.tolist():
                b = int(L[i])
                s = int(sa.sid[i])
                self._worth[b] += self.model.strings[s].worth
                self._profiles[b][s] = profs[i]

        results: list[tuple[bool, RejectionReason | None]] = []
        for i in range(len(lanes)):
            if r.ok[i]:
                results.append((True, None))
            else:
                b = int(L[i])
                results.append((
                    False,
                    _decode_rejection(
                        r, sa, i, self._period[b], self._maxlat[b], self._M
                    ),
                ))
        return results


def probe_try_add(
    state: SoaAllocationState,
    candidates: Sequence[tuple[int, IntVectorLike]],
    profile_cache: ProfileCache | None = None,
) -> list[tuple[bool, RejectionReason | None]]:
    """Score many candidate ``try_add`` calls against one scalar state.

    Commit-free neighborhood scoring: every candidate is checked against
    the *same* base state (broadcast, not copied per lane), returning
    the exact ``(accepted, last_rejection)`` the scalar ``try_add``
    would produce — without mutating ``state``.  Callers commit the
    winning candidate through the scalar path.  Bit-identical because a
    failed scalar ``try_add`` leaves the state untouched, so successive
    scalar probes from an unchanged state see exactly this base.
    """
    if not candidates:
        return []
    model = state.model
    profs = []
    sids = []
    for sid, machines in candidates:
        sids.append(sid)
        if profile_cache is not None:
            profs.append(
                profile_cache.get_or_compute(model, sid, machines)
            )
        else:
            profs.append(state._get_profile(sid, machines))
    C = model.n_machines + model.n_machines**2
    sa = _StepArrays(
        lanes=[0] * len(sids), sids=sids, profs=profs, dummy_row=C
    )
    A = len(sids)
    N = len(model.strings)
    # Broadcast the single state across the lane axis; padded entries
    # are masked via sa.valid (there is no dummy row in a scalar state,
    # so the pad index C is clamped to a real row and masked instead).
    Ridx_safe = np.where(sa.valid, sa.Ridx, 0)
    sa.Ridx = Ridx_safe
    r = _staged_checks(
        sa,
        util=state._util[Ridx_safe],
        tight=np.broadcast_to(state._tight, (A, N)),
        cnt=state._cntT[Ridx_safe],
        load=state._loadT[Ridx_safe],
        tmax=state._tmaxT[Ridx_safe],
        H=state._HT[Ridx_safe],
        period=np.broadcast_to(state._period, (A, N)),
        wait=np.broadcast_to(state._wait, (A, N)),
        nominal=np.broadcast_to(state._nominal, (A, N)),
        pbound=np.broadcast_to(state._pbound, (A, N)),
        lbound=np.broadcast_to(state._lbound, (A, N)),
        ids=state._ids,
        tol=state.tol,
    )
    out: list[tuple[bool, RejectionReason | None]] = []
    for i in range(A):
        if r.ok[i]:
            out.append((True, None))
        else:
            out.append((
                False,
                _decode_rejection(
                    r, sa, i, state._period, state._maxlat, model.n_machines
                ),
            ))
    return out


class BatchOutcome:
    """Result of projecting one ordering through the batched kernel.

    Mirrors :class:`~repro.heuristics.ordering.SequenceOutcome` minus
    the live state: the fitness, the successfully mapped prefix, the
    first failing string (``None`` for a complete allocation), and the
    scalar-identical rejection record of that failure.
    """

    __slots__ = ("fitness", "mapped_ids", "failed_id", "rejection")

    def __init__(
        self,
        fitness: Fitness,
        mapped_ids: tuple[int, ...],
        failed_id: int | None,
        rejection: RejectionReason | None,
    ) -> None:
        self.fitness = fitness
        self.mapped_ids = mapped_ids
        self.failed_id = failed_id
        self.rejection = rejection

    @property
    def complete(self) -> bool:
        return self.failed_id is None


def _project_chunk(
    model: SystemModel,
    orderings: Sequence[Sequence[int]],
    cache: "ProjectionCache | None",
    profile_cache: ProfileCache | None,
    tol: float,
) -> list[BatchOutcome]:
    """Project up to ``max_lanes`` orderings in lockstep."""
    from ..heuristics.imr import imr_map_string

    B = len(orderings)
    bs = BatchSoaState(model, B, tol=tol, profile_cache=profile_cache)
    orders = [list(o) for o in orderings]
    pos = [0] * B
    mapped: list[list[int]] = [[] for _ in range(B)]
    failed: list[int | None] = [None] * B
    rejections: list[RejectionReason | None] = [None] * B
    active = [len(o) > 0 for o in orders]
    nodes: list[_TrieNode] = []
    if cache is not None:
        for b, order in enumerate(orders):
            hit = cache.lookup(order)
            nodes.append(hit.snapshot_node)
            if hit.snapshot is not None:
                # Batch lanes interoperate only with SoA-family
                # snapshots; callers keep record-backend caches away.
                bs.load_snapshot(
                    b, cast(SoaStateSnapshot, hit.snapshot)
                )
                pos[b] = hit.snapshot_depth
                mapped[b] = list(order[: hit.snapshot_depth])
            if pos[b] >= len(order):
                active[b] = False

    while True:
        stepping = [b for b in range(B) if active[b]]
        if not stepping:
            break
        sids = []
        profs = []
        for b in stepping:
            k = orders[b][pos[b]]
            assignment = imr_map_string(bs.lane_view(b), k)
            sids.append(k)
            profs.append(bs.get_profile(k, assignment))
        results = bs.try_add_batch(stepping, sids, profs)
        for b, k, (ok, rejection) in zip(stepping, sids, results):
            if ok:
                mapped[b].append(k)
                pos[b] += 1
                if cache is not None:
                    node = cache.extend(nodes[b], k)
                    nodes[b] = node
                    if (
                        node.snapshot is None
                        and pos[b] % cache.snapshot_stride == 0
                    ):
                        cache.store_snapshot(node, bs.lane_snapshot(b))
                if pos[b] >= len(orders[b]):
                    active[b] = False
                    if (
                        cache is not None
                        and nodes[b] is not cache.root
                        and nodes[b].snapshot is None
                    ):
                        # Terminal snapshot: the engine re-projects the
                        # elite, which then becomes a pure restore.
                        cache.store_snapshot(nodes[b], bs.lane_snapshot(b))
            else:
                failed[b] = k
                rejections[b] = rejection
                active[b] = False
                if cache is not None:
                    cache.mark_failure(nodes[b], k)
    if cache is not None:
        cache.maybe_evict()
    return [
        BatchOutcome(
            fitness=bs.lane_fitness(b),
            mapped_ids=tuple(mapped[b]),
            failed_id=failed[b],
            rejection=rejections[b],
        )
        for b in range(B)
    ]


def project_batch(
    model: SystemModel,
    orderings: Sequence[Sequence[int]],
    *,
    cache: "ProjectionCache | None" = None,
    profile_cache: ProfileCache | None = None,
    tol: float = DEFAULT_TOL,
    max_lanes: int = DEFAULT_MAX_LANES,
) -> list[BatchOutcome]:
    """Project many orderings through the batched kernel.

    Orderings are evaluated in chunks of ``max_lanes`` lanes; each lane
    runs the allocate-until-first-failure projection (IMR per string,
    then the batched two-stage feasibility analysis), bit-identical to
    :func:`repro.heuristics.ordering.allocate_sequence` per ordering.

    ``cache`` must only be passed when the run's scalar projections use
    an SoA-family backend — lane snapshots do not interoperate with a
    record-backend cache (see the module docstring).
    """
    if max_lanes < 1:
        raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
    outcomes: list[BatchOutcome] = []
    for start in range(0, len(orderings), max_lanes):
        outcomes.extend(
            _project_chunk(
                model,
                orderings[start : start + max_lanes],
                cache,
                profile_cache,
                tol,
            )
        )
    return outcomes


def evaluate_batch(
    model: SystemModel,
    orderings: Sequence[Sequence[int]],
    *,
    cache: "ProjectionCache | None" = None,
    profile_cache: ProfileCache | None = None,
    tol: float = DEFAULT_TOL,
    max_lanes: int = DEFAULT_MAX_LANES,
) -> list[Fitness]:
    """Fitness of each ordering, via the batched projection kernel.

    Bit-identical to mapping the scalar projection over ``orderings``;
    see :func:`project_batch` for the cache interop caveat.
    """
    return [
        o.fitness
        for o in project_batch(
            model,
            orderings,
            cache=cache,
            profile_cache=profile_cache,
            tol=tol,
            max_lanes=max_lanes,
        )
    ]


class BatchEvaluator:
    """Callable bulk evaluator over the batched kernel.

    Matches the :class:`~repro.genitor.GenitorEngine`
    ``initial_evaluator`` hook: called with a sequence of chromosomes,
    returns their fitness values in order — bit-identical to the
    engine's scalar ``fitness_fn``.
    """

    def __init__(
        self,
        model: SystemModel,
        *,
        cache: "ProjectionCache | None" = None,
        profile_cache: ProfileCache | None = None,
        tol: float = DEFAULT_TOL,
        max_lanes: int = DEFAULT_MAX_LANES,
    ) -> None:
        self.model = model
        self.cache = cache
        self.profile_cache = profile_cache
        self.tol = tol
        self.max_lanes = max_lanes

    def __call__(
        self, chromosomes: Sequence[Sequence[int]]
    ) -> list[Fitness]:
        return evaluate_batch(
            self.model,
            chromosomes,
            cache=self.cache,
            profile_cache=self.profile_cache,
            tol=self.tol,
            max_lanes=self.max_lanes,
        )
