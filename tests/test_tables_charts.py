"""Unit tests for report rendering (repro.analysis.tables / charts)."""

import pytest

from repro.analysis import bar_chart, format_markdown_table, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [("alpha", 1.5), ("b", 20.0)]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "alpha" in lines[2]
        assert lines[1].startswith("-")

    def test_float_formatting(self):
        text = format_table(["x"], [(0.123456789,)])
        assert "0.1235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_first_column_left_aligned(self):
        text = format_table(
            ["name", "v"], [("x", 1), ("longname", 2)]
        )
        row = text.splitlines()[2]
        assert row.startswith("x ")


class TestMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["h1", "h2"], [("a", 1)])
        lines = text.splitlines()
        assert lines[0] == "| h1 | h2 |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| a | 1 |"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [("x", "y")])


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_rendered(self):
        text = bar_chart(["a"], [1.0], title="My chart")
        assert text.splitlines()[0] == "My chart"

    def test_errors_printed(self):
        text = bar_chart(["a"], [1.0], errors=[0.25])
        assert "± 0.25" in text

    def test_zero_values_ok(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in text

    def test_negative_clamped_to_empty_bar(self):
        text = bar_chart(["a", "b"], [-1.0, 2.0], width=8)
        assert text.splitlines()[0].count("█") == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], errors=[0.1, 0.2])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)
