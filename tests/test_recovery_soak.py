"""Kill-at-any-point recovery soak: real SIGKILLs, real recovery.

The in-process crash simulations live in ``test_durable_controller.py``;
here the child actually dies (``os.kill(getpid(), SIGKILL)`` fired from
a journal hook inside a subprocess) and the parent recovers from
whatever bytes made it to disk — the honest version of the property.
"""

from __future__ import annotations

import os
import signal
import subprocess
from pathlib import Path

import pytest

import repro
from repro.core.exceptions import ModelError
from repro.experiments.recovery import (
    KILL_PHASES,
    RecoveryConfig,
    run_recovery_soak,
)

SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)

#: smallest config that still exercises every kill phase: 5 kills
#: cycle through all of KILL_PHASES exactly once
CONFIG = RecoveryConfig(
    n_services=5, n_machines=4, n_events=5, seed=13, kills=5
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ModelError):
            RecoveryConfig(n_events=0)
        with pytest.raises(ModelError):
            RecoveryConfig(torn_rate=1.5)
        with pytest.raises(ModelError):
            RecoveryConfig(kills=-1)

    def test_fingerprint_tracks_the_config(self):
        assert CONFIG.fingerprint() != RecoveryConfig(
            n_services=5, n_machines=4, n_events=5, seed=14, kills=5
        ).fingerprint()

    def test_has_chaos(self):
        assert not CONFIG.has_chaos
        assert RecoveryConfig(torn_rate=0.1).has_chaos


@pytest.fixture(scope="module")
def soak_report(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("recover")
    return run_recovery_soak(CONFIG, workdir)


class TestKillRounds:
    def test_every_phase_fired_and_recovered(self, soak_report):
        assert [r.phase for r in soak_report.rounds] == list(KILL_PHASES)
        for r in soak_report.rounds:
            assert r.child_returncode == -signal.SIGKILL, r.phase
            assert r.ok, r

    def test_torn_commit_left_a_real_torn_tail(self, soak_report):
        assert soak_report.torn_tail_exercised

    def test_conservation_invariant(self, soak_report):
        for r in soak_report.rounds:
            assert r.applied == r.committed, r.phase
            assert r.conserved, r.phase

    def test_report_summary_and_ok(self, soak_report):
        assert soak_report.ok
        text = soak_report.summary()
        assert "bit-identical" in text
        for phase in KILL_PHASES:
            assert phase in text


class TestChaosRound:
    def test_chaos_faults_fire_and_are_absorbed(self, tmp_path):
        config = RecoveryConfig(
            n_services=5, n_machines=4, n_events=5, seed=13, kills=0,
            torn_rate=0.4, fsync_rate=0.3, enospc_rate=0.2,
            duplicate_rate=0.3,
        )
        report = run_recovery_soak(config, tmp_path)
        assert report.rounds == []
        assert report.chaos_expected, "seed/rates must inject something"
        assert report.chaos_fired
        assert report.chaos_identical
        assert report.chaos_conserved
        assert report.ok


class TestCli:
    def test_repro_recover_smoke(self, tmp_path):
        proc = subprocess.run(
            [
                "python", "-m", "repro", "recover",
                "--events", "3", "--kills", "2", "--seed", "13",
                "--services", "5", "--machines", "4",
                "--workdir", str(tmp_path), "--keep",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC_ROOT, "PATH": os.environ["PATH"]},
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "zero committed events lost" in proc.stdout
        # the journals are left behind for inspection with --keep
        assert (tmp_path / "reference" / "wal.log").exists()

    def test_child_mode_requires_arguments(self):
        proc = subprocess.run(
            ["python", "-m", "repro", "recover", "--child"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC_ROOT, "PATH": os.environ["PATH"]},
            timeout=60,
        )
        assert proc.returncode == 2
