"""Heuristic-runtime comparison (Section 8, prose).

The paper reports, for the full-scale scenario-1 workload:

* MWF and TF execute "in a few seconds";
* PSG / Seeded PSG take "approximately two hours per single run";
* the LP upper bound solves in "less than two seconds".

Absolute numbers are hardware- and implementation-bound; the
reproduction target is the *relative* picture — the evolutionary
heuristics are orders of magnitude slower than the single-shot ones,
and the LP is fast relative to the GA.  :func:`run_runtime_table`
measures all five on a common workload and reports seconds and ratios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis.tables import format_table
from ..heuristics import get_heuristic
from ..lp import upper_bound
from ..workload import SCENARIO_1, ScenarioParameters, generate_model
from .runner import SCALES, ExperimentScale

__all__ = ["RuntimeRow", "run_runtime_table"]


@dataclass
class RuntimeRow:
    """Measured runtime of one method."""

    name: str
    seconds: float
    vs_mwf: float  # runtime ratio relative to MWF


def run_runtime_table(
    scenario: ScenarioParameters = SCENARIO_1,
    scale: str | ExperimentScale = "smoke",
    seed: int = 2_000,
) -> dict:
    """Time every heuristic plus the LP bound on one workload.

    Returns ``{"rows": [RuntimeRow...], "table": str,
    "ordering_ok": bool}`` where ``ordering_ok`` checks the paper's
    qualitative claim: GA runtimes exceed single-shot runtimes, which
    are of the same order as the LP solve.
    """
    if isinstance(scale, str):
        scale = SCALES[scale]
    params = scale.apply(scenario)
    model = generate_model(params, seed=seed)
    ga_config = scale.genitor_config()

    rows: list[RuntimeRow] = []
    timings: dict[str, float] = {}
    for name in ("mwf", "tf"):
        res = get_heuristic(name)(model)
        timings[name] = res.runtime_seconds
    for name in ("psg", "seeded-psg"):
        res = get_heuristic(name)(model, config=ga_config, rng=seed)
        timings[name] = res.runtime_seconds
    t0 = time.perf_counter()
    upper_bound(model, objective="partial")
    timings["ub (LP)"] = time.perf_counter() - t0

    base = max(timings["mwf"], 1e-9)
    for name in ("psg", "mwf", "tf", "seeded-psg", "ub (LP)"):
        rows.append(RuntimeRow(name, timings[name], timings[name] / base))

    ordering_ok = (
        timings["psg"] > timings["mwf"]
        and timings["psg"] > timings["tf"]
        and timings["seeded-psg"] > timings["mwf"]
        and timings["seeded-psg"] > timings["tf"]
    )
    table = format_table(
        ["method", "seconds", "x MWF"],
        [(r.name, r.seconds, r.vs_mwf) for r in rows],
    )
    return {"rows": rows, "table": table, "ordering_ok": ordering_ok}
