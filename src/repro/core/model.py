"""System model for the Total Ship Computing Environment (TSCE).

This module implements Section 2 of the paper: a heterogeneous suite of
multitasking machines connected by virtual point-to-point communication
routes, and a workload of *strings* — ordered sequences of continuously
executing periodic applications connected by data transfers.

Conventions
-----------
* Machines are identified by integer index ``0 .. M-1`` (the paper uses
  1-based indices; everything in this library is 0-based).
* Applications within a string are indexed ``0 .. n_k - 1``.
* ``Network.bandwidth[j1, j2]`` is the total bandwidth ``w[j1, j2]`` of the
  virtual route from machine ``j1`` to machine ``j2`` in *bytes per
  second*.  Intra-machine routes (``j1 == j2``) have infinite bandwidth,
  represented as ``numpy.inf``.
* Each application ``i`` of string ``k`` carries a *nominal execution
  time* matrix entry ``t[i, j]`` (seconds, when executing alone on machine
  ``j``) and a *nominal CPU utilization* ``u[i, j]`` (fraction of machine
  ``j``'s CPU the application consumes while executing).  The product
  ``t[i, j] * u[i, j]`` is the fixed amount of CPU *work* the application
  requires on machine ``j``.
* ``output_size[i]`` is the number of bytes application ``i`` forwards to
  application ``i + 1``; a string of ``n`` applications has ``n - 1``
  inter-application transfers.

All model classes are immutable after construction (attributes are plain,
but the arrays are flagged non-writeable) so they can be shared freely
between heuristics, feasibility analyses, and worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .exceptions import ModelError
from .types import FloatArray, FloatArrayLike, IntVectorLike

__all__ = [
    "WORTH_FACTORS",
    "Machine",
    "Network",
    "AppString",
    "SystemModel",
]

#: The three worth factors the paper assigns to strings (Section 2).
WORTH_FACTORS: tuple[int, ...] = (1, 10, 100)


@dataclass(frozen=True)
class Machine:
    """A single computational resource.

    The paper models machine heterogeneity entirely through the
    per-application nominal execution times, so a machine itself carries
    only an identifier and an optional human-readable name.  The class
    exists so that higher layers (CLI, serialization, examples) can attach
    metadata without widening the numeric model.
    """

    index: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"machine index must be >= 0, got {self.index}")
        if not self.name:
            object.__setattr__(self, "name", f"machine-{self.index}")


class Network:
    """The virtual point-to-point communication fabric.

    Parameters
    ----------
    bandwidth:
        ``(M, M)`` array; ``bandwidth[j1, j2]`` is the total bandwidth of
        the route from machine ``j1`` to machine ``j2`` in bytes/second.
        The diagonal is forced to ``inf`` (intra-machine transfers are
        free, Section 6).  Off-diagonal entries must be strictly positive.

    Notes
    -----
    The paper assumes each ordered pair of distinct machines has its own
    independent virtual route (bandwidth reserved at initialization time),
    so the matrix need not be symmetric.
    """

    __slots__ = (
        "bandwidth",
        "n_machines",
        "_inv_bandwidth",
        "_avg_inv_bandwidth",
        "_inv_bw_rows",
    )

    def __init__(self, bandwidth: FloatArrayLike) -> None:
        bw = np.asarray(bandwidth, dtype=float).copy()
        if bw.ndim != 2 or bw.shape[0] != bw.shape[1]:
            raise ModelError(f"bandwidth must be a square matrix, got shape {bw.shape}")
        if bw.shape[0] == 0:
            raise ModelError("network must contain at least one machine")
        np.fill_diagonal(bw, np.inf)
        off_diag = bw[~np.eye(bw.shape[0], dtype=bool)]
        if off_diag.size and not np.all(off_diag > 0):
            raise ModelError("all inter-machine bandwidths must be strictly positive")
        if np.any(np.isnan(bw)):
            raise ModelError("bandwidth matrix contains NaN")
        bw.setflags(write=False)
        self.bandwidth = bw
        self.n_machines = bw.shape[0]
        inv = np.zeros_like(bw)
        finite = np.isfinite(bw)
        inv[finite] = 1.0 / bw[finite]
        inv.setflags(write=False)
        #: Element-wise ``1 / w[j1, j2]`` with 0 on infinite-bandwidth routes.
        self._inv_bandwidth = inv
        self._inv_bw_rows: list[list[float]] | None = None
        # Average inverse bandwidth (Section 5, TF heuristic):
        #   1/w_av = (1/M^2) * sum_{j1, j2} 1/w[j1, j2]
        # The diagonal contributes zero, matching the printed double sum
        # over all M^2 ordered pairs.
        self._avg_inv_bandwidth = float(inv.sum() / (self.n_machines**2))

    @classmethod
    def _attach(cls, bandwidth: FloatArray) -> "Network":
        """Trusted zero-copy constructor for broadcast attach paths.

        ``bandwidth`` must be the canonical matrix of an already
        validated :class:`Network` (diagonal ``inf``, read-only) — e.g.
        a shared-memory view shipped by
        :mod:`repro.parallel.broadcast`.  The array is adopted without
        copy or validation; derived quantities are recomputed with the
        identical operations ``__init__`` performs, so the attached
        network is bit-identical to the source.
        """
        net = object.__new__(cls)
        net.bandwidth = bandwidth
        net.n_machines = bandwidth.shape[0]
        inv = np.zeros_like(bandwidth)
        finite = np.isfinite(bandwidth)
        inv[finite] = 1.0 / bandwidth[finite]
        inv.setflags(write=False)
        net._inv_bandwidth = inv
        net._inv_bw_rows = None
        net._avg_inv_bandwidth = float(inv.sum() / (net.n_machines**2))
        return net

    @property
    def inv_bandwidth(self) -> FloatArray:
        """``1 / w`` matrix; zero where bandwidth is infinite."""
        return self._inv_bandwidth

    def inv_bandwidth_rows(self) -> list[list[float]]:
        """``inv_bandwidth`` as nested Python lists (cached).

        The IMR's scalar inner loop reads single route entries; plain
        list indexing avoids per-element NumPy scalar boxing.  The
        values are ``inv_bandwidth.tolist()`` — the identical doubles.
        """
        rows = self._inv_bw_rows
        if rows is None:
            rows = self._inv_bandwidth.tolist()
            self._inv_bw_rows = rows
        return rows

    @property
    def avg_inv_bandwidth(self) -> float:
        """The paper's ``1 / w_av`` (average of ``1/w`` over all M² pairs)."""
        return self._avg_inv_bandwidth

    def transfer_time(self, nbytes: float, j1: int, j2: int) -> float:
        """Nominal (unshared) time to move ``nbytes`` from ``j1`` to ``j2``."""
        return nbytes * self._inv_bandwidth[j1, j2]

    def routes(self, include_intra: bool = False) -> Iterator[tuple[int, int]]:
        """Iterate over ordered machine pairs.

        By default only *inter*-machine routes are yielded, because
        intra-machine routes have infinite bandwidth and never constrain
        anything (they are excluded from the slackness resource set Ω).
        """
        m = self.n_machines
        for j1 in range(m):
            for j2 in range(m):
                if include_intra or j1 != j2:
                    yield (j1, j2)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Network) and np.array_equal(
            self.bandwidth, other.bandwidth
        )

    def __hash__(self) -> int:  # pragma: no cover - convenience only
        return hash(self.bandwidth.tobytes())

    def __repr__(self) -> str:
        return f"Network(n_machines={self.n_machines})"


class AppString:
    """A string ``S^k``: an ordered sequence of periodic applications.

    Parameters
    ----------
    string_id:
        Stable integer identifier ``k`` (unique within a
        :class:`SystemModel`).
    worth:
        Worth factor ``I[k]``; the paper restricts it to ``{1, 10, 100}``
        but any positive value is accepted (validated against
        :data:`WORTH_FACTORS` only by the workload generator).
    period:
        ``P[k]`` in seconds; every application in the string must execute
        once per period.
    max_latency:
        ``Lmax[k]``: bound on the total time for one data set to traverse
        the string.
    comp_times:
        ``(n, M)`` array of nominal execution times ``t^k[i, j]``.
    cpu_utils:
        ``(n, M)`` array of nominal CPU utilizations ``u^k[i, j]`` in
        ``(0, 1]``.
    output_sizes:
        length ``n - 1`` array of inter-application output sizes
        ``O^k[i]`` in bytes.
    name:
        Optional human-readable name.
    """

    __slots__ = (
        "string_id",
        "worth",
        "period",
        "max_latency",
        "comp_times",
        "cpu_utils",
        "output_sizes",
        "name",
        "_avg_comp_times",
        "_avg_cpu_utils",
        "_work",
        "_intensity",
        "_imr_lists",
        "_profile_rows",
    )

    _intensity: FloatArray | None
    _imr_lists: tuple[list[list[float]], list[float], list[int]] | None
    _profile_rows: tuple[list[list[float]], list[float]] | None

    def __init__(
        self,
        string_id: int,
        worth: float,
        period: float,
        max_latency: float,
        comp_times: FloatArrayLike,
        cpu_utils: FloatArrayLike,
        output_sizes: FloatArrayLike,
        name: str = "",
    ) -> None:
        ct = np.asarray(comp_times, dtype=float).copy()
        cu = np.asarray(cpu_utils, dtype=float).copy()
        os_ = np.asarray(output_sizes, dtype=float).copy()
        if string_id < 0:
            raise ModelError(f"string_id must be >= 0, got {string_id}")
        if worth <= 0:
            raise ModelError(f"worth must be positive, got {worth}")
        if period <= 0:
            raise ModelError(f"period must be positive, got {period}")
        if max_latency <= 0:
            raise ModelError(f"max_latency must be positive, got {max_latency}")
        if ct.ndim != 2 or ct.shape[0] < 1:
            raise ModelError(
                f"comp_times must be a (n_apps, n_machines) matrix, got {ct.shape}"
            )
        if cu.shape != ct.shape:
            raise ModelError(
                f"cpu_utils shape {cu.shape} != comp_times shape {ct.shape}"
            )
        n_apps = ct.shape[0]
        if os_.shape != (n_apps - 1,):
            raise ModelError(
                f"output_sizes must have length n_apps-1={n_apps - 1}, "
                f"got shape {os_.shape}"
            )
        if not np.all(ct > 0):
            raise ModelError("all nominal execution times must be positive")
        if not (np.all(cu > 0) and np.all(cu <= 1.0)):
            raise ModelError("all nominal CPU utilizations must lie in (0, 1]")
        if n_apps > 1 and not np.all(os_ > 0):
            raise ModelError("all output sizes must be positive")
        for arr in (ct, cu, os_):
            arr.setflags(write=False)

        self.string_id = string_id
        self.worth = float(worth)
        self.period = float(period)
        self.max_latency = float(max_latency)
        self.comp_times = ct
        self.cpu_utils = cu
        self.output_sizes = os_
        self.name = name or f"string-{string_id}"
        self._avg_comp_times = None
        self._avg_cpu_utils = None
        work = ct * cu
        work.setflags(write=False)
        #: ``(n, M)`` fixed CPU work ``t[i, j] * u[i, j]`` per data set.
        self._work = work
        self._intensity = None
        self._imr_lists = None
        self._profile_rows = None

    @classmethod
    def _attach(
        cls,
        string_id: int,
        worth: float,
        period: float,
        max_latency: float,
        comp_times: FloatArray,
        cpu_utils: FloatArray,
        output_sizes: FloatArray,
        name: str = "",
    ) -> "AppString":
        """Trusted zero-copy constructor for broadcast attach paths.

        The arrays must come from an already validated
        :class:`AppString` (read-only, canonical float64) — e.g.
        shared-memory views shipped by :mod:`repro.parallel.broadcast`.
        They are adopted without copy or validation; the derived arrays
        are recomputed with the identical operations ``__init__``
        performs, so the attached string is bit-identical to the source.
        """
        s = object.__new__(cls)
        s.string_id = string_id
        s.worth = worth
        s.period = period
        s.max_latency = max_latency
        s.comp_times = comp_times
        s.cpu_utils = cpu_utils
        s.output_sizes = output_sizes
        s.name = name or f"string-{string_id}"
        s._avg_comp_times = None
        s._avg_cpu_utils = None
        work = comp_times * cpu_utils
        work.setflags(write=False)
        s._work = work
        s._intensity = None
        s._imr_lists = None
        s._profile_rows = None
        return s

    @property
    def n_apps(self) -> int:
        """Number of applications ``n_k`` in the string."""
        return self.comp_times.shape[0]

    @property
    def n_machines(self) -> int:
        return self.comp_times.shape[1]

    @property
    def avg_comp_times(self) -> FloatArray:
        """``t_av^k[i]`` (eq. 8): per-application mean over machines (lazy)."""
        cached = self._avg_comp_times
        if cached is None:
            cached = self.comp_times.mean(axis=1)
            cached.setflags(write=False)
            self._avg_comp_times = cached
        return cached

    @property
    def avg_cpu_utils(self) -> FloatArray:
        """``u_av^k[i]`` (eq. 9): per-application mean over machines (lazy)."""
        cached = self._avg_cpu_utils
        if cached is None:
            cached = self.cpu_utils.mean(axis=1)
            cached.setflags(write=False)
            self._avg_cpu_utils = cached
        return cached

    @property
    def work(self) -> FloatArray:
        """CPU work ``t^k[i, j] * u^k[i, j]`` per data set (``(n, M)``)."""
        return self._work

    def computational_intensity(self) -> FloatArray:
        """``t_av[i] * u_av[i] / P[k]`` for each application.

        This is the quantity the IMR uses (step 1 / step 4b) to pick the
        most computationally intensive application.
        """
        cached = self._intensity
        if cached is None:
            cached = self.avg_comp_times * self.avg_cpu_utils / self.period
            cached.setflags(write=False)
            self._intensity = cached
        return cached

    def imr_lists(self) -> tuple[list[list[float]], list[float], list[int]]:
        """Cached Python-list IMR constants for the scalar fast path.

        Returns ``(share_rows, transfer_demand, intensity_order)``:

        * ``share_rows[i][j]`` — utilization impact ``work[i, j] / P``
          (the ``app_share`` rows the IMR scores machines with);
        * ``transfer_demand[i]`` — route demand ``O[i] / P`` in
          bytes/second (empty for single-application strings);
        * ``intensity_order`` — application indices sorted by descending
          computational intensity, ties in ascending index order, so
          scanning it for the first unassigned application reproduces
          ``argmax`` over the unassigned set exactly.

        The doubles are ``tolist()`` conversions of the same expressions
        the vectorized IMR path computes, so both paths see identical
        values; plain list indexing just avoids per-element NumPy scalar
        boxing in the inner loop.
        """
        cached = self._imr_lists
        if cached is None:
            share_rows: list[list[float]] = (self._work / self.period).tolist()
            transfer_demand: list[float] = (
                (self.output_sizes / self.period).tolist() if self.n_apps > 1 else []
            )
            intensity = self.computational_intensity()
            order: list[int] = np.argsort(-intensity, kind="stable").tolist()
            cached = (share_rows, transfer_demand, order)
            self._imr_lists = cached
        return cached

    def profile_rows(self) -> tuple[list[list[float]], list[float]]:
        """Cached Python-list constants for the scalar profile fast path.

        Returns ``(comp_rows, output_list)`` — ``comp_times`` and
        ``output_sizes`` as plain lists (``tolist()``: the identical
        doubles), so :func:`~repro.core.profile.compute_profile` can
        bucket per-machine loads without per-element NumPy scalar
        boxing.
        """
        cached = self._profile_rows
        if cached is None:
            cached = (self.comp_times.tolist(), self.output_sizes.tolist())
            self._profile_rows = cached
        return cached

    def nominal_path_time(
        self, machines: IntVectorLike, network: Network
    ) -> float:
        """Unshared end-to-end time of the string under ``machines``.

        The numerator of relative tightness (eq. 4): the sum of nominal
        execution times on the assigned machines plus nominal transfer
        times on the assigned routes.
        """
        if len(machines) != self.n_apps:
            raise ModelError(
                f"assignment length {len(machines)} != n_apps {self.n_apps}"
            )
        m = np.asarray(machines, dtype=int)
        total = float(self.comp_times[np.arange(self.n_apps), m].sum())
        if self.n_apps > 1:
            inv = network.inv_bandwidth[m[:-1], m[1:]]
            total += float((self.output_sizes * inv).sum())
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AppString):
            return NotImplemented
        return (
            self.string_id == other.string_id
            and self.worth == other.worth
            and self.period == other.period
            and self.max_latency == other.max_latency
            and np.array_equal(self.comp_times, other.comp_times)
            and np.array_equal(self.cpu_utils, other.cpu_utils)
            and np.array_equal(self.output_sizes, other.output_sizes)
        )

    def __hash__(self) -> int:  # pragma: no cover - convenience only
        return hash((self.string_id, self.period, self.comp_times.tobytes()))

    def __repr__(self) -> str:
        return (
            f"AppString(id={self.string_id}, n_apps={self.n_apps}, "
            f"worth={self.worth:g}, period={self.period:.3f}, "
            f"max_latency={self.max_latency:.3f})"
        )


class SystemModel:
    """The complete allocation problem instance.

    Bundles the hardware platform (machines + network) with the workload
    (the set of strings considered for mapping).  String ids must equal
    their position in ``strings`` — the workload generator guarantees
    this, and it lets every downstream component use dense arrays indexed
    by string id.
    """

    __slots__ = ("machines", "network", "strings")

    def __init__(
        self,
        network: Network,
        strings: Sequence[AppString],
        machines: Sequence[Machine] | None = None,
    ) -> None:
        if machines is None:
            machines = [Machine(j) for j in range(network.n_machines)]
        machines = list(machines)
        if len(machines) != network.n_machines:
            raise ModelError(
                f"{len(machines)} machines but network has {network.n_machines}"
            )
        for j, mach in enumerate(machines):
            if mach.index != j:
                raise ModelError(
                    f"machine at position {j} has index {mach.index}"
                )
        strings = list(strings)
        for k, s in enumerate(strings):
            if s.string_id != k:
                raise ModelError(
                    f"string at position {k} has id {s.string_id}; ids must "
                    "be consecutive starting at 0"
                )
            if s.n_machines != network.n_machines:
                raise ModelError(
                    f"string {k} sized for {s.n_machines} machines, "
                    f"network has {network.n_machines}"
                )
        self.machines = machines
        self.network = network
        self.strings = strings

    @property
    def n_machines(self) -> int:
        return self.network.n_machines

    @property
    def n_strings(self) -> int:
        return len(self.strings)

    @property
    def total_worth_available(self) -> float:
        """Sum of worth over every string in the instance (the ideal)."""
        return float(sum(s.worth for s in self.strings))

    def subset(self, string_ids: Sequence[int]) -> "SystemModel":
        """A new model containing only ``string_ids`` (re-numbered).

        Useful for constructing reduced instances in tests and ablations.
        The strings are *re-identified* consecutively, so allocations do
        not transfer between the parent and subset models.
        """
        new_strings: list[AppString] = []
        for new_id, k in enumerate(string_ids):
            s = self.strings[k]
            new_strings.append(
                AppString(
                    string_id=new_id,
                    worth=s.worth,
                    period=s.period,
                    max_latency=s.max_latency,
                    comp_times=s.comp_times,
                    cpu_utils=s.cpu_utils,
                    output_sizes=s.output_sizes,
                    name=s.name,
                )
            )
        return SystemModel(self.network, new_strings, self.machines)

    def __repr__(self) -> str:
        return (
            f"SystemModel(n_machines={self.n_machines}, "
            f"n_strings={self.n_strings})"
        )
