"""Tests for the zero-copy model broadcast (repro.parallel.broadcast):
transport roundtrips must be bit-identical and sharing must never
change heuristic results."""

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.genitor import GenitorConfig, StoppingRules
from repro.heuristics.psg import (
    _evaluate_batch,
    _trial_worker,
    best_of_trials,
    seeded_psg,
)
import repro.parallel.broadcast as broadcast
from repro.parallel import (
    SharedModel,
    active_segment_names,
    get_worker_context,
    model_sharing_enabled,
)
from repro.parallel.broadcast import (
    SHARE_MODEL_ENV,
    _init_worker_shm,
    _pack_model,
    _unpack_model,
    _WORKER_SHM,
    _WORKER_STATE,
)
from repro.workload import SCENARIO_1, generate_model


@pytest.fixture
def model():
    params = SCENARIO_1.scaled(n_strings=10, n_machines=4)
    return generate_model(params, seed=9)


def _tiny_config():
    return GenitorConfig(
        population_size=16,
        rules=StoppingRules(max_iterations=30, max_stale_iterations=15),
    )


def _assert_models_identical(a, b):
    np.testing.assert_array_equal(a.network.bandwidth, b.network.bandwidth)
    np.testing.assert_array_equal(
        a.network.inv_bandwidth, b.network.inv_bandwidth
    )
    assert a.network.avg_inv_bandwidth == b.network.avg_inv_bandwidth
    assert len(a.strings) == len(b.strings)
    for s, t in zip(a.strings, b.strings):
        assert s.string_id == t.string_id
        assert s.worth == t.worth
        assert s.period == t.period
        assert s.max_latency == t.max_latency
        assert s.name == t.name
        np.testing.assert_array_equal(s.comp_times, t.comp_times)
        np.testing.assert_array_equal(s.cpu_utils, t.cpu_utils)
        np.testing.assert_array_equal(s.output_sizes, t.output_sizes)
        np.testing.assert_array_equal(s.avg_comp_times, t.avg_comp_times)
        np.testing.assert_array_equal(s.avg_cpu_utils, t.avg_cpu_utils)
        np.testing.assert_array_equal(s.work, t.work)
    assert [m.name for m in a.machines] == [m.name for m in b.machines]


class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(SHARE_MODEL_ENV, raising=False)
        assert model_sharing_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", " OFF "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(SHARE_MODEL_ENV, value)
        assert not model_sharing_enabled()

    def test_other_values_enable(self, monkeypatch):
        monkeypatch.setenv(SHARE_MODEL_ENV, "1")
        assert model_sharing_enabled()


class TestSharedModelLifecycle:
    def test_inherit_token_resolves_in_process(self, model):
        with SharedModel(model, transport="inherit") as shared:
            resolved, cache = get_worker_context(shared.token)
            assert resolved is model
            # the per-token cache is persistent across resolutions
            assert get_worker_context(shared.token)[1] is cache
        with pytest.raises(KeyError):
            get_worker_context(shared.token)

    def test_shm_pack_unpack_roundtrip(self, model):
        with SharedModel(model, transport="shm") as shared:
            rebuilt = _unpack_model(shared._shm, shared._meta)
            _assert_models_identical(model, rebuilt)
            # the rebuilt arrays are read-only views into shared memory
            with pytest.raises(ValueError):
                rebuilt.network.bandwidth[0, 0] = 1.0
            with pytest.raises(ValueError):
                rebuilt.strings[0].comp_times[0, 0] = 1.0

    def test_shm_block_unlinked_on_exit(self, model):
        from multiprocessing import shared_memory

        shared = SharedModel(model, transport="shm")
        with shared:
            name = shared._shm.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_not_reentrant(self, model):
        shared = SharedModel(model, transport="inherit")
        with shared:
            with pytest.raises(RuntimeError):
                shared.__enter__()

    def test_unknown_transport_rejected(self, model):
        with pytest.raises(ValueError):
            SharedModel(model, transport="mmap")

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError):
            get_worker_context("repro-nonexistent")

    def test_initializer_only_for_shm(self, model):
        inherit = SharedModel(model, transport="inherit")
        assert inherit.initializer is None
        assert inherit.initargs == ()
        with SharedModel(model, transport="shm") as shm:
            assert shm.initializer is _init_worker_shm
            assert shm.initargs[0] == shm.token


class TestLeakRegistry:
    """Regression: shm segments must never outlive their owner.

    The parent-side leak registry guarantees that a segment created by
    ``SharedModel(transport="shm")`` is unlinked even when the owning
    context manager never exits (worker crash, KeyboardInterrupt, a
    supervisor tearing down a broken pool mid-broadcast)."""

    def test_normal_exit_leaves_registry_empty(self, model):
        with SharedModel(model, transport="shm"):
            assert len(active_segment_names()) == 1
        assert active_segment_names() == ()

    def test_abandoned_segment_is_tracked_and_reclaimed(self, model):
        from multiprocessing import shared_memory

        shared = SharedModel(model, transport="shm")
        shared.__enter__()  # simulate a crash: __exit__ never runs
        name = shared._shm.name
        assert name in active_segment_names()

        broadcast._cleanup_parent_segments()  # the atexit crash path
        assert active_segment_names() == ()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        # late __exit__ after cleanup must not raise (already unlinked)
        shared.__exit__(None, None, None)

    def test_inherit_transport_registers_nothing(self, model):
        with SharedModel(model, transport="inherit"):
            assert active_segment_names() == ()


class TestWorkerAttach:
    def test_init_worker_shm_in_process(self, model):
        """The initializer path, exercised in-process: the attached model
        evaluates chromosomes identically to the original."""
        order = tuple(range(model.n_strings))
        ref = _evaluate_batch(model, [order])
        with SharedModel(model, transport="shm") as shared:
            _init_worker_shm(shared.token, shared._shm.name, shared._meta)
            try:
                attached, _ = get_worker_context(shared.token)
                _assert_models_identical(model, attached)
                assert _evaluate_batch(shared.token, [order]) == ref
            finally:
                _WORKER_STATE.pop(shared.token, None)
                shm = _WORKER_SHM.pop(shared.token, None)
                if shm is not None:
                    shm.close()

    def test_trial_worker_resolves_token(self, model):
        cfg = _tiny_config()
        ref = _trial_worker(seeded_psg, model, 3, {"config": cfg})
        with SharedModel(model, transport="inherit") as shared:
            via_token = _trial_worker(seeded_psg, shared.token, 3,
                                      {"config": cfg})
        assert via_token.fitness == ref.fitness
        assert via_token.order == ref.order


class TestBestOfTrialsSharing:
    def test_parallel_sharing_bit_identical(self, model):
        cfg = _tiny_config()
        serial = best_of_trials(
            seeded_psg, model, 2, rng=4, n_workers=1, config=cfg
        )
        shared = best_of_trials(
            seeded_psg, model, 2, rng=4, n_workers=2, share_model=True,
            config=cfg,
        )
        pickled = best_of_trials(
            seeded_psg, model, 2, rng=4, n_workers=2, share_model=False,
            config=cfg,
        )
        for run in (shared, pickled):
            assert run.fitness == serial.fitness
            assert run.order == serial.order
            assert (
                run.stats["trial_fitnesses"]
                == serial.stats["trial_fitnesses"]
            )
        assert serial.stats["model_transport"] == "none"
        assert pickled.stats["model_transport"] == "pickle"
        assert shared.stats["model_transport"] in ("inherit", "shm")

    def test_kill_switch_disables_default(self, model, monkeypatch):
        monkeypatch.setenv(SHARE_MODEL_ENV, "0")
        cfg = _tiny_config()
        run = best_of_trials(
            seeded_psg, model, 2, rng=4, n_workers=2, config=cfg
        )
        assert run.stats["model_transport"] == "pickle"


@pytest.mark.skipif(
    "spawn" not in mp.get_all_start_methods(),
    reason="spawn start method unavailable",
)
def test_spawn_pool_shm_roundtrip(model):
    """Full cross-process shm path: a spawned worker attaches the block
    and evaluates identically to the parent."""
    order = tuple(range(model.n_strings))
    ref = _evaluate_batch(model, [order])
    ctx = mp.get_context("spawn")
    with SharedModel(model, transport="shm") as shared:
        with ProcessPoolExecutor(
            max_workers=1,
            mp_context=ctx,
            initializer=shared.initializer,
            initargs=shared.initargs,
        ) as pool:
            got = pool.submit(_evaluate_batch, shared.token, [order]).result()
    assert got == ref
