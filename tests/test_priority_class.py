"""Unit tests for the class-based allocation scheme
(repro.heuristics.priority_class)."""

import numpy as np
import pytest

from repro.core import SystemModel, analyze, average_tightness
from repro.heuristics import class_based, class_order, most_worth_first

from conftest import build_string, uniform_network


class TestClassOrder:
    def test_classes_strictly_precede(self, scenario1_small):
        model = scenario1_small
        order = class_order(model)
        worths = [model.strings[k].worth for k in order]
        # worth levels must be non-increasing along the order
        assert all(a >= b for a, b in zip(worths, worths[1:]))

    def test_within_class_tightness_descending(self, scenario1_small):
        model = scenario1_small
        order = class_order(model, within="tightness")
        tight = {
            k: average_tightness(model.strings[k], model.network)
            for k in order
        }
        worths = [model.strings[k].worth for k in order]
        for (k1, w1), (k2, w2) in zip(
            zip(order, worths), zip(order[1:], worths[1:])
        ):
            if w1 == w2:
                assert tight[k1] >= tight[k2] - 1e-12

    def test_within_id(self):
        net = uniform_network(2)
        strings = [
            build_string(0, 1, 2, worth=10, latency=100.0),
            build_string(1, 1, 2, worth=100, latency=5.0),
            build_string(2, 1, 2, worth=10, latency=3.0),
        ]
        model = SystemModel(net, strings)
        assert class_order(model, within="id") == (1, 0, 2)
        # tightness puts 2 (tighter) before 0 within the worth-10 class
        assert class_order(model, within="tightness") == (1, 2, 0)

    def test_is_permutation(self, scenario1_small):
        order = class_order(scenario1_small)
        assert sorted(order) == list(range(scenario1_small.n_strings))

    def test_unknown_criterion(self, scenario1_small):
        with pytest.raises(ValueError):
            class_order(scenario1_small, within="random")


class TestClassBased:
    def test_result_feasible(self, scenario1_small):
        res = class_based(scenario1_small)
        assert analyze(res.allocation).feasible
        assert res.name == "class-tightness"

    def test_high_class_never_sacrificed(self):
        """Where additive MWF might trade a 100-worth string for many
        10s, the class scheme cannot: it attempts every 100 first."""
        net = uniform_network(2)
        strings = [
            build_string(0, 1, 2, period=10.0, t=8.0, u=1.0, worth=100,
                         latency=1e6),
            build_string(1, 1, 2, period=10.0, t=8.0, u=1.0, worth=100,
                         latency=1e6),
            build_string(2, 1, 2, period=10.0, t=8.0, u=1.0, worth=10,
                         latency=1e6),
        ]
        model = SystemModel(net, strings)
        res = class_based(model)
        assert set(res.mapped_ids) == {0, 1}

    def test_matches_mwf_when_classes_distinct(self, scenario1_small):
        """With within='id', the class ordering equals the MWF ordering
        (worth desc, id tiebreak), so results coincide."""
        res_class = class_based(scenario1_small, within="id")
        res_mwf = most_worth_first(scenario1_small)
        assert res_class.order == res_mwf.order
        assert res_class.fitness == res_mwf.fitness

    def test_stats(self, scenario3_small):
        res = class_based(scenario3_small)
        assert res.stats["within"] == "tightness"
        assert res.stats["complete"] in (True, False)
