"""Anytime solver cascade: psg → mwf+ls → mwf → tf under a deadline.

The mission controller must answer every request — a string arriving, a
machine failing, workload drifting — with a *feasible* allocation inside
a wall-clock budget.  No single heuristic fits that contract: the GA
finds the best mappings but needs seconds, the greedy single-shots
answer in milliseconds but leave worth on the table.

The cascade runs the tiers in **descending quality order**, each under a
share of the *remaining* budget, and keeps the lexicographically best
:class:`~repro.heuristics.base.HeuristicResult` seen so far:

* **interruptible tiers** (the GA heuristics) receive their budget as a
  ``max_wall_seconds`` stopping rule and return their elite when it
  expires — an anytime search;
* **single-shot tiers** run to completion; finishing beyond
  ``budget × overrun_factor`` is reported to the tier's circuit breaker
  as a timeout so chronically slow tiers get skipped next time;
* the final tier is **guaranteed**: it runs even with an exhausted
  budget, so the cascade never returns empty-handed (TF on a pruned
  model is microseconds);
* each tier sits behind a :class:`~repro.service.breaker.CircuitBreaker`
  and transient exceptions are retried with jittered backoff
  (:mod:`repro.service.retry`) while the deadline allows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.exceptions import ModelError
from ..core.model import SystemModel
from ..genitor import GenitorConfig, StoppingRules
from ..heuristics import HeuristicResult, get_heuristic, is_interruptible
from .breaker import BreakerConfig, CircuitBreaker
from .deadline import Deadline
from .retry import RetryError, RetryPolicy, retry_call

__all__ = [
    "AttemptRecord",
    "CascadeConfig",
    "CascadeResult",
    "DEFAULT_TIERS",
    "SolverCascade",
    "TierSpec",
]


@dataclass(frozen=True)
class TierSpec:
    """One cascade tier.

    ``share`` is the fraction of the *remaining* deadline offered to the
    tier; ``guaranteed`` marks the last-resort tier that runs even after
    the deadline has expired.
    """

    heuristic: str
    share: float = 0.5
    guaranteed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.share <= 1.0:
            raise ModelError(f"share must lie in (0, 1], got {self.share}")


#: Quality-ordered default tiers: the GA first (best mappings, anytime),
#: then local search, then the greedy single-shots, with TF guaranteed.
DEFAULT_TIERS: tuple[TierSpec, ...] = (
    TierSpec("psg", share=0.6),
    TierSpec("mwf+ls", share=0.5),
    TierSpec("mwf", share=0.5),
    TierSpec("tf", share=1.0, guaranteed=True),
)


@dataclass(frozen=True)
class CascadeConfig:
    """Cascade tuning knobs.

    The GA hyper-parameters are deliberately smaller than the paper's
    offline settings — the service solves many small pruned instances,
    not one 150-string planning problem.
    """

    tiers: tuple[TierSpec, ...] = DEFAULT_TIERS
    overrun_factor: float = 4.0
    min_tier_budget: float = 0.005
    ga_population: int = 50
    ga_max_iterations: int = 2_000
    ga_max_stale: int = 200
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay=0.01)
    )
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ModelError("cascade needs at least one tier")
        if not self.tiers[-1].guaranteed:
            raise ModelError("the final cascade tier must be guaranteed")
        if self.overrun_factor < 1.0:
            raise ModelError("overrun_factor must be >= 1")
        if self.min_tier_budget <= 0:
            raise ModelError("min_tier_budget must be positive")


@dataclass
class AttemptRecord:
    """What happened when the cascade considered one tier."""

    tier: str
    #: ``ok`` | ``timeout`` | ``error`` | ``skipped-breaker`` |
    #: ``skipped-budget`` | ``skipped-policy``
    status: str
    runtime_seconds: float = 0.0
    budget_seconds: float = 0.0
    worth: float | None = None
    detail: str = ""
    #: the tier's result, when it produced one (not serialized anywhere)
    result: HeuristicResult | None = field(default=None, repr=False)


@dataclass
class CascadeResult:
    """Outcome of one cascade invocation."""

    best: HeuristicResult | None
    attempts: list[AttemptRecord]
    #: True when the winning result was produced within the deadline.
    deadline_hit: bool
    elapsed_seconds: float

    @property
    def tier_used(self) -> str | None:
        return None if self.best is None else self.best.name

    def summary(self) -> str:
        used = self.tier_used or "none"
        return (
            f"cascade: tier={used} "
            f"deadline_hit={self.deadline_hit} "
            f"elapsed={self.elapsed_seconds:.3f}s "
            f"attempts={[a.status for a in self.attempts]}"
        )


class SolverCascade:
    """Deadline-aware heuristic cascade with per-tier circuit breakers.

    One instance is long-lived (breaker state spans requests); each call
    to :meth:`solve` serves one request under its own
    :class:`~repro.service.deadline.Deadline`.
    """

    def __init__(
        self,
        config: CascadeConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or CascadeConfig()
        self._clock = clock
        self._sleep = sleep
        self.breakers: dict[str, CircuitBreaker] = {
            tier.heuristic: CircuitBreaker(
                tier.heuristic, self.config.breaker, clock=clock
            )
            for tier in self.config.tiers
        }

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        model: SystemModel,
        deadline: Deadline,
        allowed_tiers: frozenset[str] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> CascadeResult:
        """Best feasible allocation of ``model`` within ``deadline``.

        Parameters
        ----------
        model:
            The (already pruned / drifted / fault-masked) instance.
        deadline:
            The request's wall-clock budget.
        allowed_tiers:
            Health-policy restriction: tiers outside the set are skipped
            (the guaranteed tier always runs).  ``None`` allows all.
        rng:
            Seed or generator for the stochastic tiers.
        """
        generator = np.random.default_rng(rng)
        attempts: list[AttemptRecord] = []
        best: HeuristicResult | None = None
        best_within_deadline = False
        start = self._clock()

        for tier in self.config.tiers:
            if (
                allowed_tiers is not None
                and tier.heuristic not in allowed_tiers
                and not tier.guaranteed
            ):
                attempts.append(
                    AttemptRecord(tier.heuristic, "skipped-policy")
                )
                continue

            breaker = self.breakers[tier.heuristic]
            if not tier.guaranteed and not breaker.allow():
                attempts.append(
                    AttemptRecord(
                        tier.heuristic,
                        "skipped-breaker",
                        detail=breaker.state.value,
                    )
                )
                continue

            budget = deadline.remaining() * tier.share
            if not tier.guaranteed and budget < self.config.min_tier_budget:
                attempts.append(
                    AttemptRecord(
                        tier.heuristic,
                        "skipped-budget",
                        budget_seconds=budget,
                    )
                )
                continue
            if tier.guaranteed:
                # the last resort always gets a nominal budget to run in
                budget = max(budget, self.config.min_tier_budget)

            record = self._attempt(tier, model, budget, deadline, generator)
            attempts.append(record)
            if record.status in ("ok", "timeout") and record.result is not None:
                result = record.result
                if best is None or result.fitness > best.fitness:
                    best = result
                    best_within_deadline = not deadline.expired

        return CascadeResult(
            best=best,
            attempts=attempts,
            deadline_hit=best is not None and best_within_deadline,
            elapsed_seconds=self._clock() - start,
        )

    # -- one tier --------------------------------------------------------------

    def _attempt(
        self,
        tier: TierSpec,
        model: SystemModel,
        budget: float,
        deadline: Deadline,
        rng: np.random.Generator,
    ) -> AttemptRecord:
        heuristic = get_heuristic(tier.heuristic)
        breaker = self.breakers[tier.heuristic]
        kwargs: dict[str, object] = {}
        if is_interruptible(tier.heuristic):
            kwargs["config"] = GenitorConfig(
                population_size=self.config.ga_population,
                rules=StoppingRules(
                    max_iterations=self.config.ga_max_iterations,
                    max_stale_iterations=self.config.ga_max_stale,
                    max_wall_seconds=budget,
                ),
            )

        trial_rng = np.random.default_rng(rng.integers(2**63))
        started = self._clock()
        record = AttemptRecord(
            tier.heuristic, status="error", budget_seconds=budget
        )
        try:
            result = retry_call(
                lambda: heuristic(model, rng=trial_rng, **kwargs),
                policy=self.config.retry,
                rng=np.random.default_rng(rng.integers(2**63)),
                sleep=self._sleep,
                give_up_after=lambda: deadline.expired,
            )
        except RetryError as exc:
            record.runtime_seconds = self._clock() - started
            record.detail = repr(exc.__cause__)
            breaker.record_failure()
            record.result = None
            return record

        record.runtime_seconds = self._clock() - started
        record.worth = result.fitness.worth
        record.result = result
        if record.runtime_seconds > budget * self.config.overrun_factor:
            # the result still counts, but the tier blew its budget —
            # breaker-visible so chronic offenders get skipped
            record.status = "timeout"
            breaker.record_failure()
        else:
            record.status = "ok"
            breaker.record_success()
        return record
