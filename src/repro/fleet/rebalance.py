"""Iterative cross-shard rebalancing of boundary strings.

After the independent shard solves, some strings are rejected by their
own shard while another shard still has slack.  Rebalancing migrates
them across shard boundaries:

* Each shard that may receive migrants builds **one** live context for
  the whole run: the shard's machine subset is materialized together
  with its current strings plus every migrant it may be offered, the
  existing allocation is re-anchored onto that extended model via
  :func:`~repro.robustness.surge.transfer_allocation` (structural +
  worth checks), and replayed through a fresh
  :class:`~repro.core.state.AllocationState`.
* **Rounds** run until a fixed cap (``max_rounds``) or convergence (a
  round that accepts no migration).  Each round processes the
  still-rejected migrants in descending-worth order (ties by id) and
  offers each to a bounded list of *candidate* shards — its affinity
  shards (home zone, peer zone) first, then the shards slackest at the
  start of the run — excluding the shard it currently belongs to
  (migration means crossing a boundary, so ``K=1`` is a structural
  no-op).
* A move commits only if the feasibility kernel (``try_add``) accepts
  the IMR's placement.  Placing a string adds its (positive) worth, so
  every accepted move strictly improves global worth; a rejected
  ``try_add`` leaves the shard state untouched.  Feasibility is
  monotone as a shard fills, so a failed ``(migrant, shard)`` pair is
  recorded and never retried.

Everything is deterministic: orderings are pure functions of worths,
ids, and start-of-run slackness; no randomness, no wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.allocation import Allocation
from ..core.exceptions import ModelError
from ..core.model import SystemModel
from ..core.state import AllocationState
from ..heuristics import imr_map_string
from ..robustness.surge import transfer_allocation
from ..workload.fleet import FleetWorkload, materialize_model
from .partition import FleetPartition
from .solver import ShardSolution

__all__ = ["RebalanceStats", "rebalance"]


@dataclass
class RebalanceStats:
    """Counters describing one rebalancing run."""

    rounds: int = 0
    attempted: int = 0
    migrated: int = 0
    worth_gained: float = 0.0
    #: Accepted migrations per round, in order.
    per_round: list[int] = field(default_factory=list)
    #: Rejected strings left out of the migrant pool by ``max_migrants``.
    pool_overflow: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "rounds": self.rounds,
            "attempted": self.attempted,
            "migrated": self.migrated,
            "worth_gained": self.worth_gained,
            "per_round": list(self.per_round),
            "pool_overflow": self.pool_overflow,
        }


class _ShardContext:
    """One shard's live state, built once and reused across rounds.

    ``ext_ids`` is the shard's current string set plus every migrant it
    may be offered this run; the shard's existing allocation is
    re-anchored onto the extended model (``transfer_allocation``) and
    replayed into a fresh kernel state, which then accepts or rejects
    migrants incrementally.
    """

    def __init__(
        self,
        workload: FleetWorkload,
        machine_ids: tuple[int, ...],
        current_ids: list[int],
        placements: dict[int, tuple[int, ...]],
        migrant_ids: list[int],
    ) -> None:
        self.machine_ids = machine_ids
        self.ext_ids = list(current_ids) + migrant_ids
        self.local_of = {gid: p for p, gid in enumerate(self.ext_ids)}
        machine_pos = {j: p for p, j in enumerate(machine_ids)}

        # One materialization: the base (pre-migration) model shares the
        # extended model's network and string objects — the current
        # strings are the prefix of ``ext_ids``, so their local ids
        # coincide in both models.
        self.model = materialize_model(workload, machine_ids, self.ext_ids)
        base_model = SystemModel(
            self.model.network, list(self.model.strings[: len(current_ids)])
        )
        base_local = {gid: p for p, gid in enumerate(current_ids)}
        base_alloc = Allocation(
            base_model,
            {
                base_local[gid]: np.array(
                    [machine_pos[j] for j in machines], dtype=np.int64
                )
                for gid, machines in placements.items()
            },
        )
        # Structural + worth validation of the re-anchoring: the
        # extended model must be a faithful superset of the shard.
        ext_alloc = transfer_allocation(
            base_alloc, self.model, check_worth=True
        )
        self.state = AllocationState(self.model)
        for k in sorted(ext_alloc):
            if not self.state.try_add(k, ext_alloc.machines_for(k)):
                raise ModelError(
                    f"rebalance replay diverged: string {self.ext_ids[k]} "
                    f"no longer feasible on its own shard"
                )

    def try_place(self, gid: int) -> tuple[int, ...] | None:
        """Attempt to place a migrant; commit only on kernel acceptance."""
        local = self.local_of[gid]
        machines = imr_map_string(self.state, local)
        if not self.state.try_add(local, machines):
            return None
        return tuple(int(self.machine_ids[p]) for p in machines)

    def solution(
        self, shard_index: int, solver: str, runtime_seconds: float
    ) -> ShardSolution:
        """Snapshot the context back into a global-id ShardSolution."""
        allocation = self.state.as_allocation()
        placements = {
            self.ext_ids[local]: tuple(
                int(self.machine_ids[p])
                for p in allocation.machines_for(local)
            )
            for local in allocation
        }
        fitness = self.state.fitness()
        return ShardSolution(
            shard_index=shard_index,
            placements=placements,
            rejected=(),
            worth=float(fitness.worth),
            slackness=float(fitness.slackness),
            runtime_seconds=runtime_seconds,
            solver=solver,
        )


def rebalance(
    workload: FleetWorkload,
    partition: FleetPartition,
    solutions: list[ShardSolution],
    *,
    max_rounds: int = 2,
    max_targets: int = 4,
    max_migrants: int = 256,
) -> tuple[list[ShardSolution], RebalanceStats]:
    """Migrate rejected boundary strings between shards.

    Returns updated per-shard solutions (same order as ``partition``)
    plus counters.  Deterministic for a given input; only
    worth-improving, kernel-validated moves are accepted, so the
    composed worth after rebalancing is monotonically non-decreasing.
    ``max_migrants`` caps the pool (highest worth first, ties by id) so
    rebalancing stays cheap even when most of a saturated fleet is
    rejected; the overflow count is reported in the stats.
    """
    stats = RebalanceStats()
    n_shards = partition.n_shards

    # Live ownership: shard -> ordered string ids; global placements.
    member_ids: list[list[int]] = [
        list(partition.shards[i].string_ids) for i in range(n_shards)
    ]
    owner = {
        gid: i for i in range(n_shards) for gid in member_ids[i]
    }
    placements: list[dict[int, tuple[int, ...]]] = [
        dict(solutions[i].placements) for i in range(n_shards)
    ]
    rejected = {
        gid for sol in solutions for gid in sol.rejected
    }
    if max_rounds < 1 or not rejected or n_shards < 2:
        return list(solutions), stats

    pool = sorted(rejected, key=lambda g: (-workload.strings[g].worth, g))
    stats.pool_overflow = max(0, len(pool) - max_migrants)
    pool = pool[:max_migrants]

    # Candidate shards per migrant: affinity first, then slackest at the
    # start of the run, never the current owner (a migration must cross
    # a boundary).
    by_slack = sorted(
        range(n_shards), key=lambda i: (-solutions[i].slackness, i)
    )
    candidates: dict[int, list[int]] = {}
    per_shard_migrants: list[list[int]] = [[] for _ in range(n_shards)]
    for gid in pool:
        s = workload.strings[gid]
        affinity = [partition.shard_of_zone[s.home_zone]]
        if partition.shard_of_zone[s.peer_zone] not in affinity:
            affinity.append(partition.shard_of_zone[s.peer_zone])
        ordered = affinity + [i for i in by_slack if i not in affinity]
        targets = [i for i in ordered if i != owner[gid]][:max_targets]
        candidates[gid] = targets
        for i in targets:
            per_shard_migrants[i].append(gid)

    # One context per receiving shard, reused across rounds.  Only the
    # *placed* members matter for the kernel state — a member the shard
    # itself rejected is never re-offered to its own shard, so leaving
    # it out keeps the extended model (and every per-slot kernel op)
    # small.
    contexts: dict[int, _ShardContext] = {}
    for i in range(n_shards):
        if per_shard_migrants[i]:
            contexts[i] = _ShardContext(
                workload,
                partition.shards[i].machine_ids,
                sorted(placements[i]),
                placements[i],
                per_shard_migrants[i],
            )

    # A shard only fills as the run proceeds, so a failed (migrant,
    # shard) pair can never succeed later — record and skip it.
    failed: set[tuple[int, int]] = set()

    for _ in range(max_rounds):
        accepted = 0
        for gid in pool:
            if gid not in rejected:
                continue
            for target in candidates[gid]:
                if (gid, target) in failed:
                    continue
                stats.attempted += 1
                machines = contexts[target].try_place(gid)
                if machines is None:
                    failed.add((gid, target))
                    continue
                source = owner[gid]
                member_ids[source].remove(gid)
                member_ids[target].append(gid)
                owner[gid] = target
                placements[target][gid] = machines
                rejected.discard(gid)
                stats.migrated += 1
                stats.worth_gained += workload.strings[gid].worth
                accepted += 1
                break
        stats.rounds += 1
        stats.per_round.append(accepted)
        if accepted == 0:
            break

    # Fold the receiving contexts back into solutions; shards that only
    # donated keep their kernel-measured worth/slackness but need their
    # membership and rejected lists refreshed.
    final: list[ShardSolution] = []
    for i in range(n_shards):
        if i in contexts:
            sol = contexts[i].solution(
                i, solutions[i].solver, solutions[i].runtime_seconds
            )
            placements[i] = dict(sol.placements)
        else:
            sol = solutions[i]
        final.append(
            ShardSolution(
                shard_index=i,
                placements=dict(placements[i]),
                rejected=tuple(
                    sorted(
                        g for g in member_ids[i] if g not in placements[i]
                    )
                ),
                worth=sol.worth,
                slackness=sol.slackness,
                runtime_seconds=sol.runtime_seconds,
                solver=sol.solver,
            )
        )
    return final, stats
