"""SupervisedPool: liveness, retry, deadlines, quarantine, envelopes."""

import os
import time

import pytest

from repro.core.exceptions import ModelError
from repro.parallel import (
    ChaosPolicy,
    RetryPolicy,
    SupervisedPool,
    SupervisorConfig,
    Task,
    TaskQuarantinedError,
)
from repro.parallel.supervisor import _ENVELOPE_TAG, _execute_supervised

#: Worker fns must be module-level so they pickle by reference.
PARENT_PID = os.getpid()


def _square(x):
    return x * x


def _boom(x):
    raise KeyError(x)


def _hang_in_worker(x):
    """Sleeps forever in a pool worker; instant when replayed in-parent."""
    if os.getpid() != PARENT_PID:
        time.sleep(60.0)
    return x + 100


def _find_seed(predicate, limit=10_000):
    """First chaos seed whose decision stream satisfies ``predicate``."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no chaos seed found in range")


# ---------------------------------------------------------------------------
# construction and validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_invalid_workers(self):
        with pytest.raises(ModelError):
            SupervisedPool(0)

    def test_invalid_timeout(self):
        with pytest.raises(ModelError):
            SupervisorConfig(task_timeout=0.0)

    def test_invalid_heartbeat(self):
        with pytest.raises(ModelError):
            SupervisorConfig(heartbeat_interval=-1.0)

    def test_closed_pool_rejects_run(self):
        pool = SupervisedPool(1)
        pool.close()
        with pytest.raises(ModelError):
            pool.run([Task(_square, (1,))])

    def test_chaos_policy_validation(self):
        with pytest.raises(ModelError):
            ChaosPolicy(kill_rate=1.5)
        with pytest.raises(ModelError):
            ChaosPolicy(delay_seconds=-0.1)
        with pytest.raises(ModelError):
            ChaosPolicy(seed=-1)


# ---------------------------------------------------------------------------
# happy path
# ---------------------------------------------------------------------------


class TestBasics:
    def test_results_in_task_order(self):
        with SupervisedPool(2) as pool:
            outcomes = pool.run([Task(_square, (i,)) for i in range(9)])
        assert [o.value for o in outcomes] == [i * i for i in range(9)]
        assert [o.index for o in outcomes] == list(range(9))
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert pool.stats.completed == 9
        assert pool.stats.lost_tasks == 0

    def test_empty_task_list(self):
        with SupervisedPool(1) as pool:
            assert pool.run([]) == []

    def test_kwargs_and_multiple_runs_accumulate_stats(self):
        with SupervisedPool(1) as pool:
            first = pool.run([Task(pow, (2, 5))])
            second = pool.run([Task(pow, (3, 2))])
        assert first[0].value == 32
        assert second[0].value == 9
        assert pool.stats.tasks == 2
        assert pool.stats.completed == 2

    def test_worker_pids_and_heartbeats_tracked(self):
        with SupervisedPool(2) as pool:
            pool.run([Task(_square, (i,)) for i in range(4)])
            pids = pool.worker_pids()
            assert pids
            beats = pool.heartbeats()
            assert set(pids) <= set(beats)

    def test_on_result_fires_once_per_task(self):
        seen = {}
        with SupervisedPool(2) as pool:
            pool.run(
                [Task(_square, (i,)) for i in range(5)],
                on_result=lambda i, o: seen.setdefault(i, o),
            )
        assert sorted(seen) == list(range(5))
        assert all(seen[i].value == i * i for i in range(5))


# ---------------------------------------------------------------------------
# deterministic task errors: finalized, never retried
# ---------------------------------------------------------------------------


class TestDeterministicErrors:
    def test_task_exception_recorded_not_retried(self):
        with SupervisedPool(2) as pool:
            outcomes = pool.run([Task(_boom, ("k",)), Task(_square, (3,))])
        assert isinstance(outcomes[0].error, KeyError)
        assert outcomes[0].attempts == 1
        assert not outcomes[0].ok
        assert outcomes[1].value == 9
        assert pool.stats.task_errors == 1
        assert pool.stats.retries == 0
        assert pool.stats.lost_tasks == 0


# ---------------------------------------------------------------------------
# chaos: kills, corruption, quarantine, replay
# ---------------------------------------------------------------------------


class TestChaosRecovery:
    def test_worker_kill_retried_to_success(self):
        # a seed that kills task 0's first attempt but spares the second
        seed = _find_seed(
            lambda s: ChaosPolicy(kill_rate=0.5, seed=s).decide(0, 1).kill
            and not ChaosPolicy(kill_rate=0.5, seed=s).decide(0, 2).kill
        )
        chaos = ChaosPolicy(kill_rate=0.5, seed=seed)
        with SupervisedPool(2, chaos=chaos) as pool:
            outcomes = pool.run([Task(_square, (7,))])
        assert outcomes[0].value == 49
        assert outcomes[0].attempts == 2
        assert pool.stats.retries == 1
        assert pool.stats.pool_restarts >= 1
        assert pool.stats.lost_tasks == 0

    def test_corrupted_return_detected_and_retried(self):
        seed = _find_seed(
            lambda s: ChaosPolicy(corrupt_rate=0.5, seed=s)
            .decide(0, 1)
            .corrupt
            and not ChaosPolicy(corrupt_rate=0.5, seed=s).decide(0, 2).corrupt
        )
        chaos = ChaosPolicy(corrupt_rate=0.5, seed=seed)
        with SupervisedPool(1, chaos=chaos) as pool:
            outcomes = pool.run([Task(_square, (6,))])
        assert outcomes[0].value == 36
        assert pool.stats.corrupted == 1
        assert pool.stats.retries == 1

    def test_poison_task_quarantined_and_replayed_in_process(self):
        # kill every attempt: the pool can never finish the task, so it
        # must be quarantined and replayed chaos-free in the parent.
        chaos = ChaosPolicy(kill_rate=1.0, seed=3)
        with SupervisedPool(2, chaos=chaos) as pool:
            outcomes = pool.run([Task(_square, (5,))])
        out = outcomes[0]
        assert out.value == 25  # bit-identical: pure fn of args
        assert out.ok and out.replayed and out.quarantined
        assert pool.stats.quarantined == 1
        assert pool.stats.replayed_in_process == 1
        assert pool.stats.lost_tasks == 0

    def test_quarantine_without_replay_surfaces_error(self):
        chaos = ChaosPolicy(kill_rate=1.0, seed=3)
        config = SupervisorConfig(replay_in_process=False)
        with SupervisedPool(1, chaos=chaos, config=config) as pool:
            outcomes = pool.run([Task(_square, (5,))])
        out = outcomes[0]
        assert isinstance(out.error, TaskQuarantinedError)
        assert out.quarantined and not out.replayed
        assert pool.stats.task_errors == 1

    def test_chaos_decisions_are_deterministic(self):
        policy = ChaosPolicy(
            kill_rate=0.3, delay_rate=0.3, corrupt_rate=0.3, seed=99
        )
        a = [policy.decide(t, a) for t in range(8) for a in range(1, 4)]
        b = [policy.decide(t, a) for t in range(8) for a in range(1, 4)]
        assert a == b

    def test_backoff_sleeps_between_retries(self):
        sleeps = []
        chaos = ChaosPolicy(kill_rate=1.0, seed=3)
        config = SupervisorConfig(
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.01, max_delay=0.05
            )
        )
        with SupervisedPool(
            1, chaos=chaos, config=config, sleep=sleeps.append
        ) as pool:
            pool.run([Task(_square, (2,))])
        # two transient failures scheduled before quarantine -> at least
        # one idle backoff pause went through the injected sleep
        assert sleeps
        assert all(s > 0 for s in sleeps)


# ---------------------------------------------------------------------------
# per-task deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_hung_task_killed_and_replayed(self):
        config = SupervisorConfig(
            task_timeout=0.4,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                              max_delay=0.02),
        )
        with SupervisedPool(1, config=config) as pool:
            t0 = time.monotonic()
            outcomes = pool.run([Task(_hang_in_worker, (1,))])
            elapsed = time.monotonic() - t0
        assert outcomes[0].value == 101  # in-process replay returned fast
        assert outcomes[0].replayed
        assert pool.stats.timeouts >= 1
        assert pool.stats.pool_restarts >= 1
        assert elapsed < 30.0  # never waited for the 60 s worker sleep


# ---------------------------------------------------------------------------
# envelope protocol
# ---------------------------------------------------------------------------


class TestEnvelope:
    def test_execute_supervised_wraps_value(self):
        payload = _execute_supervised(4, 2, _square, (3,), None, None)
        assert payload == (_ENVELOPE_TAG, 4, 2, 9)

    def test_valid_envelope_opens(self):
        value, why = SupervisedPool._open_envelope(
            (_ENVELOPE_TAG, 1, 1, "v"), 1, 1
        )
        assert value == "v" and why is None

    @pytest.mark.parametrize(
        "payload",
        [
            "garbage",
            (_ENVELOPE_TAG, 2, 1, "wrong-task"),
            (_ENVELOPE_TAG, 1, 2, "wrong-attempt"),
            ("other-tag", 1, 1, "wrong-tag"),
            (_ENVELOPE_TAG, 1, 1),
        ],
    )
    def test_invalid_envelopes_rejected(self, payload):
        value, why = SupervisedPool._open_envelope(payload, 1, 1)
        assert value is None and why is not None
