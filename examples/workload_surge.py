#!/usr/bin/env python
"""Workload-surge study: does maximizing slackness buy real robustness?

The paper's argument for the secondary metric (system slackness Λ) is
that an allocation with more headroom absorbs more unpredictable input
workload growth without re-mapping.  This example tests that argument
directly on the lightly loaded scenario 3:

1. sample several scenario-3 instances,
2. allocate each with MWF (worth-greedy, slackness-blind ordering) and
   with PSG (which optimizes slackness once everything fits),
3. binary-search the maximum uniform surge δ* each mapping absorbs
   (workload scaled by 1+δ, QoS bounds fixed),
4. report the slackness → δ* relationship and the closed-form stage-1
   limit Λ/(1−Λ) for comparison.

Run:  python examples/workload_surge.py
"""

import numpy as np

from repro.analysis import format_table, mean_ci
from repro.genitor import GenitorConfig, StoppingRules
from repro.heuristics import most_worth_first, psg
from repro.robustness import max_absorbable_surge
from repro.workload import SCENARIO_3, generate_model

N_INSTANCES = 6
GA = GenitorConfig(
    population_size=24,
    rules=StoppingRules(max_iterations=250, max_stale_iterations=100),
)


def main() -> None:
    params = SCENARIO_3.scaled(n_strings=10, n_machines=5)
    rows = []
    deltas = {"mwf": [], "psg": []}
    slacks = {"mwf": [], "psg": []}
    for seed in range(N_INSTANCES):
        model = generate_model(params, seed=seed)
        results = {
            "mwf": most_worth_first(model),
            "psg": psg(model, config=GA, rng=seed),
        }
        for name, res in results.items():
            if res.n_mapped < model.n_strings:
                # partial mapping — surge comparison needs complete ones
                continue
            profile = max_absorbable_surge(res.allocation)
            deltas[name].append(profile.max_delta)
            slacks[name].append(profile.slackness)
            rows.append((
                f"seed {seed}", name,
                f"{profile.slackness:.3f}",
                f"{profile.max_delta:.1%}",
                f"{profile.stage1_limit:.1%}",
                "QoS" if profile.qos_bound else "capacity",
            ))
    print(format_table(
        ["instance", "heuristic", "slackness Λ", "max surge δ*",
         "Λ/(1−Λ)", "binding"],
        rows,
    ))
    print()
    for name in ("mwf", "psg"):
        if deltas[name]:
            ci_d = mean_ci(deltas[name])
            ci_s = mean_ci(slacks[name])
            print(f"{name:>4}: mean slackness {ci_s}, mean absorbable "
                  f"surge {ci_d}")
    if deltas["mwf"] and deltas["psg"]:
        gain = np.mean(deltas["psg"]) - np.mean(deltas["mwf"])
        print(f"\nPSG's slackness optimization buys {gain:+.1%} extra "
              "absorbable workload growth on average — the paper's "
              "robustness argument, quantified.")


if __name__ == "__main__":
    main()
