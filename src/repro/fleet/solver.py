"""Parallel shard solving and global composition.

Each shard's standalone :class:`~repro.core.model.SystemModel` (per-shard
state cost ``O((M/K)²)``) is solved independently; solves fan out over
:class:`~repro.parallel.supervisor.SupervisedPool` with the shard models
broadcast zero-copy via
:class:`~repro.parallel.broadcast.SharedModelGroup` and one persistent
:class:`~repro.core.profile.ProfileCache` per worker.  Results are
collected *by shard index*, and every per-shard solve is a pure function
of ``(shard model, solver, seed, shard index)`` — never of worker
identity or scheduling — so the composed result is bit-reproducible
across runs and worker counts.  With ``n_workers=1`` (or a single
shard), solves run inline through the exact same task function.

After solving, :func:`repro.fleet.rebalance.rebalance` migrates boundary
strings between shards; :func:`compose` then assembles the global
:class:`FleetResult` and :func:`validate_result` enforces conservation:
every string placed-or-rejected exactly once, placements within shard
machine sets, and total worth equal to the sum of shard worths.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core.exceptions import ModelError
from ..core.feasibility import analyze
from ..core.model import SystemModel
from ..core.profile import ProfileCache
from ..heuristics import allocate_sequence, mwf_order, seeded_psg
from ..parallel import (
    ChaosPolicy,
    SharedModelGroup,
    SupervisedPool,
    SupervisorConfig,
    Task,
    get_worker_context,
    model_sharing_enabled,
)
from ..workload.fleet import FleetWorkload, materialize_model
from .partition import FleetPartition, Shard, partition_fleet

__all__ = [
    "FleetResult",
    "SHARD_SOLVERS",
    "ShardSolution",
    "compose",
    "solve_fleet",
    "solve_shard",
    "validate_result",
]

#: Supported per-shard solvers.  ``skip-ahead`` is the fleet default:
#: greedy MWF order with rejected-instead-of-stop semantics, fully
#: deterministic and wall-clock independent (unlike the cascade).
SHARD_SOLVERS = ("skip-ahead", "mwf", "psg")

#: Seed-stream domain separator for per-shard solver randomness.
_SOLVER_TAG = 0x50A6


@dataclass(frozen=True)
class ShardSolution:
    """Outcome of one shard solve, in *global* ids."""

    shard_index: int
    #: Global string id -> global machine id per application.
    placements: dict[int, tuple[int, ...]]
    #: Global ids of this shard's strings left unallocated.
    rejected: tuple[int, ...]
    worth: float
    slackness: float
    runtime_seconds: float
    solver: str


@dataclass(frozen=True)
class FleetResult:
    """Composed global outcome of a sharded fleet solve."""

    n_shards: int
    solver: str
    seed: int
    #: Global string id -> (shard index, global machine id per app).
    placements: dict[int, tuple[int, tuple[int, ...]]]
    #: Global ids of strings no shard could place, ascending.
    rejected: tuple[int, ...]
    total_worth: float
    min_slackness: float
    shard_solutions: tuple[ShardSolution, ...]
    runtime_seconds: float
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def n_placed(self) -> int:
        return len(self.placements)

    def signature(self) -> str:
        """Content hash of the composed allocation (bit-reproducibility).

        Covers every placement (string, shard, machines) and every
        rejection in canonical order — two runs compose identically iff
        their signatures match.
        """
        h = hashlib.sha256()
        for k in sorted(self.placements):
            shard, machines = self.placements[k]
            h.update(f"p:{k}:{shard}:{','.join(map(str, machines))};".encode())
        for k in self.rejected:
            h.update(f"r:{k};".encode())
        return h.hexdigest()


def _solve_shard_task(
    model_ref: str | SystemModel,
    shard_index: int,
    solver: str,
    seed: int,
) -> dict[str, Any]:
    """Solve one shard (worker-side; also the inline/replay path).

    ``model_ref`` is either a broadcast token (resolved through
    :func:`get_worker_context`, which also yields the persistent
    per-worker :class:`ProfileCache`) or a pickled shard model for the
    no-broadcast fallback.  Returns a plain picklable payload in
    shard-local ids; the parent converts to global ids.
    """
    start = time.perf_counter()
    cache: ProfileCache | None
    if isinstance(model_ref, str):
        model, cache = get_worker_context(model_ref)
    else:
        model, cache = model_ref, ProfileCache()

    if solver == "skip-ahead":
        outcome = allocate_sequence(
            model,
            mwf_order(model),
            stop_on_failure=False,
            profile_cache=cache,
        )
        state = outcome.state
        allocation = state.as_allocation()
        fitness = state.fitness()
    elif solver == "mwf":
        outcome = allocate_sequence(
            model, mwf_order(model), profile_cache=cache
        )
        state = outcome.state
        allocation = state.as_allocation()
        fitness = state.fitness()
    elif solver == "psg":
        rng = np.random.default_rng(
            np.random.SeedSequence((seed, _SOLVER_TAG, shard_index))
        )
        result = seeded_psg(model, rng=rng, profile_cache=cache)
        allocation = result.allocation
        fitness = result.fitness
    else:
        raise ModelError(
            f"unknown shard solver {solver!r}; choose from {SHARD_SOLVERS}"
        )

    mapped = {
        int(k): tuple(int(j) for j in allocation.machines_for(k))
        for k in allocation
    }
    rejected = tuple(
        k for k in range(model.n_strings) if k not in mapped
    )
    return {
        "shard": shard_index,
        "mapped": mapped,
        "rejected": rejected,
        "worth": float(fitness.worth),
        "slackness": float(fitness.slackness),
        "runtime": time.perf_counter() - start,
    }


def _to_global(
    payload: Mapping[str, Any], shard: Shard, solver: str
) -> ShardSolution:
    """Convert a worker payload's local ids to global ids."""
    placements = {
        shard.string_ids[local]: tuple(
            shard.machine_ids[p] for p in machines
        )
        for local, machines in payload["mapped"].items()
    }
    rejected = tuple(
        sorted(shard.string_ids[local] for local in payload["rejected"])
    )
    return ShardSolution(
        shard_index=shard.index,
        placements=placements,
        rejected=rejected,
        worth=float(payload["worth"]),
        slackness=float(payload["slackness"]),
        runtime_seconds=float(payload["runtime"]),
        solver=solver,
    )


def solve_shard(
    workload: FleetWorkload,
    shard: Shard,
    *,
    solver: str = "skip-ahead",
    seed: int | None = None,
    model: SystemModel | None = None,
) -> ShardSolution:
    """Solve a single shard inline (no pool) and return global-id results."""
    if model is None:
        model = materialize_model(workload, shard.machine_ids, shard.string_ids)
    payload = _solve_shard_task(
        model, shard.index, solver, workload.seed if seed is None else seed
    )
    return _to_global(payload, shard, solver)


def _solve_all_shards(
    models: list[SystemModel],
    partition: FleetPartition,
    solver: str,
    seed: int,
    n_workers: int,
    chaos: ChaosPolicy | None,
    transport: str,
    pool_stats: dict[str, Any],
) -> list[ShardSolution]:
    """Fan shard solves over the supervised pool (or run inline)."""
    shards = partition.shards
    if n_workers <= 1 or len(shards) == 1:
        return [
            _to_global(
                _solve_shard_task(models[s.index], s.index, solver, seed),
                s,
                solver,
            )
            for s in shards
        ]

    if model_sharing_enabled():
        with SharedModelGroup(models, transport=transport) as group:
            with SupervisedPool(
                max_workers=n_workers,
                initializer=group.initializer,
                initargs=group.initargs,
                config=SupervisorConfig(),
                chaos=chaos,
            ) as pool:
                tasks = [
                    Task(
                        _solve_shard_task,
                        (group.tokens[s.index], s.index, solver, seed),
                    )
                    for s in shards
                ]
                outcomes = pool.run(tasks)
                pool_stats.update(pool.stats.as_dict())
    else:
        with SupervisedPool(
            max_workers=n_workers, config=SupervisorConfig(), chaos=chaos
        ) as pool:
            tasks = [
                Task(_solve_shard_task, (models[s.index], s.index, solver, seed))
                for s in shards
            ]
            outcomes = pool.run(tasks)
            pool_stats.update(pool.stats.as_dict())

    solutions: list[ShardSolution] = []
    for shard, outcome in zip(shards, outcomes):
        if not outcome.ok:  # pragma: no cover - supervisor exhausts retries
            raise ModelError(
                f"shard {shard.index} solve failed: {outcome.error!r}"
            ) from outcome.error
        solutions.append(_to_global(outcome.value, shard, solver))
    return solutions


def compose(
    partition: FleetPartition,
    solutions: list[ShardSolution],
    *,
    solver: str,
    seed: int,
    runtime_seconds: float,
    stats: dict[str, Any] | None = None,
) -> FleetResult:
    """Assemble the global result from per-shard solutions."""
    placements: dict[int, tuple[int, tuple[int, ...]]] = {}
    rejected: list[int] = []
    for sol in solutions:
        for gid, machines in sol.placements.items():
            if gid in placements:
                raise ModelError(
                    f"string {gid} placed by two shards "
                    f"({placements[gid][0]} and {sol.shard_index})"
                )
            placements[gid] = (sol.shard_index, machines)
        rejected.extend(sol.rejected)
    return FleetResult(
        n_shards=partition.n_shards,
        solver=solver,
        seed=seed,
        placements=placements,
        rejected=tuple(sorted(rejected)),
        total_worth=float(sum(sol.worth for sol in solutions)),
        min_slackness=float(
            min((sol.slackness for sol in solutions), default=1.0)
        ),
        shard_solutions=tuple(
            sorted(solutions, key=lambda s: s.shard_index)
        ),
        runtime_seconds=runtime_seconds,
        stats=dict(stats or {}),
    )


def validate_result(
    workload: FleetWorkload,
    partition: FleetPartition,
    result: FleetResult,
    *,
    deep: bool = False,
) -> None:
    """Enforce the composition's conservation invariants.

    * every fleet string is placed or rejected **exactly once**;
    * every placement uses only machines of the shard that placed it,
      with one machine per application;
    * total worth equals the sum of shard worths, and both equal the
      worth of the placed strings.

    ``deep=True`` additionally re-materializes every shard's model and
    re-runs the full two-stage feasibility analysis on its allocation —
    ``O(K · (M/K)²)``, used by tests and the chaos soak.
    """
    placed = set(result.placements)
    rejected = set(result.rejected)
    if placed & rejected:
        raise ModelError(
            f"strings both placed and rejected: {sorted(placed & rejected)[:5]}"
        )
    if len(result.rejected) != len(rejected):
        raise ModelError("duplicate ids in the rejected list")
    everything = placed | rejected
    if everything != set(range(workload.n_strings)):
        missing = sorted(set(range(workload.n_strings)) - everything)[:5]
        extra = sorted(everything - set(range(workload.n_strings)))[:5]
        raise ModelError(
            f"composition does not cover the fleet exactly once "
            f"(missing={missing}, extra={extra})"
        )

    shard_machines = {
        s.index: frozenset(s.machine_ids) for s in partition.shards
    }
    worth_of_placed = 0.0
    for gid, (shard_index, machines) in result.placements.items():
        spec = workload.strings[gid]
        if len(machines) != spec.n_apps:
            raise ModelError(
                f"string {gid}: {len(machines)} machines for "
                f"{spec.n_apps} applications"
            )
        if not set(machines) <= shard_machines[shard_index]:
            raise ModelError(
                f"string {gid} placed on machines outside shard "
                f"{shard_index}"
            )
        worth_of_placed += spec.worth

    shard_worth_sum = sum(s.worth for s in result.shard_solutions)
    for total, label in (
        (shard_worth_sum, "sum of shard worths"),
        (worth_of_placed, "worth of placed strings"),
    ):
        if abs(total - result.total_worth) > 1e-9 * max(1.0, result.total_worth):
            raise ModelError(
                f"worth not conserved: total_worth={result.total_worth}, "
                f"{label}={total}"
            )

    if deep:
        for sol in result.shard_solutions:
            _deep_check_shard(workload, partition.shards[sol.shard_index], sol)


def _deep_check_shard(
    workload: FleetWorkload, shard: Shard, sol: ShardSolution
) -> None:
    """Re-materialize one shard and feasibility-check its allocation."""
    from ..core.allocation import Allocation

    gids = sorted(sol.placements)
    model = materialize_model(workload, shard.machine_ids, gids)
    machine_pos = {g: p for p, g in enumerate(shard.machine_ids)}
    mapping = {
        local: np.array(
            [machine_pos[j] for j in sol.placements[gid]], dtype=np.int64
        )
        for local, gid in enumerate(gids)
    }
    report = analyze(Allocation(model, mapping))
    if not report.feasible:
        raise ModelError(
            f"shard {sol.shard_index} allocation infeasible on "
            f"re-materialized model: {report.violations[:3]}"
        )


def solve_fleet(
    workload: FleetWorkload,
    n_shards: int,
    *,
    solver: str = "skip-ahead",
    seed: int | None = None,
    n_workers: int | None = None,
    rebalance_rounds: int = 2,
    rebalance_targets: int = 2,
    rebalance_migrants: int = 64,
    chaos: ChaosPolicy | None = None,
    transport: str = "auto",
    validate: bool = True,
) -> FleetResult:
    """Partition, solve, rebalance, and compose one fleet allocation.

    Parameters
    ----------
    workload:
        The compact fleet description (:func:`repro.workload.fleet.generate_fleet`).
    n_shards:
        Shard count K (``1 <= K <= n_zones``).  ``K=1`` is the
        monolithic baseline: one shard holding the whole fleet, solved
        inline.
    solver:
        Per-shard solver, one of :data:`SHARD_SOLVERS`.
    seed:
        Drives partition tie-breaks and per-shard solver randomness;
        defaults to the workload seed.
    n_workers:
        Pool width; defaults to ``min(n_shards, 4)``.  ``1`` solves all
        shards inline (identical results — collection is by shard
        index either way).
    rebalance_rounds:
        Max cross-shard migration rounds (0 disables rebalancing; the
        loop also stops early on a round with no accepted migration).
    rebalance_targets / rebalance_migrants:
        Per-migrant candidate-shard cap and migrant-pool cap forwarded
        to :func:`repro.fleet.rebalance.rebalance` — together they bound
        the rebalancing cost independently of how saturated the fleet
        is.
    chaos:
        Optional fault injector threaded into the shard pool (chaos
        soak); supervision retries/replays guarantee no shard result is
        lost or double-counted.
    transport:
        Broadcast transport for the shard models (see
        :class:`~repro.parallel.broadcast.SharedModel`).
    validate:
        Run :func:`validate_result` (shallow) before returning.
    """
    start = time.perf_counter()
    if seed is None:
        seed = workload.seed
    if solver not in SHARD_SOLVERS:
        raise ModelError(
            f"unknown shard solver {solver!r}; choose from {SHARD_SOLVERS}"
        )
    if n_workers is None:
        n_workers = min(n_shards, 4)

    partition = partition_fleet(workload, n_shards, seed=seed)
    models = [
        materialize_model(workload, s.machine_ids, s.string_ids)
        for s in partition.shards
    ]

    pool_stats: dict[str, Any] = {}
    solutions = _solve_all_shards(
        models, partition, solver, seed, n_workers, chaos, transport, pool_stats
    )

    stats: dict[str, Any] = {"pool": pool_stats} if pool_stats else {}
    if rebalance_rounds > 0:
        from .rebalance import rebalance

        solutions, reb_stats = rebalance(
            workload,
            partition,
            solutions,
            max_rounds=rebalance_rounds,
            max_targets=rebalance_targets,
            max_migrants=rebalance_migrants,
        )
        stats["rebalance"] = reb_stats.as_dict()

    result = compose(
        partition,
        solutions,
        solver=solver,
        seed=seed,
        runtime_seconds=time.perf_counter() - start,
        stats=stats,
    )
    if validate:
        validate_result(workload, partition, result)
    return result
