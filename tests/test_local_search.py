"""Unit tests for the reinsertion local search
(repro.heuristics.local_search)."""

import numpy as np
import pytest

from repro.core import Allocation, SystemModel, analyze
from repro.heuristics import (
    HeuristicResult,
    local_search,
    most_worth_first,
    mwf_with_local_search,
    tightest_first,
)
from repro.workload import SCENARIO_1, SCENARIO_3, generate_model

from conftest import build_string, uniform_network


class TestNeverDegrades:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fitness_monotone_scenario1(self, seed):
        model = generate_model(
            SCENARIO_1.scaled(n_strings=30, n_machines=4), seed=seed
        )
        initial = most_worth_first(model)
        improved = local_search(model, initial)
        assert improved.fitness >= initial.fitness
        assert analyze(improved.allocation).feasible

    @pytest.mark.parametrize("seed", [0, 1])
    def test_fitness_monotone_from_tf(self, seed):
        model = generate_model(
            SCENARIO_1.scaled(n_strings=25, n_machines=4), seed=seed
        )
        initial = tightest_first(model)
        improved = local_search(model, initial)
        assert improved.fitness >= initial.fitness
        assert improved.name == "tf+ls"


class TestRepair:
    def test_recovers_string_blocked_by_bad_placement(self):
        """A deliberately bad initial placement wastes capacity; the
        search reinserts and then repairs in the skipped string."""
        net = uniform_network(2)
        strings = [
            build_string(k, 1, 2, period=10.0, t=4.0, u=1.0, worth=10,
                         latency=1e6)
            for k in range(4)
        ]
        model = SystemModel(net, strings)
        # pack 0 and 1 on machine 0 (0.8), leaving machine 1 with 0.4
        # headroom after string 2; string 3 then fails on both machines.
        bad = Allocation(model, {0: [0], 1: [0], 2: [1]})
        initial = HeuristicResult(
            name="bad",
            allocation=bad,
            fitness=__import__("repro").core.evaluate(bad),
            order=(0, 1, 2, 3),
            mapped_ids=(0, 1, 2),
        )
        improved = local_search(model, initial)
        # all four strings fit when spread 2+2
        assert improved.fitness.worth == 40.0
        assert improved.n_mapped == 4

    def test_stats_recorded(self):
        model = generate_model(
            SCENARIO_1.scaled(n_strings=20, n_machines=4), seed=9
        )
        res = mwf_with_local_search(model)
        assert "moves" in res.stats and "rounds" in res.stats
        assert res.stats["rounds"] >= 1
        assert res.stats["initial_fitness"] is not None


class TestTermination:
    def test_max_rounds_respected(self):
        model = generate_model(
            SCENARIO_1.scaled(n_strings=25, n_machines=4), seed=2
        )
        res = mwf_with_local_search(model, max_rounds=1)
        assert res.stats["rounds"] == 1

    def test_stops_when_no_improvement(self, scenario3_small):
        res = mwf_with_local_search(scenario3_small, max_rounds=50)
        # must converge long before 50 rounds on a tiny model
        assert res.stats["rounds"] < 50

    def test_complete_allocation_slackness_improves_or_ties(
        self, scenario3_small
    ):
        initial = most_worth_first(scenario3_small)
        improved = local_search(scenario3_small, initial)
        assert improved.fitness.worth == initial.fitness.worth
        assert improved.fitness.slackness >= initial.fitness.slackness


class TestRegistry:
    def test_registered(self, scenario3_small):
        from repro.heuristics import get_heuristic

        res = get_heuristic("mwf+ls")(scenario3_small)
        assert res.name == "mwf+ls"
        assert analyze(res.allocation).feasible
