"""Unit tests for the Incremental Mapping Routine (repro.heuristics.imr)."""

import numpy as np
import pytest

from repro.core import AllocationState, AppString, SystemModel
from repro.heuristics import imr_map_string

from conftest import build_string, uniform_network


class TestSingleApp:
    def test_picks_least_utilized_machine(self):
        net = uniform_network(3)
        s = build_string(0, 1, 3, period=10.0, t=2.0, u=0.5)
        pre = build_string(1, 1, 3, period=10.0, t=5.0, u=1.0)
        model = SystemModel(net, [s, pre])
        state = AllocationState(model)
        state.try_add(1, [0])  # load machine 0
        assignment = imr_map_string(state, 0)
        assert assignment[0] in (1, 2)  # not the loaded machine

    def test_heterogeneous_times_guide_choice(self):
        net = uniform_network(2)
        comp = np.array([[8.0, 2.0]])  # machine 1 is 4x faster
        s = AppString(0, 1, 10.0, 100.0, comp, np.full((1, 2), 1.0),
                      np.empty(0))
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assert imr_map_string(state, 0)[0] == 1

    def test_tie_break_lowest_index(self):
        net = uniform_network(4)
        s = build_string(0, 1, 4)
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assert imr_map_string(state, 0)[0] == 0

    def test_random_tie_break_seeded(self):
        net = uniform_network(4)
        s = build_string(0, 1, 4)
        model = SystemModel(net, [s])
        state = AllocationState(model)
        picks = {
            int(imr_map_string(state, 0, rng=np.random.default_rng(i))[0])
            for i in range(20)
        }
        assert len(picks) > 1  # randomized ties actually vary
        assert picks <= {0, 1, 2, 3}


class TestMultiApp:
    def test_assignment_complete_and_valid(self, scenario1_small):
        model = scenario1_small
        state = AllocationState(model)
        for s in model.strings[:10]:
            assignment = imr_map_string(state, s.string_id)
            assert assignment.shape == (s.n_apps,)
            assert assignment.min() >= 0
            assert assignment.max() < model.n_machines
            state.try_add(s.string_id, assignment)

    def test_does_not_mutate_state(self, small_model):
        state = AllocationState(small_model)
        before_m = state.machine_util.copy()
        before_r = state.route_util.copy()
        imr_map_string(state, 3)
        np.testing.assert_array_equal(state.machine_util, before_m)
        np.testing.assert_array_equal(state.route_util, before_r)

    def test_starts_from_most_intensive_app(self):
        """The most intensive app gets the machine-only greedy choice."""
        net = uniform_network(2)
        # app 1 is by far the most intensive; machine 1 is cheaper for it
        comp = np.array([[2.0, 2.0], [9.0, 3.0], [2.0, 2.0]])
        util = np.array([[0.2, 0.2], [1.0, 1.0], [0.2, 0.2]])
        s = AppString(0, 1, 10.0, 1_000.0, comp, util,
                      np.array([10.0, 10.0]))
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assignment = imr_map_string(state, 0)
        # work on m0 = 9, on m1 = 3 -> must pick machine 1 for app 1
        assert assignment[1] == 1

    def test_network_awareness(self):
        """With huge transfers and one congested route, neighbours of the
        anchor app avoid crossing the loaded route."""
        bw = np.full((2, 2), 1_000.0)
        np.fill_diagonal(bw, np.inf)
        net = __import__("repro").core.Network(bw)
        # two-app string with a big transfer; machine loads equal
        s = build_string(0, 2, 2, period=100.0, t=5.0, u=0.5,
                         out=20_000.0, latency=1e6)
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assignment = imr_map_string(state, 0)
        # transfer util inter-machine = (20000/100)/1000 = 0.2 vs
        # co-location machine util = 2*0.025 = 0.05 -> colocate
        assert assignment[0] == assignment[1]

    def test_spreads_when_transfers_cheap(self):
        net = uniform_network(3, bandwidth=1e9)
        s = build_string(0, 3, 3, period=10.0, t=5.0, u=1.0, out=10.0,
                         latency=1e6)
        model = SystemModel(net, [s])
        state = AllocationState(model)
        assignment = imr_map_string(state, 0)
        # each app contributes 0.5 utilization; spreading dominates
        assert len(set(int(j) for j in assignment)) == 3


class TestDeterminism:
    def test_repeatable_without_rng(self, scenario1_small):
        model = scenario1_small
        s1 = AllocationState(model)
        s2 = AllocationState(model)
        for s in model.strings[:8]:
            a1 = imr_map_string(s1, s.string_id)
            a2 = imr_map_string(s2, s.string_id)
            np.testing.assert_array_equal(a1, a2)
            s1.try_add(s.string_id, a1)
            s2.try_add(s.string_id, a2)
