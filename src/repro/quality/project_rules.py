"""Whole-program rules RPR009–RPR012.

These rules consume the :class:`~repro.quality.project.ProjectContext`
built by the engine — the import graph, per-module symbol tables, and
the cross-module reference index — to enforce invariants no single file
can witness:

``RPR009``
    Fork/pickle safety.  Callables submitted to a
    ``ProcessPoolExecutor`` must be picklable module-level functions,
    and a worker function must not mutate module-level mutable globals
    (the parent never sees the write; under ``spawn`` each worker gets
    its own copy).  Cross-process state must flow through the sanctioned
    broadcast registry (:mod:`repro.parallel.broadcast`).  Re-enabling
    writes on a read-only array view (``setflags(write=True)``) is
    likewise flagged: attached :class:`~repro.parallel.SharedModel`
    views are deliberately frozen.
``RPR010``
    RNG provenance.  Every ``np.random.default_rng`` / ``Generator``
    construction site must derive its seed from injected state — a
    parameter of an enclosing function, attributes of ``self``, another
    generator, or a module-level constant — never from OS entropy
    (no-argument construction) or wall-clock/UUID entropy sources.
    The dataflow check crosses call boundaries: call sites of
    seed-consuming functions in *other* modules are held to the same
    standard, extending RPR002 whole-program.
``RPR011``
    Layering.  The module-level import graph must be acyclic, and
    ``repro.*`` subpackages may only import strictly lower layers
    (``repro.core`` at the bottom imports nothing else; ``heuristics``
    may not import ``service``; and so on per :data:`LAYERS`).
``RPR012``
    Cross-module export consistency.  A ``from module import name``
    between project modules must name something the target actually
    binds; a package ``__init__`` re-export must be listed in the
    source module's ``__all__``; and a public top-level symbol that is
    neither exported via ``__all__`` nor referenced anywhere in the
    project (including its own module) is dead public surface.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator, Mapping

from .findings import Finding
from .project import (
    PROJECT_RULES,
    ProjectContext,
    ProjectRule,
    SymbolTable,
    register_project,
)

__all__ = [
    "ALL_PROJECT_RULE_IDS",
    "LAYERS",
    "CrossModuleExportRule",
    "ForkPickleSafetyRule",
    "LayeringRule",
    "RngProvenanceRule",
]


# ---------------------------------------------------------------------------
# RPR009 — fork/pickle safety
# ---------------------------------------------------------------------------

_EXECUTOR_NAMES = frozenset({"ProcessPoolExecutor"})
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
    }
)
_MUTABLE_VALUE_NODES = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)


def _module_mutable_globals(project: ProjectContext, module: str) -> set[str]:
    """Top-level names of ``module`` bound to mutable containers."""
    info = project.modules.get(module)
    if info is None:
        return set()
    mutable: set[str] = set()
    for stmt in info.tree.body:
        value: ast.expr | None = None
        targets: list[str] = []
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            value = stmt.value
            targets = [stmt.target.id]
        if not targets or value is None:
            continue
        is_mutable = isinstance(value, _MUTABLE_VALUE_NODES)
        if isinstance(value, ast.Call):
            func = value.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            is_mutable = name in _MUTABLE_CTORS
        if is_mutable:
            mutable.update(targets)
    return mutable


def _worker_global_writes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, mutable_globals: set[str]
) -> Iterator[tuple[ast.AST, str]]:
    """Yield (node, name) for module-global mutations inside ``fn``."""
    declared_global: set[str] = set()
    local_names: set[str] = {a.arg for a in ast.walk(fn) if isinstance(a, ast.arg)}
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if target.id in declared_global:
                        yield node, target.id
                    else:
                        local_names.add(target.id)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name in mutable_globals and name not in local_names:
                        yield node, name
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
            ):
                name = func.value.id
                if name in mutable_globals and name not in local_names:
                    yield node, name


@register_project
class ForkPickleSafetyRule(ProjectRule):
    """Work shipped to a process pool must be fork/pickle safe.

    Three violations, all invisible to a single-file linter:

    * a lambda or nested function submitted to a
      ``ProcessPoolExecutor`` (unpicklable under the ``spawn`` start
      method; silently captures parent state under ``fork``);
    * a submitted worker function — resolved across module boundaries —
      that mutates a module-level mutable global: the write lands in
      the *worker's* copy and the parent never observes it, so the
      program is wrong under every start method;
    * ``array.setflags(write=True)``, which re-enables writes on a
      read-only view — the guard that keeps workers from corrupting an
      attached shared-memory model.

    The broadcast registry (:mod:`repro.parallel.broadcast`) is the one
    sanctioned home for cross-process module state and is exempt.
    """

    rule_id = "RPR009"
    summary = "process-pool work must be picklable and side-effect free"
    exempt_modules: ClassVar[tuple[str, ...]] = ("repro.parallel.broadcast",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module in sorted(project.modules):
            yield from self._check_module(project, module)

    def _check_module(
        self, project: ProjectContext, module: str
    ) -> Iterator[Finding]:
        info = project.modules[module]
        ctx = project.context_for(module)
        executors = self._executor_names(info.tree)
        nested = self._nested_function_names(info.tree)
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and module not in self.exempt_modules
                and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
            ):
                yield self.finding(
                    ctx,
                    node,
                    "setflags(write=True) re-enables writes on a read-only "
                    "view (shared-memory models are deliberately frozen)",
                    hint="copy the array instead of unfreezing the view",
                )
                continue
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in ("submit", "map")
                or not isinstance(func.value, ast.Name)
                or func.value.id not in executors
                or not node.args
            ):
                continue
            submitted = node.args[0]
            if isinstance(submitted, ast.Lambda):
                yield self.finding(
                    ctx,
                    submitted,
                    "lambda submitted to a process pool is not picklable "
                    "under spawn and captures parent state under fork",
                    hint="submit a module-level function",
                )
                continue
            if isinstance(submitted, ast.Name):
                if submitted.id in nested:
                    yield self.finding(
                        ctx,
                        submitted,
                        f"nested function `{submitted.id}` submitted to a "
                        "process pool is not picklable under spawn",
                        hint="hoist the worker to module level",
                    )
                    continue
                yield from self._check_worker(project, module, submitted.id)

    def _check_worker(
        self,
        project: ProjectContext,
        module: str,
        name: str,
    ) -> Iterator[Finding]:
        resolved = project.resolve_function(module, name)
        if resolved is None:
            return
        def_module, fn = resolved
        if def_module in self.exempt_modules:
            return
        mutable = _module_mutable_globals(project, def_module)
        worker_ctx = project.context_for(def_module)
        for node, global_name in _worker_global_writes(fn, mutable):
            yield self.finding(
                worker_ctx,
                node,
                f"worker `{fn.name}` mutates module global "
                f"`{global_name}`; the write stays in the worker process "
                "and the parent never sees it",
                hint="return the data, or use the repro.parallel.broadcast "
                "registry",
            )

    @staticmethod
    def _executor_names(tree: ast.Module) -> set[str]:
        """Local names bound to ``ProcessPoolExecutor(...)`` instances."""
        names: set[str] = set()

        def ctor_name(value: ast.expr) -> str:
            if isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Name):
                    return func.id
                if isinstance(func, ast.Attribute):
                    return func.attr
            return ""

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if ctor_name(node.value) in _EXECUTOR_NAMES:
                    names.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
            elif isinstance(node, ast.withitem):
                if (
                    ctor_name(node.context_expr) in _EXECUTOR_NAMES
                    and isinstance(node.optional_vars, ast.Name)
                ):
                    names.add(node.optional_vars.id)
        return names

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> set[str]:
        """Names of functions defined inside other functions."""
        nested: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    if sub is node:
                        continue
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        nested.add(sub.name)
        return nested


# ---------------------------------------------------------------------------
# RPR010 — RNG provenance across call boundaries
# ---------------------------------------------------------------------------

_GENERATOR_CTORS = frozenset({"default_rng", "Generator"})
_ENTROPY_CALLS = frozenset(
    {"time", "time_ns", "urandom", "uuid1", "uuid4", "getrandbits", "token_bytes"}
)
_ENTROPY_MODULES = frozenset({"secrets", "uuid", "os", "time"})


def _call_simple_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _entropy_call(node: ast.expr) -> ast.Call | None:
    """First wall-clock/OS-entropy call inside ``node``, if any."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute) and func.attr in _ENTROPY_CALLS:
            base = func.value
            if isinstance(base, ast.Name) and base.id in _ENTROPY_MODULES:
                return sub
        elif isinstance(func, ast.Name) and func.id in _ENTROPY_CALLS:
            return sub
    return None


class _ScopeStack(ast.NodeVisitor):
    """Record the enclosing-function chain of every Call node."""

    def __init__(self) -> None:
        self.stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.calls: list[
            tuple[ast.Call, tuple[ast.FunctionDef | ast.AsyncFunctionDef, ...]]
        ] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.stack.append(node)
        self.generic_visit(node)
        self.stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.stack.append(node)
        self.generic_visit(node)
        self.stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append((node, tuple(self.stack)))
        self.generic_visit(node)


def _params_of(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    for star in (args.vararg, args.kwarg):
        if star is not None:
            names.add(star.arg)
    return names


def _local_assignments(
    scopes: tuple[ast.FunctionDef | ast.AsyncFunctionDef, ...],
) -> dict[str, list[ast.expr]]:
    """Name -> assigned expressions across the enclosing scopes."""
    assigned: dict[str, list[ast.expr]] = {}
    for fn in scopes:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigned.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    assigned.setdefault(node.target.id, []).append(node.value)
    return assigned


def _seed_roots(expr: ast.expr) -> set[str]:
    """Free ``Name`` roots of a seed expression."""
    roots: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            roots.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                roots.add(base.id)
    return roots


@register_project
class RngProvenanceRule(ProjectRule):
    """Every generator must trace back to an injected seed stream.

    RPR002 bans *ambient* randomness inside one file; this rule extends
    the guarantee across call boundaries.  At every
    ``np.random.default_rng(...)`` / ``Generator(...)`` construction
    site the seed expression must be *injected*: its name roots must
    reach an enclosing function's parameter, ``self``/``cls`` state, or
    a module-level constant — possibly through local assignments —
    and must not contain an entropy source (``time.time()``,
    ``os.urandom``, ``uuid4``, …).  Zero-argument construction seeds
    from OS entropy and is always flagged.

    The cross-module half: a function whose parameter feeds a generator
    is a *seed-consuming* function; every resolvable call site of such
    a function in the project is checked for entropy-source arguments,
    so ``run_trials(seed=time.time())`` two modules away from the
    ``default_rng`` call is still caught.
    """

    rule_id = "RPR010"
    summary = "generator construction must trace to an injected seed"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        # (module, function name) -> parameter names that feed a generator
        seed_params: dict[tuple[str, str], set[str]] = {}
        for module in sorted(project.modules):
            yield from self._check_construction_sites(
                project, module, seed_params
            )
        yield from self._check_call_sites(project, seed_params)

    # -- construction sites ----------------------------------------------------

    def _check_construction_sites(
        self,
        project: ProjectContext,
        module: str,
        seed_params: dict[tuple[str, str], set[str]],
    ) -> Iterator[Finding]:
        info = project.modules[module]
        ctx = project.context_for(module)
        table = project.symbols[module]
        scoper = _ScopeStack()
        scoper.visit(info.tree)
        for call, scopes in scoper.calls:
            if _call_simple_name(call) not in _GENERATOR_CTORS:
                continue
            if not call.args and not call.keywords:
                yield self.finding(
                    ctx,
                    call,
                    "generator constructed with no seed draws OS entropy "
                    "and breaks deterministic replay",
                    hint="thread an injected seed or Generator through",
                )
                continue
            seed_expr = call.args[0] if call.args else call.keywords[0].value
            entropy = _entropy_call(seed_expr)
            if entropy is not None:
                yield self.finding(
                    ctx,
                    call,
                    f"generator seeded from entropy source "
                    f"`{ast.unparse(entropy.func)}()`",
                    hint="derive the seed from the injected seed stream",
                )
                continue
            params: set[str] = set()
            for fn in scopes:
                params |= _params_of(fn)
            assigned = _local_assignments(scopes)
            ok, via_params = self._provenance_ok(
                seed_expr, params, assigned, table
            )
            if not ok:
                yield self.finding(
                    ctx,
                    call,
                    "generator seed does not derive from a parameter, "
                    "self state, or module constant",
                    hint="inject the seed (extend the function signature) "
                    "instead of minting one locally",
                )
                continue
            if scopes and via_params:
                key = (module, scopes[0].name)
                seed_params.setdefault(key, set()).update(
                    via_params & _params_of(scopes[0])
                )

    def _provenance_ok(
        self,
        expr: ast.expr,
        params: set[str],
        assigned: dict[str, list[ast.expr]],
        table: SymbolTable,
    ) -> tuple[bool, set[str]]:
        """Whether every name root of ``expr`` reaches injected state.

        Returns ``(ok, parameter_roots)``.  Module-level bindings count
        as constants; a purely-literal seed (no roots at all) also
        passes — it is deterministic, and hard-coding policy belongs to
        call-site review, not the provenance check.
        """
        roots = _seed_roots(expr)
        via_params: set[str] = set()
        pending = list(roots)
        seen: set[str] = set()
        while pending:
            root = pending.pop()
            if root in seen:
                continue
            seen.add(root)
            if root in params or root in ("self", "cls"):
                via_params.add(root)
                continue
            exprs = assigned.get(root)
            if exprs is not None:
                for sub in exprs:
                    if _entropy_call(sub) is not None:
                        return False, via_params
                    pending.extend(_seed_roots(sub))
                continue
            if table.binds(root):
                continue  # module-level constant or imported name
            # anything else (builtins, loop targets) contributes no
            # provenance but does not taint the seed either
        return True, via_params

    # -- call sites of seed-consuming functions --------------------------------

    def _check_call_sites(
        self,
        project: ProjectContext,
        seed_params: dict[tuple[str, str], set[str]],
    ) -> Iterator[Finding]:
        if not seed_params:
            return
        for module in sorted(project.modules):
            info = project.modules[module]
            ctx = project.context_for(module)
            for node in ast.walk(info.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                if not isinstance(callee, ast.Name):
                    continue
                resolved = project.resolve_function(module, callee.id)
                if resolved is None:
                    continue
                def_module, fn = resolved
                params = seed_params.get((def_module, fn.name))
                if not params:
                    continue
                for arg in self._bound_arguments(fn, node, params):
                    entropy = _entropy_call(arg)
                    if entropy is not None:
                        yield self.finding(
                            ctx,
                            node,
                            f"entropy source "
                            f"`{ast.unparse(entropy.func)}()` passed as the "
                            f"seed stream of `{fn.name}` "
                            f"({def_module})",
                            hint="pass a deterministic seed derived from "
                            "the experiment's base seed",
                        )

    @staticmethod
    def _bound_arguments(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        call: ast.Call,
        params: set[str],
    ) -> Iterator[ast.expr]:
        """Call arguments bound to the given parameter names."""
        positional = [a.arg for a in [*fn.args.posonlyargs, *fn.args.args]]
        for i, arg in enumerate(call.args):
            if i < len(positional) and positional[i] in params:
                yield arg
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in params:
                yield kw.value


# ---------------------------------------------------------------------------
# RPR011 — layering and import cycles
# ---------------------------------------------------------------------------

#: Layer rank of each ``repro.*`` subpackage (lower = more fundamental).
#: A module may import only strictly lower-ranked subpackages.
LAYERS: dict[str, int] = {
    "core": 0,
    "_version": 0,
    "analysis": 1,
    "des": 1,
    "genitor": 1,
    "lp": 1,
    "parallel": 1,
    "pools": 1,
    "robustness": 1,
    "workload": 1,
    "dag": 2,
    "heuristics": 2,
    "quality": 2,
    "dynamic": 3,
    "io_utils": 3,
    "faults": 4,
    "fleet": 4,
    "experiments": 5,
    "service": 6,
    "cli": 7,
    "__main__": 8,
}


@register_project
class LayeringRule(ProjectRule):
    """The import graph must be acyclic and respect the layer map.

    Two checks over the runtime module-scope import graph
    (``TYPE_CHECKING`` and function-scope imports are excluded — those
    are the sanctioned mechanisms for type-only and lazy references):

    * **cycles** — every strongly connected component of more than one
      module is reported once, anchored at its first module;
    * **forbidden edges** — within the root ``repro`` package, a module
      of subpackage X may import subpackage Y only when
      ``LAYERS[Y] < LAYERS[X]``.  In particular ``repro.core``, the
      bottom layer implementing eqs. 1–7, may import nothing above it,
      so the feasibility math stays embeddable in any worker process
      without dragging in heuristics, services, or experiment drivers.

    Subpackages absent from :data:`LAYERS` are exempt from the rank
    check (new packages opt in by taking a rank) but still participate
    in cycle detection.
    """

    rule_id = "RPR011"
    summary = "no import cycles; repro layers import strictly downward"
    root_package: ClassVar[str] = "repro"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.import_graph()
        yield from self._check_cycles(project, graph)
        yield from self._check_layers(project, graph)

    def _check_cycles(
        self,
        project: ProjectContext,
        graph: Mapping[str, frozenset[str]],
    ) -> Iterator[Finding]:
        adjacency = {m: set(graph[m]) for m in project.modules}
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue
            ordered = sorted(component)
            anchor_module = ordered[0]
            ctx = project.context_for(anchor_module)
            anchor = self._import_node(
                project, anchor_module, set(component)
            )
            cycle = " -> ".join(ordered + [ordered[0]])
            yield self.finding(
                ctx,
                anchor,
                f"import cycle: {cycle}",
                hint="break the cycle (move shared code down a layer or "
                "defer one import into the function that needs it)",
            )

    def _check_layers(
        self,
        project: ProjectContext,
        graph: Mapping[str, frozenset[str]],
    ) -> Iterator[Finding]:
        prefix = self.root_package + "."
        for module in sorted(project.modules):
            if not module.startswith(prefix):
                continue
            src_pkg = module[len(prefix):].split(".")[0]
            src_rank = LAYERS.get(src_pkg)
            if src_rank is None:
                continue
            for target in sorted(graph[module]):
                if not target.startswith(prefix):
                    continue
                dst_pkg = target[len(prefix):].split(".")[0]
                if dst_pkg == src_pkg:
                    continue
                dst_rank = LAYERS.get(dst_pkg)
                if dst_rank is None or dst_rank < src_rank:
                    continue
                ctx = project.context_for(module)
                anchor = self._import_node(project, module, {target})
                yield self.finding(
                    ctx,
                    anchor,
                    f"forbidden layering edge: `{module}` "
                    f"(layer {src_rank}, {src_pkg}) imports `{target}` "
                    f"(layer {dst_rank}, {dst_pkg})",
                    hint="layers import strictly downward; move the shared "
                    "code below both packages or invert the dependency",
                )

    @staticmethod
    def _import_node(
        project: ProjectContext, module: str, targets: set[str]
    ) -> ast.AST:
        """The import statement in ``module`` that creates the edge."""
        for rec in project.imports[module]:
            if not rec.module_scope or rec.type_checking:
                continue
            resolved = project.resolve_target(rec.target)
            if resolved is None and rec.name is not None:
                resolved = project.resolve_target(f"{rec.target}.{rec.name}")
            if resolved in targets:
                anchor = ast.Pass()
                anchor.lineno = rec.lineno
                anchor.col_offset = rec.col
                return anchor
        return project.modules[module].tree


def _strongly_connected(adjacency: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's SCC, iterative (deep module chains must not recurse)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    components: list[list[str]] = []
    for start in adjacency:
        if start in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (start, sorted(adjacency.get(start, ())), 0)
        ]
        index[start] = low[start] = counter
        counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, edges, i = work.pop()
            advanced = False
            while i < len(edges):
                nxt = edges[i]
                i += 1
                if nxt not in adjacency:
                    continue
                if nxt not in index:
                    work.append((node, edges, i))
                    index[nxt] = low[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(adjacency.get(nxt, ())), 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            if low[node] == index[node]:
                component: list[str] = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    component.append(top)
                    if top == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


# ---------------------------------------------------------------------------
# RPR012 — cross-module export consistency
# ---------------------------------------------------------------------------


@register_project
class CrossModuleExportRule(ProjectRule):
    """Exports must exist, agree across modules, and earn their keep.

    Three cross-module checks (RPR006 polices each ``__init__`` in
    isolation; this rule closes the gaps between files):

    * **stale import** — ``from project.module import name`` where the
      target module binds no such name (submodules and PEP 562
      ``__getattr__`` modules are respected);
    * **re-export drift** — a package ``__init__`` re-exports a name in
      its ``__all__`` whose source module declares an ``__all__`` that
      omits it: the symbol is public at the package surface but private
      at home, so the two contracts disagree;
    * **dead public surface** — a public top-level symbol of a
      non-``__init__`` module that is not in the module's ``__all__``,
      is referenced by no other module, and is not even used inside its
      own module.  Either it is API (export it) or it is not (prefix an
      underscore or delete it).
    """

    rule_id = "RPR012"
    summary = "cross-module __all__/re-export consistency, no dead exports"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        references = project.references()
        for module in sorted(project.modules):
            info = project.modules[module]
            ctx = project.context_for(module)
            table = project.symbols[module]
            # -- stale imports & re-export drift --------------------------
            for rec in project.imports[module]:
                if rec.name is None or rec.name == "*":
                    continue
                target = project.resolve_target(rec.target)
                if target is None or target == module:
                    continue
                if f"{rec.target}.{rec.name}" in project.modules:
                    continue  # submodule import
                if target != rec.target:
                    # `from package import name`: the name may be a
                    # submodule attribute bound at import time.
                    if f"{target}.{rec.name}" in project.modules:
                        continue
                target_table = project.symbols[target]
                anchor = ast.Pass()
                anchor.lineno = rec.lineno
                anchor.col_offset = rec.col
                if not target_table.binds(rec.name):
                    yield self.finding(
                        ctx,
                        anchor,
                        f"`from {target} import {rec.name}` names a symbol "
                        "the target module never binds",
                        hint="fix the import or define/export the symbol",
                    )
                    continue
                if (
                    info.is_package
                    and table.declared_all is not None
                    and rec.alias in table.declared_all
                    and not rec.alias.startswith("_")
                    and target_table.declared_all is not None
                    and rec.name not in target_table.declared_all
                ):
                    yield self.finding(
                        ctx,
                        anchor,
                        f"package re-exports `{rec.alias}` but "
                        f"`{target}.__all__` omits `{rec.name}`: the "
                        "public surfaces disagree",
                        hint=f"add `{rec.name}` to {target}.__all__ or stop "
                        "re-exporting it",
                    )
            # -- dead public surface --------------------------------------
            # Packages re-export by design; modules outside any package
            # (scripts, test scratch files) have no cross-module public
            # contract to police.
            if info.is_package or "." not in module:
                continue
            declared = table.declared_all or frozenset()
            used_here = project.used_names(module)
            referenced = references.get(module, frozenset())
            for name, lineno in sorted(table.bindings.items()):
                if name.startswith("_") or name in declared:
                    continue
                if name in referenced or name in used_here:
                    continue
                anchor = ast.Pass()
                anchor.lineno = lineno
                anchor.col_offset = 0
                yield self.finding(
                    ctx,
                    anchor,
                    f"public symbol `{name}` is not exported via __all__, "
                    "not referenced by any other module, and unused here: "
                    "dead public surface",
                    hint="export it, rename it with a leading underscore, "
                    "or delete it",
                )


#: Stable, importable view of the project-rule registry.
ALL_PROJECT_RULE_IDS: tuple[str, ...] = tuple(sorted(PROJECT_RULES))
