"""Benchmark + regeneration of Figure 5 (system slackness, scenario 3).

Scenario 3 is lightly loaded: the complete string set allocates and the
heuristics compete on the secondary metric, system slackness Λ.  The
reproduced shape: all four heuristics complete the mapping, the
evolutionary heuristics achieve the highest slackness, and the LP
(fractional) bound sits above everything.
"""

from __future__ import annotations

from repro.experiments import run_figure


def test_fig5_slackness_lightly_loaded(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_figure("fig5", scale=bench_scale, base_seed=1_000),
        rounds=1,
        iterations=1,
    )
    labels, means, errs = result.series()
    benchmark.extra_info["series"] = dict(zip(labels, means))
    print()
    print(result.chart())
    print(result.table())

    assert result.heuristics_below_ub()
    assert result.evolutionary_dominates()
    # complete allocation: every heuristic mapped every string
    scenario = result.outcome.config.effective_scenario()
    for record in result.outcome.records:
        for name, (_w, _s, _rt, n_mapped) in record.results.items():
            assert n_mapped == scenario.n_strings, (name, record.seed)
    # slackness values live in (0, 1) for a loaded-but-light system
    for name in ("psg", "mwf", "tf", "seeded-psg"):
        assert 0.0 < result.aggregates[name].mean < 1.0
