"""Unit tests for the surge-curve experiment
(repro.experiments.surge_curve)."""

import numpy as np
import pytest

from repro.experiments import ExperimentScale, run_surge_curves

TINY = ExperimentScale(
    name="tiny",
    n_runs=2,
    size_factor=1 / 3,
    population_size=8,
    max_iterations=20,
    max_stale_iterations=10,
    n_trials=1,
)


@pytest.fixture(scope="module")
def outcome():
    return run_surge_curves(
        scale=TINY,
        heuristics=("mwf", "tf"),
        deltas=(0.0, 0.5, 1.0, 2.0),
        base_seed=8_100,
    )


class TestCurves:
    def test_heuristics_covered(self, outcome):
        assert set(outcome["curves"]) == {"mwf", "tf"}

    def test_retention_at_zero_is_one(self, outcome):
        for curve in outcome["curves"].values():
            assert curve.retention[0.0].mean == pytest.approx(1.0)

    def test_nonincreasing(self, outcome):
        """Uniform surges only remove capacity; retention cannot rise."""
        for curve in outcome["curves"].values():
            assert curve.is_nonincreasing()

    def test_retention_bounded(self, outcome):
        for curve in outcome["curves"].values():
            for ci in curve.retention.values():
                assert -1e-9 <= ci.mean <= 1.0 + 1e-9

    def test_knee_definition(self, outcome):
        for curve in outcome["curves"].values():
            knee = curve.knee()
            assert knee in (0.0, 0.5, 1.0, 2.0)
            assert curve.retention[knee].mean >= 0.999

    def test_table_rendered(self, outcome):
        assert "δ=0.5" in outcome["table"]
        assert "mwf" in outcome["table"]

    def test_means_shape(self, outcome):
        curve = outcome["curves"]["mwf"]
        assert curve.means().shape == (4,)


class TestReproducibility:
    def test_same_seed_same_curves(self):
        kwargs = dict(
            scale=TINY, heuristics=("mwf",), deltas=(0.0, 1.0),
            base_seed=8_200,
        )
        a = run_surge_curves(**kwargs)
        b = run_surge_curves(**kwargs)
        np.testing.assert_allclose(
            a["curves"]["mwf"].means(), b["curves"]["mwf"].means()
        )
