"""Bit-identity of the scalar ``compute_profile`` fast path.

The dispatcher sends small strings (``n_apps <= _SCALAR_MAX_APPS``)
through a dict-accumulating scalar kernel instead of the
``np.unique``/``bincount`` vector kernel.  The two must agree to the
last bit — every downstream consumer (feasibility kernel, priority
keys, fleet solves) assumes profiles are a pure function of
``(model, string, mapping)``, not of which kernel computed them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profile import (
    _SCALAR_MAX_APPS,
    ProfileCache,
    _profile_scalar,
    _profile_vector,
    compute_profile,
)
from repro.workload import generate_model, get_scenario
from repro.workload.fleet import FLEET_SMOKE, generate_fleet, materialize_model


def _profiles_bit_equal(a, b):
    assert a.key == b.key
    assert a.period == b.period
    assert a.max_latency == b.max_latency
    assert a.nominal_path == b.nominal_path
    assert a.n_machines == b.n_machines
    assert np.array_equal(a.machines, b.machines)
    assert a.res_idx.tobytes() == b.res_idx.tobytes()
    assert a.res_load.tobytes() == b.res_load.tobytes()
    assert a.res_tmax.tobytes() == b.res_tmax.tobytes()
    assert a.res_count.tobytes() == b.res_count.tobytes()


def _mappings(model, string_id, rng):
    """A mix of spread-out, colocated, and random mappings."""
    n = model.strings[string_id].n_apps
    M = model.n_machines
    yield np.arange(n, dtype=np.int64) % M
    yield np.zeros(n, dtype=np.int64)
    for _ in range(4):
        yield rng.integers(0, M, size=n).astype(np.int64)


class TestScalarVectorParity:
    def test_paper_scale_model(self):
        model = generate_model(
            get_scenario("1").scaled(n_strings=20, n_machines=8), seed=3
        )
        rng = np.random.default_rng(7)
        for k in range(model.n_strings):
            for m in _mappings(model, k, rng):
                _profiles_bit_equal(
                    _profile_scalar(model, k, m),
                    _profile_vector(model, k, m),
                )

    def test_fleet_shard_model(self):
        workload = generate_fleet(FLEET_SMOKE, seed=5)
        model = materialize_model(
            workload, tuple(range(12)), list(range(40))
        )
        rng = np.random.default_rng(11)
        for k in range(model.n_strings):
            for m in _mappings(model, k, rng):
                _profiles_bit_equal(
                    _profile_scalar(model, k, m),
                    _profile_vector(model, k, m),
                )

    def test_dispatcher_matches_both_kernels(self):
        model = generate_model(
            get_scenario("1").scaled(n_strings=10, n_machines=6), seed=9
        )
        rng = np.random.default_rng(13)
        for k in range(model.n_strings):
            m = rng.integers(0, 6, size=model.strings[k].n_apps)
            m = m.astype(np.int64)
            via_dispatch = compute_profile(model, k, m)
            expected = (
                _profile_scalar(model, k, m)
                if model.strings[k].n_apps <= _SCALAR_MAX_APPS
                else _profile_vector(model, k, m)
            )
            _profiles_bit_equal(via_dispatch, expected)

    def test_cache_miss_path_agrees_with_compute(self):
        model = generate_model(
            get_scenario("1").scaled(n_strings=8, n_machines=5), seed=21
        )
        cache = ProfileCache()
        rng = np.random.default_rng(17)
        for k in range(model.n_strings):
            m = rng.integers(0, 5, size=model.strings[k].n_apps)
            m = m.astype(np.int64)
            cached = cache.get_or_compute(model, k, m)
            _profiles_bit_equal(cached, compute_profile(model, k, m))
        assert cache.stats()["misses"] == model.n_strings


class TestDispatchThreshold:
    def test_small_strings_take_scalar_path(self):
        assert _SCALAR_MAX_APPS >= 8, (
            "paper workloads (up to ~8 apps per string) should use the "
            "scalar fast path"
        )

    def test_mapping_normalization(self):
        # The dispatcher accepts any integer dtype / python list.
        model = generate_model(
            get_scenario("1").scaled(n_strings=4, n_machines=4), seed=2
        )
        n = model.strings[0].n_apps
        a = compute_profile(model, 0, [0] * n)
        b = compute_profile(model, 0, np.zeros(n, dtype=np.int32))
        _profiles_bit_equal(a, b)
