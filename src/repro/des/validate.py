"""Cross-validation of the analytic timing model against the simulator.

The stage-2 feasibility analysis rests on eqs. (5)–(6): analytic
estimates of mean computation/transfer spans under tightness-priority
resource sharing.  :func:`compare_to_estimates` runs the discrete-event
simulator on an allocation and reports, per (string, application), the
measured mean span next to the analytic estimate.

Exact agreement is expected only in the structured overlap cases of
Fig. 2 (periods aligned, harmonic ratios); for general workloads the
estimates are approximations — the paper itself notes their accuracy
"depends on ... how the data arrivals of different applications are
relatively phased".  The validation therefore reports relative errors
rather than asserting equality; the fig2 experiment asserts exactness
on the paper's three cases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import Allocation
from ..core.timing import TimingEstimator
from .engine import simulate_allocation

__all__ = ["TimingComparison", "compare_to_estimates", "random_phase_comparison"]


@dataclass
class TimingComparison:
    """Per-application analytic-vs-measured comparison."""

    #: (string, app) -> (estimate, measured mean)
    comp: dict[tuple[int, int], tuple[float, float]]
    #: (string, sending app) -> (estimate, measured mean)
    tran: dict[tuple[int, int], tuple[float, float]]
    #: string -> (estimated latency, measured mean latency)
    latency: dict[int, tuple[float, float]]

    def comp_relative_errors(self) -> np.ndarray:
        """|measured - estimate| / estimate per application."""
        return np.array(
            [
                abs(meas - est) / est
                for est, meas in self.comp.values()
                if est > 0
            ]
        )

    def max_comp_error(self) -> float:
        errs = self.comp_relative_errors()
        return float(errs.max()) if errs.size else 0.0

    def summary(self) -> str:
        errs = self.comp_relative_errors()
        if not errs.size:
            return "no applications simulated"
        return (
            f"{len(errs)} applications: mean |rel err| {errs.mean():.3%}, "
            f"max {errs.max():.3%}"
        )


def compare_to_estimates(
    allocation: Allocation,
    n_datasets: int = 50,
    skip_datasets: int = 5,
    phases: dict[int, float] | None = None,
) -> TimingComparison:
    """Simulate ``allocation`` and compare spans with eqs. (5)–(6).

    Parameters
    ----------
    allocation:
        The mapping to validate.
    n_datasets:
        Data sets released per string.
    skip_datasets:
        Warm-up prefix discarded from the measured means (the analytic
        model describes steady-state behaviour).
    phases:
        Optional per-string release offsets; random phases probe the
        estimates away from the aligned worst case they assume.
    """
    trace = simulate_allocation(
        allocation, n_datasets=n_datasets, phases=phases
    )
    estimator = TimingEstimator(allocation)
    timings = estimator.all_timings()

    measured_comp = trace.mean_comp_times(skip_datasets=skip_datasets)
    measured_tran = trace.mean_tran_times(skip_datasets=skip_datasets)

    comp: dict[tuple[int, int], tuple[float, float]] = {}
    tran: dict[tuple[int, int], tuple[float, float]] = {}
    latency: dict[int, tuple[float, float]] = {}
    for k, timing in timings.items():
        for i, est in enumerate(timing.comp_times):
            key = (k, i)
            if key in measured_comp:
                comp[key] = (float(est), measured_comp[key])
        for i, est in enumerate(timing.tran_times):
            key = (k, i)
            if key in measured_tran:
                tran[key] = (float(est), measured_tran[key])
        if trace.completed_datasets(k) > skip_datasets:
            latency[k] = (
                timing.end_to_end_latency(),
                trace.mean_latency(k, skip_datasets=skip_datasets),
            )
    return TimingComparison(comp=comp, tran=tran, latency=latency)


def random_phase_comparison(
    allocation: Allocation,
    rng: "np.random.Generator | int | None" = None,
    n_datasets: int = 60,
    skip_datasets: int = 6,
) -> TimingComparison:
    """Validation run with uniformly random release phases.

    Each string's releases are offset by ``U(0, P[k])`` — breaking the
    aligned-period worst case.  Expected outcome (and what the tests
    assert): measured means stay at or below the eq. (5)-(6) estimates,
    usually strictly below.
    """
    import numpy as _np

    rng = _np.random.default_rng(rng)
    phases = {
        k: float(rng.uniform(0.0, allocation.model.strings[k].period))
        for k in allocation
    }
    return compare_to_estimates(
        allocation,
        n_datasets=n_datasets,
        skip_datasets=skip_datasets,
        phases=phases,
    )
