"""Unit tests for the fluid resource model (repro.des.fluid)."""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.des import FluidResource, Job


def job(work, cap=1.0, priority=(0.5,), label="j"):
    return Job(work=work, cap=cap, priority=priority, label=label)


class TestJob:
    def test_validation(self):
        with pytest.raises(SimulationError):
            job(-1.0)
        with pytest.raises(SimulationError):
            job(1.0, cap=0.0)

    def test_completion_eps_relative(self):
        big = job(1e6)
        small = job(1.0)
        assert big.completion_eps > small.completion_eps
        assert small.completion_eps >= 1e-12


class TestSingleJob:
    def test_runs_at_cap(self):
        r = FluidResource(1.0, "m")
        j = job(2.0, cap=0.5)
        r.add(j, 0.0)
        assert j.rate == 0.5
        assert r.next_completion() == pytest.approx(4.0)

    def test_advance_drains_work(self):
        r = FluidResource(1.0)
        j = job(2.0, cap=1.0)
        r.add(j, 0.0)
        r.advance(1.5)
        assert j.work_remaining == pytest.approx(0.5)

    def test_pop_completed(self):
        r = FluidResource(1.0)
        j = job(2.0, cap=1.0)
        r.add(j, 0.0)
        done = r.pop_completed(2.0)
        assert done == [j]
        assert r.jobs == []

    def test_time_backwards_rejected(self):
        r = FluidResource(1.0)
        r.advance(5.0)
        with pytest.raises(SimulationError):
            r.advance(4.0)

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            FluidResource(0.0)


class TestPrioritySharing:
    def test_high_priority_takes_cap_first(self):
        r = FluidResource(1.0)
        high = job(5.0, cap=0.6, priority=(0.9,))
        low = job(5.0, cap=1.0, priority=(0.1,))
        r.add(high, 0.0)
        r.add(low, 0.0)
        assert high.rate == pytest.approx(0.6)
        assert low.rate == pytest.approx(0.4)  # leftover capacity

    def test_full_cap_starves_lower(self):
        r = FluidResource(1.0)
        high = job(5.0, cap=1.0, priority=(0.9,))
        low = job(5.0, cap=1.0, priority=(0.1,))
        r.add(high, 0.0)
        r.add(low, 0.0)
        assert high.rate == pytest.approx(1.0)
        assert low.rate == 0.0

    def test_rates_reallocated_on_completion(self):
        r = FluidResource(1.0)
        high = job(1.0, cap=1.0, priority=(0.9,))
        low = job(1.0, cap=1.0, priority=(0.1,))
        r.add(high, 0.0)
        r.add(low, 0.0)
        done = r.pop_completed(1.0)
        assert done == [high]
        assert low.rate == pytest.approx(1.0)

    def test_three_way_cascade(self):
        r = FluidResource(1.0)
        a = job(9.0, cap=0.5, priority=(3,))
        b = job(9.0, cap=0.3, priority=(2,))
        c = job(9.0, cap=1.0, priority=(1,))
        for j in (a, b, c):
            r.add(j, 0.0)
        assert (a.rate, b.rate, c.rate) == pytest.approx((0.5, 0.3, 0.2))

    def test_route_strict_priority(self):
        """Cap = capacity degenerates to strict priority service."""
        r = FluidResource(100.0, "route")
        first = job(200.0, cap=100.0, priority=(2,))
        second = job(100.0, cap=100.0, priority=(1,))
        r.add(first, 0.0)
        r.add(second, 0.0)
        assert first.rate == 100.0 and second.rate == 0.0
        done = r.pop_completed(2.0)
        assert done == [first]
        assert second.rate == 100.0


class TestAccounting:
    def test_busy_integral_tracks_utilization(self):
        r = FluidResource(1.0)
        j = job(1.0, cap=0.5)
        r.add(j, 0.0)
        r.pop_completed(2.0)  # busy 0.5 for 2s
        r.advance(4.0)
        assert r.utilization(4.0) == pytest.approx(0.25)

    def test_utilization_zero_horizon(self):
        assert FluidResource(1.0).utilization(0.0) == 0.0

    def test_next_completion_empty(self):
        assert FluidResource(1.0).next_completion() == np.inf

    def test_overdrain_guard(self):
        """Advancing far past a completion without popping it is an
        engine bug; the resource flags it instead of silently clamping."""
        r = FluidResource(1.0)
        j = job(1.0, cap=1.0)
        r.add(j, 0.0)
        with pytest.raises(SimulationError, match="overdrained"):
            r.advance(10.0)

    def test_subtick_residual_completes(self):
        """Work needing less than one clock ULP of service finishes."""
        r = FluidResource(1e9, "fast-route")
        j = job(1e-7, cap=1e9)  # service time 1e-16 s
        r.add(j, 4.0)
        done = r.pop_completed(4.0)
        assert done == [j]
