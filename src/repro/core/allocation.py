"""Allocation (mapping) representation.

An :class:`Allocation` records, for a subset of a model's strings, the
machine assignment ``m[i, k]`` of every application — the paper's
application-to-machine mapping in the *solution space*.  Partial resource
allocation (Section 1) is the norm: an allocation need not cover every
string in the model.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from .exceptions import AllocationError
from .model import SystemModel
from .types import IntArray, IntVectorLike

__all__ = ["Allocation"]


class Allocation:
    """Immutable application-to-machine mapping for a set of strings.

    Parameters
    ----------
    model:
        The :class:`~repro.core.model.SystemModel` the mapping refers to.
    assignments:
        Mapping from string id ``k`` to a sequence ``m`` of machine
        indices, one per application of string ``k`` (``m[i]`` is the
        paper's ``m[i, k]``).

    The class validates that every referenced string exists, that
    assignment lengths match application counts, and that machine indices
    are in range.  Instances are hashable and comparable so heuristics
    can deduplicate solutions.
    """

    __slots__ = ("model", "_assignments", "_key")

    def __init__(
        self, model: SystemModel, assignments: Mapping[int, IntVectorLike]
    ) -> None:
        clean: dict[int, IntArray] = {}
        for k, machines in assignments.items():
            if not 0 <= k < model.n_strings:
                raise AllocationError(
                    f"string id {k} out of range [0, {model.n_strings})"
                )
            arr = np.asarray(machines, dtype=np.int64).copy()
            n_apps = model.strings[k].n_apps
            if arr.shape != (n_apps,):
                raise AllocationError(
                    f"string {k}: assignment length {arr.shape} != "
                    f"n_apps ({n_apps},)"
                )
            if arr.size and (arr.min() < 0 or arr.max() >= model.n_machines):
                raise AllocationError(
                    f"string {k}: machine index out of range "
                    f"[0, {model.n_machines})"
                )
            arr.setflags(write=False)
            clean[k] = arr
        self.model = model
        self._assignments = clean
        self._key = tuple(
            (k, tuple(int(j) for j in clean[k])) for k in sorted(clean)
        )

    # -- container protocol -------------------------------------------------

    @property
    def string_ids(self) -> tuple[int, ...]:
        """Sorted ids of the strings this allocation maps."""
        return tuple(sorted(self._assignments))

    @property
    def n_strings(self) -> int:
        return len(self._assignments)

    def __contains__(self, string_id: int) -> bool:
        return string_id in self._assignments

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._assignments))

    def __len__(self) -> int:
        return len(self._assignments)

    def machines_for(self, string_id: int) -> IntArray:
        """Machine index per application of ``string_id`` (read-only)."""
        try:
            return self._assignments[string_id]
        except KeyError:
            raise AllocationError(
                f"string {string_id} is not mapped in this allocation"
            ) from None

    def machine_of(self, string_id: int, app_index: int) -> int:
        """The paper's ``m[i, k]`` (0-based)."""
        return int(self.machines_for(string_id)[app_index])

    # -- derived quantities --------------------------------------------------

    def total_worth(self) -> float:
        """Sum of worth factors over the mapped strings (Section 4)."""
        return float(
            sum(self.model.strings[k].worth for k in self._assignments)
        )

    def apps_on_machine(self, j: int) -> list[tuple[int, int]]:
        """All ``(string_id, app_index)`` pairs assigned to machine ``j``."""
        out: list[tuple[int, int]] = []
        for k, arr in self._assignments.items():
            for i in np.flatnonzero(arr == j):
                out.append((k, int(i)))
        return out

    def transfers_on_route(self, j1: int, j2: int) -> list[tuple[int, int]]:
        """All ``(string_id, app_index)`` transfers using route j1 -> j2.

        ``app_index`` identifies the *sending* application; the transfer
        carries ``output_sizes[app_index]`` bytes.
        """
        out: list[tuple[int, int]] = []
        for k, arr in self._assignments.items():
            if arr.size < 2:
                continue
            hits = np.flatnonzero((arr[:-1] == j1) & (arr[1:] == j2))
            for i in hits:
                out.append((k, int(i)))
        return out

    # -- functional updates ---------------------------------------------------

    def with_string(
        self, string_id: int, machines: IntVectorLike
    ) -> "Allocation":
        """A new allocation with ``string_id`` (re)mapped to ``machines``."""
        assignments: dict[int, IntVectorLike] = dict(self._assignments)
        assignments[string_id] = machines
        return Allocation(self.model, assignments)

    def without_string(self, string_id: int) -> "Allocation":
        """A new allocation with ``string_id`` removed."""
        assignments = {
            k: v for k, v in self._assignments.items() if k != string_id
        }
        return Allocation(self.model, assignments)

    def restricted_to(self, string_ids: Iterable[int]) -> "Allocation":
        """A new allocation keeping only the listed (mapped) strings."""
        keep = set(string_ids)
        return Allocation(
            self.model,
            {k: v for k, v in self._assignments.items() if k in keep},
        )

    # -- equality -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self.model is other.model and self._key == other._key

    def __hash__(self) -> int:
        return hash((id(self.model), self._key))

    def __repr__(self) -> str:
        return (
            f"Allocation(n_strings={self.n_strings}, "
            f"worth={self.total_worth():g})"
        )

    @classmethod
    def empty(cls, model: SystemModel) -> "Allocation":
        """An allocation mapping no strings."""
        return cls(model, {})
