"""Unit tests for heterogeneity regimes (repro.workload.heterogeneity)."""

import numpy as np
import pytest

from repro.core import ModelError
from repro.workload import (
    HETEROGENEITY_MODELS,
    SCENARIO_1,
    consistency_index,
    generate_heterogeneous_model,
    sample_comp_times,
)


class TestSampleCompTimes:
    @pytest.mark.parametrize("regime", HETEROGENEITY_MODELS)
    def test_within_range(self, regime):
        rng = np.random.default_rng(0)
        ct = sample_comp_times(8, 6, (1.0, 10.0), regime, rng)
        assert ct.shape == (8, 6)
        assert np.all(ct >= 1.0 - 1e-12)
        assert np.all(ct <= 10.0 + 1e-12)

    def test_consistent_rank_preserving(self):
        rng = np.random.default_rng(1)
        ct = sample_comp_times(10, 5, (1.0, 10.0), "consistent", rng)
        # machine columns must order applications identically
        ranks = np.argsort(ct, axis=0)
        for j in range(1, 5):
            np.testing.assert_array_equal(ranks[:, 0], ranks[:, j])

    def test_inconsistent_not_rank_preserving(self):
        rng = np.random.default_rng(2)
        ct = sample_comp_times(10, 5, (1.0, 10.0), "inconsistent", rng)
        ranks = np.argsort(ct, axis=0)
        assert any(
            not np.array_equal(ranks[:, 0], ranks[:, j])
            for j in range(1, 5)
        )

    def test_unknown_regime(self):
        with pytest.raises(ModelError):
            sample_comp_times(
                3, 3, (1.0, 10.0), "chaotic", np.random.default_rng(0)
            )

    def test_semi_noise_bounds(self):
        rng = np.random.default_rng(3)
        tight = sample_comp_times(
            20, 4, (1.0, 10.0), "semi", rng, semi_noise=0.01
        )
        # with tiny noise the matrix is almost rank-consistent
        from scipy import stats

        rho = stats.spearmanr(tight[:, 0], tight[:, 1]).statistic
        assert rho > 0.9


class TestGenerateHeterogeneousModel:
    @pytest.fixture
    def params(self):
        return SCENARIO_1.scaled(n_strings=12, n_machines=5)

    def test_inconsistent_matches_plain_generator(self, params):
        from repro.workload import generate_model

        a = generate_heterogeneous_model(params, "inconsistent", seed=4)
        b = generate_model(params, seed=4)
        for sa, sb in zip(a.strings, b.strings):
            np.testing.assert_array_equal(sa.comp_times, sb.comp_times)

    @pytest.mark.parametrize("regime", HETEROGENEITY_MODELS)
    def test_structurally_valid(self, params, regime):
        model = generate_heterogeneous_model(params, regime, seed=5)
        assert model.n_strings == 12
        for s in model.strings:
            assert np.all(s.comp_times >= 1.0 - 1e-12)
            assert np.all(s.comp_times <= 10.0 + 1e-12)
            assert s.period > 0 and s.max_latency > 0

    def test_mu_ranges_preserved(self, params):
        """Regime resampling must keep the Table-1 µ scaling."""
        model = generate_heterogeneous_model(params, "consistent", seed=6)
        for s in model.strings:
            nominal = float(
                s.avg_comp_times.sum()
                + (s.output_sizes * model.network.avg_inv_bandwidth).sum()
            )
            mu = s.max_latency / nominal
            assert 4.0 - 1e-9 <= mu <= 6.0 + 1e-9

    def test_deterministic(self, params):
        a = generate_heterogeneous_model(params, "semi", seed=7)
        b = generate_heterogeneous_model(params, "semi", seed=7)
        for sa, sb in zip(a.strings, b.strings):
            np.testing.assert_array_equal(sa.comp_times, sb.comp_times)


class TestConsistencyIndex:
    def test_regime_ordering(self):
        params = SCENARIO_1.scaled(n_strings=15, n_machines=5)
        idx = {
            regime: consistency_index(
                generate_heterogeneous_model(params, regime, seed=8)
            )
            for regime in HETEROGENEITY_MODELS
        }
        assert idx["consistent"] == pytest.approx(1.0)
        assert idx["inconsistent"] < 0.3
        assert idx["inconsistent"] < idx["semi"] < idx["consistent"]


class TestAblation:
    def test_runs(self):
        from repro.experiments import ExperimentScale, heterogeneity_ablation

        tiny = ExperimentScale("t", 2, 0.25, 8, 10, 5, 1)
        out = heterogeneity_ablation(scale=tiny)
        assert set(out["results"]) == set(HETEROGENEITY_MODELS)
        assert out["indices"]["consistent"] == pytest.approx(1.0)
        assert "regime" in out["table"]
