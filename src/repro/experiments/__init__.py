"""Experiment harness: the paper's evaluation, regenerated.

One entry point per paper artifact — ``fig2``/``fig3``/``fig4``/``fig5``,
``table1``, the runtime comparison, and the Section-5 ablations — built
on a shared multi-run :func:`run_experiment` engine with documented
scale presets (``smoke`` / ``default`` / ``paper``).
"""

from .ablations import (
    bias_sweep,
    crossover_ablation,
    heterogeneity_ablation,
    seeding_ablation,
    stop_rule_ablation,
)
from .bench import (
    BENCH_SCHEMA,
    compare_to_baseline,
    run_bench,
    run_state_micro,
    save_record,
)
from .chaos_soak import ChaosSoakRound, FleetChaosRound, run_chaos_soak
from .fleet_bench import run_fleet_bench
from .convergence import ConvergenceTrace, run_convergence
from .fig2 import FIG2_CASES, Fig2Case, build_case_model, run_fig2
from .checkpoint import ExperimentCheckpoint
from .figures import FIGURES, FigureResult, fig3, fig4, fig5, run_figure
from .runner import (
    SCALES,
    ExperimentConfig,
    ExperimentOutcome,
    ExperimentScale,
    RunFailure,
    RunRecord,
    RunTimeoutError,
    run_experiment,
)
from .recovery import (
    KILL_PHASES,
    KillRound,
    RecoveryConfig,
    RecoverySoakReport,
    TickClock,
    run_recovery_child,
    run_recovery_soak,
)
from .report import ReportSection, ReproductionReport, full_report
from .runtime_table import RuntimeRow, run_runtime_table
from .surge_curve import SurgeCurve, run_surge_curves
from .survivability import SurvivabilityCell, run_survivability
from .table1 import render_table1, table1_rows

__all__ = [
    "BENCH_SCHEMA",
    "FIG2_CASES",
    "FIGURES",
    "KILL_PHASES",
    "ChaosSoakRound",
    "FleetChaosRound",
    "KillRound",
    "RecoveryConfig",
    "RecoverySoakReport",
    "TickClock",
    "ExperimentCheckpoint",
    "ExperimentConfig",
    "ExperimentOutcome",
    "ConvergenceTrace",
    "ExperimentScale",
    "Fig2Case",
    "FigureResult",
    "ReportSection",
    "ReproductionReport",
    "RunFailure",
    "RunRecord",
    "RunTimeoutError",
    "RuntimeRow",
    "SurgeCurve",
    "SurvivabilityCell",
    "SCALES",
    "bias_sweep",
    "build_case_model",
    "compare_to_baseline",
    "crossover_ablation",
    "fig3",
    "fig4",
    "fig5",
    "full_report",
    "heterogeneity_ablation",
    "render_table1",
    "run_bench",
    "run_chaos_soak",
    "run_state_micro",
    "run_convergence",
    "run_experiment",
    "run_fig2",
    "run_fleet_bench",
    "run_figure",
    "run_recovery_child",
    "run_recovery_soak",
    "run_runtime_table",
    "run_surge_curves",
    "run_survivability",
    "save_record",
    "seeding_ablation",
    "stop_rule_ablation",
    "table1_rows",
]
