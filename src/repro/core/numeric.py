"""Epsilon-safe floating-point comparison helpers.

Every feasibility quantity in the paper is an accumulated float — machine
utilization (eq. 2) sums per-application loads, route utilization (eq. 3)
sums transfer fractions, and the latency bound (eq. 4) chains eq. (5)/(6)
estimates — so its bit pattern depends on summation order.  Raw ``==`` /
``!=`` against such quantities is therefore representation-dependent, and
rule RPR001 of :mod:`repro.quality` bans it across the codebase.  These
helpers are the sanctioned replacement; they share their default
tolerances with :data:`repro.core.feasibility.DEFAULT_TOL` so "equal for
comparison purposes" means the same thing everywhere.
"""

from __future__ import annotations

import math

__all__ = ["ABS_TOL", "REL_TOL", "isclose", "is_zero"]

#: Default relative tolerance, matching the feasibility analysis
#: (:data:`repro.core.feasibility.DEFAULT_TOL`).
REL_TOL = 1e-9

#: Default absolute tolerance; needed for comparisons against zero, where
#: a relative tolerance alone never matches.
ABS_TOL = 1e-12


def isclose(
    a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL
) -> bool:
    """Whether ``a`` and ``b`` are equal up to accumulation noise.

    Thin wrapper over :func:`math.isclose` with the project-wide default
    tolerances.  Symmetric in its arguments and safe near zero (the
    absolute tolerance handles the ``b == 0`` case that defeats purely
    relative comparison).
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(x: float, *, abs_tol: float = ABS_TOL) -> bool:
    """Whether ``x`` is zero up to accumulation noise.

    Comparison against zero uses an absolute tolerance only — a relative
    tolerance is meaningless when the reference value is 0.0.
    """
    return abs(x) <= abs_tol
