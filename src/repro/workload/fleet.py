"""Fleet-scale workload generation (ROADMAP north-star scale).

The paper's generator (:mod:`repro.workload.generator`) materializes a
dense ``(M, M)`` network and per-string ``(n_apps, M)`` tables up front,
which is fine at ``M = 12`` but quadratic at fleet scale (10³–10⁴
machines).  This module keeps the workload *description* compact —
``O(n_strings + transfers)`` to generate, independent of machine count —
and derives every machine-dependent value lazily from a counter-based
hash of the global identifiers:

* per ordered machine pair ``(j1, j2)``: route bandwidth, a pure
  function of ``(seed, j1, j2)`` plus a zone-locality factor (intra-zone
  links are faster than inter-zone links);
* per ``(string, application, machine)``: execution time and CPU
  utilization, a pure function of ``(seed, k, i, j)`` — a multiplicative
  jitter around the string's machine-independent nominal values
  (semi-consistent heterogeneity).

Because every value is keyed by *global* ids, materializing a shard-local
:class:`~repro.core.model.SystemModel` for any subset of machines and
strings yields exactly the rows/columns the monolithic model would have:
shard models are consistent restrictions of one well-defined fleet, and
the same ``(scenario, seed)`` pair reproduces it bit-for-bit.

QoS bounds follow the paper's Section-8 formulas, with the network's
average inverse bandwidth replaced by a deterministic *expectation* over
the zone mix (so a string's period and latency bound do not depend on
which machine subset is materialized).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import log
from typing import Sequence

import numpy as np

from ..core.exceptions import ModelError
from ..core.model import AppString, Network, SystemModel
from .parameters import ScenarioParameters

__all__ = [
    "FLEET_BENCH",
    "FLEET_LARGE",
    "FLEET_SCENARIOS",
    "FLEET_SMOKE",
    "FleetScenario",
    "FleetString",
    "FleetWorkload",
    "MONOLITHIC_LIMIT",
    "generate_fleet",
    "get_fleet_scenario",
    "materialize_model",
    "materialize_string",
]

#: Largest machine subset :func:`materialize_model` will densify without
#: ``force=True`` — a guard against accidentally building an ``O(M²)``
#: network at fleet scale.
MONOLITHIC_LIMIT = 256

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

#: Domain separator keeping fleet hash/seed streams disjoint from every
#: other SeedSequence user in the package.
_FLEET_TAG = 0xF1EE7
_TAG_ZONE = 1
_TAG_STRING = 2
_TAG_BANDWIDTH = 3
_TAG_COMP = 4
_TAG_UTIL = 5


def _mix64(h: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer (Steele et al.), vectorized over uint64."""
    h = h ^ (h >> np.uint64(30))
    h = h * np.uint64(0xBF58476D1CE4E5B9)
    h = h ^ (h >> np.uint64(27))
    h = h * np.uint64(0x94D049BB133111EB)
    return h ^ (h >> np.uint64(31))


def _hash_uniform(*keys: int | np.ndarray) -> np.ndarray:
    """Uniform [0, 1) samples as a pure function of integer keys.

    Keys fold sequentially through the SplitMix64 finalizer, so the
    result is order-sensitive and broadcasts over array-valued keys.
    Integer arithmetic wraps modulo 2**64 (numpy unsigned semantics),
    which is exactly the counter-based construction we want: no
    generator state, every cell independent of which other cells are
    ever evaluated.
    """
    h = np.asarray(_GOLDEN)
    with np.errstate(over="ignore"):  # uint64 wraparound is the point
        for key in keys:
            k = np.asarray(key, dtype=np.int64).astype(np.uint64)
            h = _mix64((h + k) * _GOLDEN)
    return (h >> np.uint64(11)).astype(np.float64) * (2.0**-53)


@dataclass(frozen=True)
class FleetScenario:
    """Parameterization of one fleet-scale workload.

    ``base`` supplies the paper's per-string ranges (comp times, CPU
    utilizations, output sizes, worth choices) and the µ ranges for the
    QoS bounds; its own ``n_machines``/``n_strings`` fields are ignored —
    the fleet counts below rule.
    """

    name: str
    description: str
    n_machines: int
    n_strings: int
    #: Number of locality zones; machines split near-evenly across them.
    n_zones: int
    #: Probability a string's transfer affinity spans two zones.
    cross_zone_rate: float
    base: ScenarioParameters = field(
        default_factory=lambda: ScenarioParameters(
            name="fleet-base",
            description="per-string ranges for fleet workloads",
            n_strings=1,
            latency_mu=(4.0, 6.0),
            period_mu=(3.0, 4.5),
        )
    )
    #: Inter-zone bandwidth multiplier (< 1 makes cross-zone links slower).
    inter_zone_factor: float = 0.5
    #: Half-width of the multiplicative per-machine jitter around each
    #: string's nominal execution time / CPU utilization.
    heterogeneity: float = 0.3

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ModelError("n_machines must be >= 1")
        if self.n_strings < 1:
            raise ModelError("n_strings must be >= 1")
        if not (1 <= self.n_zones <= self.n_machines):
            raise ModelError("n_zones must satisfy 1 <= n_zones <= n_machines")
        if not (0.0 <= self.cross_zone_rate <= 1.0):
            raise ModelError("cross_zone_rate must lie in [0, 1]")
        if not (0.0 < self.inter_zone_factor <= 1.0):
            raise ModelError("inter_zone_factor must lie in (0, 1]")
        if not (0.0 <= self.heterogeneity < 1.0):
            raise ModelError("heterogeneity must lie in [0, 1)")

    def scaled(self, **overrides: object) -> "FleetScenario":
        """A copy with selected fields replaced (scaling knobs)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FleetString:
    """Compact machine-independent description of one application string.

    Per-machine execution times and utilizations are *not* stored; they
    are derived on demand from the fleet seed and the global ids (see
    :func:`materialize_string`).  Size is ``O(n_apps)``.
    """

    string_id: int
    n_apps: int
    worth: float
    period: float
    max_latency: float
    #: Nominal (machine-independent) execution times, shape ``(n_apps,)``.
    t_base: np.ndarray
    #: Nominal CPU utilizations, shape ``(n_apps,)``.
    u_base: np.ndarray
    #: Inter-application output sizes, shape ``(n_apps - 1,)``.
    output_sizes: np.ndarray
    #: Zone holding the string's data sources (its transfer affinity).
    home_zone: int
    #: Second zone the string's routes touch; equals ``home_zone`` for
    #: strings whose affinity is purely intra-zone.
    peer_zone: int


@dataclass(frozen=True)
class FleetWorkload:
    """A generated fleet: zone map plus compact per-string descriptions."""

    scenario: FleetScenario
    seed: int
    #: Global machine id -> zone index, shape ``(n_machines,)``.
    zone_of: np.ndarray
    strings: tuple[FleetString, ...]

    @property
    def n_machines(self) -> int:
        return int(self.zone_of.shape[0])

    @property
    def n_strings(self) -> int:
        return len(self.strings)

    def zone_members(self, zone: int) -> np.ndarray:
        """Global machine ids belonging to ``zone`` (ascending)."""
        return np.flatnonzero(self.zone_of == zone)


def _zone_sizes(n_machines: int, n_zones: int) -> list[int]:
    """Deterministic near-even zone sizes (``np.array_split`` convention)."""
    q, r = divmod(n_machines, n_zones)
    return [q + 1] * r + [q] * (n_zones - r)


def _inv_bandwidth_estimate(scenario: FleetScenario) -> float:
    """Expected inverse route bandwidth over the zone mix.

    ``E[1/U(lo, hi)] = ln(hi/lo) / (hi - lo)``, combined across
    intra-zone links and inter-zone links (slower by
    ``inter_zone_factor``) weighted by the exact fraction of ordered
    machine pairs each kind contributes.  Deterministic per scenario —
    QoS bounds derived from it never depend on materialized subsets.
    """
    lo, hi = scenario.base.bandwidth_range
    e_inv = log(hi / lo) / (hi - lo) if hi > lo else 1.0 / lo
    M = scenario.n_machines
    if M < 2:
        return e_inv
    sizes = _zone_sizes(M, scenario.n_zones)
    intra_pairs = sum(s * (s - 1) for s in sizes)
    p_intra = intra_pairs / (M * (M - 1))
    return p_intra * e_inv + (1.0 - p_intra) * e_inv / scenario.inter_zone_factor


def generate_fleet(scenario: FleetScenario, seed: int) -> FleetWorkload:
    """Generate a fleet workload in ``O(n_machines + n_strings + transfers)``.

    Identical ``(scenario, seed)`` pairs produce byte-identical
    workloads, and — because all machine-dependent values hash global
    ids — byte-identical materializations for any machine subset.
    """
    if not (0 <= int(seed) < 2**63):
        raise ModelError("fleet seed must satisfy 0 <= seed < 2**63")
    seed = int(seed)
    scn = scenario
    params = scn.base

    # Zone map: a seeded permutation chunked into near-even zones.
    zone_rng = np.random.default_rng(
        np.random.SeedSequence((seed, _FLEET_TAG, _TAG_ZONE))
    )
    perm = zone_rng.permutation(scn.n_machines)
    zone_of = np.empty(scn.n_machines, dtype=np.int64)
    start = 0
    for zone, size in enumerate(_zone_sizes(scn.n_machines, scn.n_zones)):
        zone_of[perm[start : start + size]] = zone
        start += size
    zone_of.setflags(write=False)

    inv_w_est = _inv_bandwidth_estimate(scn)
    n_lo, n_hi = params.apps_per_string
    t_lo, t_hi = params.comp_time_range
    u_lo, u_hi = params.cpu_util_range
    o_lo, o_hi = params.output_size_range

    strings: list[FleetString] = []
    for k in range(scn.n_strings):
        rng = np.random.default_rng(
            np.random.SeedSequence((seed, _FLEET_TAG, _TAG_STRING, k))
        )
        n_apps = int(rng.integers(n_lo, n_hi + 1))
        t_base = rng.uniform(t_lo, t_hi, size=n_apps)
        u_base = rng.uniform(u_lo, u_hi, size=n_apps)
        output_sizes = rng.uniform(o_lo, o_hi, size=n_apps - 1)
        worth = float(rng.choice(params.worth_choices))
        mu_latency = float(rng.uniform(*params.latency_mu))
        mu_period = float(rng.uniform(*params.period_mu))
        home_zone = int(rng.integers(scn.n_zones))
        peer_zone = home_zone
        if scn.n_zones > 1 and float(rng.uniform()) < scn.cross_zone_rate:
            peer_zone = int(
                (home_zone + 1 + rng.integers(scn.n_zones - 1)) % scn.n_zones
            )

        # Section-8 QoS bounds on the *nominal* path, with the expected
        # inverse bandwidth standing in for the network average so the
        # bounds are machine-subset independent.
        transfer_av = output_sizes * inv_w_est
        max_latency = mu_latency * float(t_base.sum() + transfer_av.sum())
        stage_times = np.concatenate([t_base, transfer_av])
        period = mu_period * float(stage_times.max())

        for arr in (t_base, u_base, output_sizes):
            arr.setflags(write=False)
        strings.append(
            FleetString(
                string_id=k,
                n_apps=n_apps,
                worth=worth,
                period=period,
                max_latency=max_latency,
                t_base=t_base,
                u_base=u_base,
                output_sizes=output_sizes,
                home_zone=home_zone,
                peer_zone=peer_zone,
            )
        )

    return FleetWorkload(
        scenario=scn, seed=seed, zone_of=zone_of, strings=tuple(strings)
    )


def _bandwidth_submatrix(
    workload: FleetWorkload, machine_ids: np.ndarray
) -> np.ndarray:
    """Dense route bandwidths for a machine subset, ``O(m²)`` in the subset.

    Each ordered global pair ``(j1, j2)`` gets an independent uniform
    draw from the scenario's bandwidth range via the counter-based hash,
    scaled by ``inter_zone_factor`` when the endpoints sit in different
    zones.  The diagonal is infinite (paper convention).
    """
    scn = workload.scenario
    lo, hi = scn.base.bandwidth_range
    j1 = machine_ids[:, None]
    j2 = machine_ids[None, :]
    u = _hash_uniform(workload.seed, _FLEET_TAG, _TAG_BANDWIDTH, j1, j2)
    bw = lo + (hi - lo) * u
    zones = workload.zone_of[machine_ids]
    cross = zones[:, None] != zones[None, :]
    bw = np.where(cross, bw * scn.inter_zone_factor, bw)
    np.fill_diagonal(bw, np.inf)
    return bw


def materialize_string(
    workload: FleetWorkload,
    global_string_id: int,
    machine_ids: Sequence[int] | np.ndarray,
    *,
    local_id: int | None = None,
) -> AppString:
    """Densify one string's per-machine tables for a machine subset.

    Execution times and CPU utilizations are the string's nominal values
    under a multiplicative jitter in ``[1 - h, 1 + h]`` hashed from
    ``(seed, string, app, machine)`` global ids — so row ``i`` / machine
    ``j`` is identical no matter which subset (or ordering) of machines
    is materialized alongside it.  ``local_id`` renumbers the string for
    a shard-local :class:`SystemModel` (defaults to the global id).
    """
    scn = workload.scenario
    spec = workload.strings[global_string_id]
    ids = np.asarray(machine_ids, dtype=np.int64)
    h = scn.heterogeneity
    i = np.arange(spec.n_apps, dtype=np.int64)[:, None]
    j = ids[None, :]
    jit_t = 1.0 - h + 2.0 * h * _hash_uniform(
        workload.seed, _FLEET_TAG, _TAG_COMP, spec.string_id, i, j
    )
    jit_u = 1.0 - h + 2.0 * h * _hash_uniform(
        workload.seed, _FLEET_TAG, _TAG_UTIL, spec.string_id, i, j
    )
    comp_times = spec.t_base[:, None] * jit_t
    cpu_utils = np.minimum(1.0, spec.u_base[:, None] * jit_u)
    return AppString(
        string_id=spec.string_id if local_id is None else local_id,
        worth=spec.worth,
        period=spec.period,
        max_latency=spec.max_latency,
        comp_times=comp_times,
        cpu_utils=cpu_utils,
        output_sizes=np.array(spec.output_sizes, copy=True),
    )


def materialize_model(
    workload: FleetWorkload,
    machine_ids: Sequence[int] | np.ndarray,
    string_ids: Sequence[int],
    *,
    force: bool = False,
) -> SystemModel:
    """Build a shard-local :class:`SystemModel` for a fleet subset.

    Strings are renumbered ``0..len(string_ids)-1`` in the given order
    (the caller keeps the global-id mapping); machines map to local
    column ``p`` for ``machine_ids[p]``.  Refuses subsets larger than
    :data:`MONOLITHIC_LIMIT` machines unless ``force=True`` — the dense
    network is ``O(m²)`` and fleet-scale solves should shard instead.
    """
    ids = np.asarray(machine_ids, dtype=np.int64)
    if ids.ndim != 1 or ids.size < 1:
        raise ModelError("machine_ids must be a non-empty 1-D sequence")
    if ids.size > MONOLITHIC_LIMIT and not force:
        raise ModelError(
            f"materializing {ids.size} machines exceeds MONOLITHIC_LIMIT="
            f"{MONOLITHIC_LIMIT}; shard the fleet (or pass force=True)"
        )
    if len(set(ids.tolist())) != ids.size:
        raise ModelError("machine_ids must be distinct")
    if ids.min() < 0 or ids.max() >= workload.n_machines:
        raise ModelError("machine_ids out of range for this fleet")

    network = Network(_bandwidth_submatrix(workload, ids))
    return SystemModel(network, _materialize_strings(workload, ids, string_ids))


#: Strings per batched jitter tensor — bounds the ``(chunk, n_apps, m)``
#: temporaries to a few MB even for forced monolithic materializations.
_BATCH_CHUNK = 1024


def _materialize_strings(
    workload: FleetWorkload,
    machine_ids: np.ndarray,
    string_ids: Sequence[int],
) -> list[AppString]:
    """Batched :func:`materialize_string` for a whole string subset.

    Hashes every ``(string, app, machine)`` jitter in one broadcast per
    chunk instead of two hash calls per string — bit-identical to the
    per-string path (the counter-based hash is elementwise), just
    amortizing the numpy call overhead across the subset.
    """
    scn = workload.scenario
    h = scn.heterogeneity
    out: list[AppString] = []
    for start in range(0, len(string_ids), _BATCH_CHUNK):
        chunk = string_ids[start : start + _BATCH_CHUNK]
        specs = [workload.strings[gid] for gid in chunk]
        max_n = max(s.n_apps for s in specs)
        k = np.asarray([s.string_id for s in specs], dtype=np.int64)
        i = np.arange(max_n, dtype=np.int64)
        jit_t = 1.0 - h + 2.0 * h * _hash_uniform(
            workload.seed,
            _FLEET_TAG,
            _TAG_COMP,
            k[:, None, None],
            i[None, :, None],
            machine_ids[None, None, :],
        )
        jit_u = 1.0 - h + 2.0 * h * _hash_uniform(
            workload.seed,
            _FLEET_TAG,
            _TAG_UTIL,
            k[:, None, None],
            i[None, :, None],
            machine_ids[None, None, :],
        )
        for p, spec in enumerate(specs):
            n = spec.n_apps
            ct = spec.t_base[:, None] * jit_t[p, :n, :]
            cu = np.minimum(1.0, spec.u_base[:, None] * jit_u[p, :n, :])
            ct.setflags(write=False)
            cu.setflags(write=False)
            # _attach adopts the (freshly built, canonical float64)
            # arrays without re-validation; output_sizes is the spec's
            # own read-only array, shared across materializations.
            out.append(
                AppString._attach(
                    start + p,
                    spec.worth,
                    spec.period,
                    spec.max_latency,
                    ct,
                    cu,
                    spec.output_sizes,
                )
            )
    return out


#: CI/test-sized fleet: small enough to materialize monolithically.
FLEET_SMOKE = FleetScenario(
    name="fleet-smoke",
    description="24 machines in 6 zones, 96 strings — CI smoke scale.",
    n_machines=24,
    n_strings=96,
    n_zones=6,
    cross_zone_rate=0.25,
)

#: The 10²-machine benchmark scenario (BENCH_fleet K-sweep).  Strings
#: are lightweight sensor/processing chains (CPU demand well below one
#: machine) so fleet capacity, not single-string feasibility, is the
#: binding constraint — the regime where sharding is the right call.
FLEET_BENCH = FleetScenario(
    name="fleet-bench",
    description="100 machines in 16 zones, 2000 strings — BENCH_fleet scale.",
    n_machines=100,
    n_strings=2000,
    n_zones=16,
    cross_zone_rate=0.2,
    base=ScenarioParameters(
        name="fleet-bench-base",
        description="lightweight per-string ranges for the fleet bench",
        n_strings=1,
        cpu_util_range=(0.035, 0.35),
        latency_mu=(4.0, 6.0),
        period_mu=(3.0, 4.5),
    ),
)

#: North-star scale: generation stays O(strings); never densify whole.
FLEET_LARGE = FleetScenario(
    name="fleet-large",
    description="1000 machines in 64 zones, 10000 strings — generation-scale.",
    n_machines=1000,
    n_strings=10_000,
    n_zones=64,
    cross_zone_rate=0.1,
)

FLEET_SCENARIOS: dict[str, FleetScenario] = {
    s.name: s for s in (FLEET_SMOKE, FLEET_BENCH, FLEET_LARGE)
}


def get_fleet_scenario(name: str) -> FleetScenario:
    """Look up a fleet scenario by name ('fleet-smoke' | 'fleet-bench' | ...)."""
    try:
        return FLEET_SCENARIOS[name]
    except KeyError:
        raise ModelError(
            f"unknown fleet scenario {name!r}; choose from {sorted(FLEET_SCENARIOS)}"
        ) from None
