"""Domain-aware static analysis for the reproduction codebase.

This subpackage is tooling *about* the library rather than part of the
paper's math: an AST-based lint engine whose rules (RPR001-RPR008)
enforce the invariants the feasibility analysis and the DES validation
depend on — epsilon-safe float comparison, injected seeded randomness,
frozen model objects, fully-typed public math APIs, loud failures,
audited package surfaces, bounded waits, and monotonic duration
measurement.  See ``docs/quality.md`` for the rule catalog and
rationale.

Use it from the command line (``repro lint src/repro``) or as a library::

    from repro.quality import lint_paths
    report = lint_paths(["src/repro"])
    assert report.ok, [f.render() for f in report.findings]
"""

from .baseline import Baseline, BaselineError
from .engine import (
    LintEngine,
    LintReport,
    iter_python_files,
    lint_paths,
    lint_source,
    module_name_for,
)
from .findings import Finding, Severity
from .rules import ALL_RULE_IDS, RULES, Rule, RuleContext, register

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "BaselineError",
    "Finding",
    "LintEngine",
    "LintReport",
    "RULES",
    "Rule",
    "RuleContext",
    "Severity",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register",
]
