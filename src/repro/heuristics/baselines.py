"""Baseline orderings for comparison and ablation.

The paper compares only its four heuristics against the LP bound; for
ablation studies this module adds natural reference points:

* :func:`random_order_once` — a single uniformly random ordering fed to
  the IMR projection: the "no intelligence in the permutation space"
  floor, also the distribution PSG's initial population is drawn from.
* :func:`best_random_order` — best of N random orderings: a
  random-search control for PSG (same projection, no evolution).
* :func:`least_worth_first` — worth ascending: the adversarial ordering,
  bounding how much the permutation matters.
* :func:`skip_ahead` — MWF ordering but *skipping* infeasible strings
  instead of terminating: quantifies what the paper's stop-at-first-
  failure rule costs.
"""

from __future__ import annotations

import numpy as np

from ..core.model import SystemModel
from .base import HeuristicResult, timed_section
from .mwf import mwf_order
from .ordering import allocate_sequence

__all__ = [
    "random_order_once",
    "best_random_order",
    "least_worth_first",
    "skip_ahead",
]


def _sequence_result(
    name: str, model: SystemModel, order: tuple[int, ...],
    stop_on_failure: bool = True,
) -> HeuristicResult:
    with timed_section() as elapsed:
        outcome = allocate_sequence(model, order, stop_on_failure=stop_on_failure)
    return HeuristicResult(
        name=name,
        allocation=outcome.state.as_allocation(),
        fitness=outcome.fitness(),
        order=order,
        mapped_ids=outcome.mapped_ids,
        runtime_seconds=elapsed[0],
        stats={"failed_id": outcome.failed_id, "complete": outcome.complete},
    )


def random_order_once(
    model: SystemModel, rng: np.random.Generator | int | None = None
) -> HeuristicResult:
    """IMR projection of one uniformly random string ordering."""
    rng = np.random.default_rng(rng)
    order = tuple(int(k) for k in rng.permutation(model.n_strings))
    return _sequence_result("random-order", model, order)


def best_random_order(
    model: SystemModel,
    n_orders: int = 100,
    rng: np.random.Generator | int | None = None,
) -> HeuristicResult:
    """Best of ``n_orders`` random orderings (random-search control)."""
    if n_orders < 1:
        raise ValueError("n_orders must be >= 1")
    rng = np.random.default_rng(rng)
    with timed_section() as elapsed:
        best: HeuristicResult | None = None
        for _ in range(n_orders):
            res = random_order_once(model, rng)
            if best is None or res.fitness > best.fitness:
                best = res
    assert best is not None
    best.stats["n_orders"] = n_orders
    return HeuristicResult(
        name="best-random",
        allocation=best.allocation,
        fitness=best.fitness,
        order=best.order,
        mapped_ids=best.mapped_ids,
        runtime_seconds=elapsed[0],
        stats=best.stats,
    )


def least_worth_first(model: SystemModel) -> HeuristicResult:
    """Worth-ascending ordering — the adversarial counterpart of MWF."""
    order = tuple(reversed(mwf_order(model)))
    return _sequence_result("least-worth-first", model, order)


def skip_ahead(model: SystemModel) -> HeuristicResult:
    """MWF ordering, but skip infeasible strings instead of stopping.

    Not one of the paper's heuristics: it isolates the cost of the
    stop-at-first-failure rule that MWF/TF/PSG all share.
    """
    order = mwf_order(model)
    return _sequence_result("skip-ahead", model, order, stop_on_failure=False)
