"""Unit tests for the performance goal (repro.core.metrics, eq. 7)."""

import numpy as np
import pytest

from repro.core import (
    Allocation,
    Fitness,
    UtilizationSnapshot,
    evaluate,
    system_slackness,
)


class TestSlackness:
    def test_empty_system(self):
        snap = UtilizationSnapshot(
            machine=np.zeros(3), route=np.zeros((3, 3))
        )
        assert system_slackness(snap) == 1.0

    def test_machine_binds(self):
        snap = UtilizationSnapshot(
            machine=np.array([0.2, 0.7]), route=np.zeros((2, 2))
        )
        assert system_slackness(snap) == pytest.approx(0.3)

    def test_route_binds(self):
        route = np.zeros((2, 2))
        route[1, 0] = 0.9
        snap = UtilizationSnapshot(
            machine=np.array([0.2, 0.1]), route=route
        )
        assert system_slackness(snap) == pytest.approx(0.1)

    def test_intra_machine_routes_ignored(self):
        route = np.zeros((2, 2))
        np.fill_diagonal(route, 5.0)  # nonsense values on the diagonal
        snap = UtilizationSnapshot(
            machine=np.array([0.5, 0.5]), route=route
        )
        assert system_slackness(snap) == pytest.approx(0.5)

    def test_negative_when_overloaded(self):
        snap = UtilizationSnapshot(
            machine=np.array([1.4]), route=np.zeros((1, 1))
        )
        assert system_slackness(snap) == pytest.approx(-0.4)

    def test_on_real_allocation(self, small_allocation):
        slack = system_slackness(UtilizationSnapshot.of(small_allocation))
        assert 0.0 < slack < 1.0


class TestFitness:
    def test_worth_dominates(self):
        assert Fitness(10, 0.0) > Fitness(9, 0.99)

    def test_slackness_breaks_ties(self):
        assert Fitness(10, 0.5) > Fitness(10, 0.4)

    def test_equality(self):
        assert Fitness(10, 0.5) == Fitness(10, 0.5)

    def test_total_ordering(self):
        values = [
            Fitness(1, 0.9), Fitness(5, 0.1), Fitness(5, 0.2), Fitness(0, 1.0)
        ]
        ordered = sorted(values)
        assert ordered == [
            Fitness(0, 1.0), Fitness(1, 0.9), Fitness(5, 0.1), Fitness(5, 0.2)
        ]

    def test_as_tuple(self):
        assert Fitness(3, 0.25).as_tuple() == (3, 0.25)

    def test_str(self):
        assert "worth=3" in str(Fitness(3, 0.25))


class TestEvaluate:
    def test_matches_components(self, small_allocation):
        fit = evaluate(small_allocation)
        assert fit.worth == small_allocation.total_worth()
        snap = UtilizationSnapshot.of(small_allocation)
        assert fit.slackness == pytest.approx(system_slackness(snap))

    def test_empty_allocation(self, small_model):
        fit = evaluate(Allocation.empty(small_model))
        assert fit == Fitness(0.0, 1.0)
