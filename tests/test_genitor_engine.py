"""Unit tests for the GENITOR engine (repro.genitor.engine) on synthetic
fitness landscapes (no allocation machinery involved)."""

import numpy as np
import pytest

from repro.core import Fitness
from repro.genitor import GenitorConfig, GenitorEngine, StoppingRules


def sortedness_fitness(chromosome):
    """Counts adjacent ascending pairs — optimum is the identity."""
    score = sum(
        1.0 for a, b in zip(chromosome, chromosome[1:]) if a < b
    )
    return Fitness(worth=score, slackness=0.0)


def constant_fitness(_chromosome):
    return Fitness(worth=1.0, slackness=0.5)


def make_engine(fitness_fn=sortedness_fitness, n_genes=8, pop=12,
                max_iter=400, stale=150, seed=0, seeds=()):
    config = GenitorConfig(
        population_size=pop,
        bias=1.6,
        rules=StoppingRules(
            max_iterations=max_iter, max_stale_iterations=stale
        ),
    )
    return GenitorEngine(
        genes=range(n_genes),
        fitness_fn=fitness_fn,
        config=config,
        rng=np.random.default_rng(seed),
        seeds=seeds,
    )


class TestInitialization:
    def test_population_size(self):
        engine = make_engine(pop=10)
        assert len(engine.population) == 10

    def test_all_chromosomes_are_permutations(self):
        engine = make_engine(n_genes=6)
        for ind in engine.population:
            assert sorted(ind.chromosome) == list(range(6))

    def test_seeds_included(self):
        seed_perm = tuple(range(8))
        engine = make_engine(seeds=(seed_perm,))
        assert any(
            ind.chromosome == seed_perm for ind in engine.population
        )

    def test_invalid_seed_rejected(self):
        with pytest.raises(ValueError):
            make_engine(seeds=((0, 0, 1, 2, 3, 4, 5, 6),))

    def test_too_many_seeds_rejected(self):
        seeds = tuple(
            tuple(np.random.default_rng(i).permutation(8).tolist())
            for i in range(20)
        )
        with pytest.raises(ValueError):
            make_engine(pop=4, seeds=seeds)


class TestRun:
    def test_finds_good_solutions(self):
        engine = make_engine(max_iter=800, stale=800)
        best = engine.run()
        # optimum worth is 7; the GA should get close on a tiny landscape
        assert best.fitness.worth >= 5.0

    def test_monotone_improvement_trace(self):
        engine = make_engine()
        engine.run()
        fits = [f for _it, f in engine.stats.improvement_trace]
        assert all(b > a for a, b in zip(fits, fits[1:]))

    def test_elite_never_degrades(self):
        engine = make_engine(max_iter=50, stale=50)
        initial_best = engine.population.best.fitness
        best = engine.run()
        assert best.fitness >= initial_best

    def test_deterministic_given_seed(self):
        a = make_engine(seed=5).run()
        b = make_engine(seed=5).run()
        assert a.chromosome == b.chromosome
        assert a.fitness == b.fitness

    def test_different_seeds_explore_differently(self):
        a = make_engine(seed=1, max_iter=30, stale=30)
        b = make_engine(seed=2, max_iter=30, stale=30)
        a.run(); b.run()
        assert (
            a.population.best.chromosome != b.population.best.chromosome
            or a.stats.evaluations != b.stats.evaluations
        )


class TestStopping:
    def test_max_iterations(self):
        engine = make_engine(max_iter=25, stale=10_000)
        engine.run()
        assert engine.stats.stop_reason == "max-iterations"
        assert engine.stats.iterations == 25

    def test_stale_elite(self):
        engine = make_engine(fitness_fn=constant_fitness, max_iter=10_000,
                             stale=30)
        engine.run()
        assert engine.stats.stop_reason == "stale-elite"
        assert engine.stats.iterations <= 40

    def test_convergence_stop(self):
        # 2 genes -> only two permutations; population converges fast
        # under constant fitness... constant fitness never inserts, so use
        # sortedness: (0,1) dominates and fills the population.
        engine = make_engine(n_genes=2, pop=4, max_iter=10_000, stale=10_000)
        engine.run()
        assert engine.stats.stop_reason in ("converged", "stale-elite")


class TestStats:
    def test_cache_hits_counted(self):
        engine = make_engine(n_genes=3, pop=6, max_iter=100, stale=100)
        engine.run()
        # only 6 permutations of 3 genes exist; re-evaluations must hit cache
        assert engine.stats.cache_hits > 0
        assert engine.stats.evaluations <= 6

    def test_insertions_bounded_by_considered(self):
        engine = make_engine(max_iter=60, stale=60)
        engine.run()
        assert 0 <= engine.stats.insertions <= 3 * engine.stats.iterations


class TestStoppingRulesValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(max_iterations=0),
        dict(max_stale_iterations=0),
        dict(check_convergence_every=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StoppingRules(**kwargs)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GenitorConfig(population_size=1)
        with pytest.raises(ValueError):
            GenitorConfig(bias=2.5)
