"""Kill-at-any-point recovery soak behind ``repro recover``.

The durability contract of :mod:`repro.service.durable` is only worth
what its worst crash point is worth, so this soak SIGKILLs a journaled
controller subprocess at *fuzzed* event indices across every phase of
the commit-before-apply protocol —

* ``pre-commit``  — before the event frame is appended (event lost:
  it was never durable, and that is the documented contract);
* ``torn-commit`` — mid-append, after ~half the frame's bytes hit the
  file (a provably torn tail the recovery scan must truncate);
* ``post-commit`` — after the event frame is durable but before the
  apply (recovery must re-serve the event deterministically);
* ``pre-outcome`` — after the apply but before the outcome record
  (same recovery obligation as ``post-commit``);
* ``post-apply``  — after the outcome record (pure state-only replay);

— then recovers in-process and asserts the recovered
``allocation_snapshot()`` / cumulative worth / health state is
**bit-identical** to an uninterrupted reference run at the recovered
event count, that the journal conservation counter
``applied == (committed + truncated_uncommitted) - truncated_uncommitted``
holds, and that finishing the remaining events lands on the exact
reference final state.  A separate chaos round replays the full stream
under a seeded :class:`~repro.service.diskchaos.DiskChaosPolicy`
(torn/fsync/ENOSPC/duplicate injection) and proves the faults actually
fired by recomputing the expected schedule from the policy — zero
committed events may be lost either way.

Determinism: the controller runs under a fake tick clock with a budget
the solve can never exhaust, and the GA tier is capped by iterations
rather than wall time, so every run — reference, killed child,
recovery, continuation — is a pure function of ``(seed, events)``.

Imports of :mod:`repro.service` are function-scope throughout:
``experiments`` (layer 5) sits below ``service`` (layer 6) in the
import-layer map (RPR011), and lazy imports are the sanctioned
mechanism for this upward reference (the CLI does the same).
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..core.exceptions import ModelError
from .checkpoint import fingerprint_payload

if TYPE_CHECKING:  # pragma: no cover - layering: lazy runtime imports
    from ..service.durable import DurableMissionController
    from ..service.journal import JournalHooks

__all__ = [
    "KILL_PHASES",
    "KillRound",
    "RecoveryConfig",
    "RecoverySoakReport",
    "TickClock",
    "run_recovery_child",
    "run_recovery_soak",
]

#: crash phases, cycled over the kill rounds so every protocol edge is
#: exercised once the round count reaches ``len(KILL_PHASES)``
KILL_PHASES = (
    "pre-commit",
    "torn-commit",
    "post-commit",
    "pre-outcome",
    "post-apply",
)

_CONFIG_FILE = "recover-config.json"


class TickClock:
    """Deterministic monotonic clock: each call advances a fixed tick.

    Makes the controller a pure function of ``(seed, events)`` — wall
    time never enters a decision because the per-request budget is set
    far above anything ``n_events`` ticks can consume.
    """

    def __init__(self, tick: float = 1e-4) -> None:
        self._tick = tick
        self._now = 0.0

    def __call__(self) -> float:
        self._now += self._tick
        return self._now


@dataclass(frozen=True)
class RecoveryConfig:
    """Full parameterization of one recovery soak (fingerprinted)."""

    scenario: str = "scenario1"
    n_services: int = 6
    n_machines: int = 4
    n_events: int = 10
    seed: int = 29
    initial_active: int = 3
    #: SIGKILL rounds; phases cycle through :data:`KILL_PHASES`
    kills: int = 5
    #: per-request budget in *fake* clock seconds — must be
    #: unreachable so deadlines never bind (determinism)
    budget: float = 60.0
    #: storage-fault rates for the chaos round (0 = no chaos round)
    torn_rate: float = 0.0
    fsync_rate: float = 0.0
    enospc_rate: float = 0.0
    duplicate_rate: float = 0.0
    #: small GA caps: iteration-bounded, so the psg tier is exercised
    #: without wall-clock dependence
    ga_population: int = 12
    ga_max_iterations: int = 40
    ga_max_stale: int = 15

    def __post_init__(self) -> None:
        if self.n_services < 1 or self.n_machines < 2:
            raise ModelError("need >= 1 service and >= 2 machines")
        if self.n_events < 1:
            raise ModelError("n_events must be >= 1")
        if not 0 <= self.initial_active <= self.n_services:
            raise ModelError("initial_active must lie in [0, n_services]")
        if self.kills < 0:
            raise ModelError("kills must be >= 0")
        if self.budget <= 0:
            raise ModelError("budget must be positive")
        for name in (
            "torn_rate",
            "fsync_rate",
            "enospc_rate",
            "duplicate_rate",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ModelError(f"{name} must lie in [0, 1]")

    def fingerprint(self) -> str:
        return fingerprint_payload(
            {
                "schema": "repro/recovery-soak-v1",
                **dataclasses.asdict(self),
            }
        )

    @property
    def has_chaos(self) -> bool:
        return (
            self.torn_rate > 0
            or self.fsync_rate > 0
            or self.enospc_rate > 0
            or self.duplicate_rate > 0
        )


@dataclass
class KillRound:
    """One SIGKILL-then-recover round."""

    phase: str
    kill_seq: int
    child_returncode: int
    applied: int
    committed: int
    reapplied: int
    truncated_uncommitted: int
    conserved: bool
    #: recovered state bit-identical to the reference prefix
    identical_at_recovery: bool
    #: state after finishing the remaining events equals the
    #: uninterrupted reference final state
    identical_at_end: bool

    @property
    def ok(self) -> bool:
        return (
            self.child_returncode == -signal.SIGKILL
            and self.conserved
            and self.identical_at_recovery
            and self.identical_at_end
        )


@dataclass
class RecoverySoakReport:
    """Aggregated kill-at-any-point soak results."""

    config: RecoveryConfig
    reference_worth: float
    rounds: list[KillRound] = field(default_factory=list)
    chaos_expected: dict[str, int] = field(default_factory=dict)
    chaos_observed: dict[str, int] = field(default_factory=dict)
    chaos_identical: bool = True
    chaos_conserved: bool = True

    @property
    def chaos_fired(self) -> bool:
        """Every expected storage fault was actually injected."""
        return all(
            self.chaos_observed.get(f"injected_{kind}", 0) == count
            for kind, count in self.chaos_expected.items()
        )

    @property
    def torn_tail_exercised(self) -> bool:
        """At least one round left (and truncated) a torn tail."""
        return any(
            r.phase == "torn-commit" and r.truncated_uncommitted >= 1
            for r in self.rounds
        )

    @property
    def ok(self) -> bool:
        kills_ok = all(r.ok for r in self.rounds)
        torn_ok = self.torn_tail_exercised or not any(
            r.phase == "torn-commit" for r in self.rounds
        )
        chaos_ok = (
            self.chaos_identical
            and self.chaos_conserved
            and (self.chaos_fired or not self.config.has_chaos)
        )
        return kills_ok and torn_ok and chaos_ok

    def summary(self) -> str:
        lines = [
            f"recovery soak seed={self.config.seed}: "
            f"{self.config.n_events} events, {len(self.rounds)} kill "
            f"rounds, reference worth {self.reference_worth:g}",
        ]
        for r in self.rounds:
            lines.append(
                f"  [{'ok' if r.ok else 'FAIL'}] {r.phase:<12} "
                f"kill@{r.kill_seq}: applied={r.applied} "
                f"committed={r.committed} reapplied={r.reapplied} "
                f"torn={r.truncated_uncommitted} "
                f"recover={'=' if r.identical_at_recovery else '!='} "
                f"final={'=' if r.identical_at_end else '!='}"
            )
        if self.config.has_chaos:
            lines.append(
                f"  [{'ok' if self.chaos_fired else 'FAIL'}] chaos: "
                f"expected {self.chaos_expected} observed "
                + str(
                    {
                        k: v
                        for k, v in self.chaos_observed.items()
                        if k.startswith("injected_")
                    }
                )
                + f" identical={self.chaos_identical} "
                f"conserved={self.chaos_conserved}"
            )
        lines.append(
            "  zero committed events lost; bit-identical recovery"
            if self.ok
            else "  FAILURE: durability contract violated"
        )
        return "\n".join(lines)


# -- controller construction (lazy service imports) ------------------------


def _build_scene(config: RecoveryConfig) -> tuple[Any, list[int], tuple]:
    """(catalog, initial services, event stream) for one soak."""
    from ..service.events import generate_scenario
    from ..service.soak import SoakConfig, build_catalog, initial_services

    soak = SoakConfig(
        scenario=config.scenario,
        n_services=config.n_services,
        n_machines=config.n_machines,
        n_events=config.n_events,
        seed=config.seed,
        initial_active=config.initial_active,
    )
    catalog = build_catalog(soak)
    initial = initial_services(soak, catalog)
    events = generate_scenario(
        catalog, config.n_events, rng=config.seed + 1, config=soak.events
    )
    return catalog, initial, events


def _chaos_policy(config: RecoveryConfig) -> Any:
    from ..service.diskchaos import DiskChaosPolicy

    return DiskChaosPolicy(
        torn_rate=config.torn_rate,
        fsync_rate=config.fsync_rate,
        enospc_rate=config.enospc_rate,
        duplicate_rate=config.duplicate_rate,
        seed=config.seed,
    )


def _make_controller(
    config: RecoveryConfig,
    journal_dir: Path,
    *,
    hooks: "JournalHooks | None" = None,
    with_chaos: bool = False,
) -> "DurableMissionController":
    from ..service.cascade import CascadeConfig
    from ..service.controller import ServiceConfig
    from ..service.durable import DurableMissionController

    catalog, initial, _ = _build_scene(config)
    service_config = ServiceConfig(
        default_budget=config.budget,
        cascade=CascadeConfig(
            ga_population=config.ga_population,
            ga_max_iterations=config.ga_max_iterations,
            ga_max_stale=config.ga_max_stale,
        ),
    )
    return DurableMissionController(
        catalog,
        service_config,
        rng=config.seed + 2,
        clock=TickClock(),
        sleep=lambda _: None,
        journal_dir=journal_dir,
        initial_active=initial,
        fingerprint=config.fingerprint(),
        chaos=_chaos_policy(config) if with_chaos else None,
        hooks=hooks,
    )


def _state_triple(
    controller: "DurableMissionController",
) -> tuple[dict[int, tuple[int, ...]], float, dict[str, Any]]:
    return (
        controller.allocation_snapshot(),
        controller.total_worth,
        controller.monitor.export_state(),
    )


def _kill_hooks(phase: str, kill_seq: int) -> "JournalHooks":
    """Hooks that SIGKILL this process at one protocol crash point."""
    from ..service.journal import JournalHooks

    def die_on(record_type: str) -> Callable[[Any], None]:
        def hook(record: Any) -> None:
            if (
                record.get("type") == record_type
                and record.get("seq") == kill_seq
            ):
                os.kill(os.getpid(), signal.SIGKILL)

        return hook

    if phase == "pre-commit":
        return JournalHooks(before_append=die_on("event"))
    if phase == "torn-commit":
        return JournalHooks(mid_append=die_on("event"))
    if phase == "post-commit":
        return JournalHooks(after_append=die_on("event"))
    if phase == "pre-outcome":
        return JournalHooks(before_append=die_on("outcome"))
    if phase == "post-apply":
        return JournalHooks(after_append=die_on("outcome"))
    raise ModelError(f"unknown kill phase {phase!r}")


def _expected_after_kill(phase: str, kill_seq: int) -> tuple[int, int]:
    """(committed, reapplied) the recovery must report for a kill."""
    if phase in ("pre-commit", "torn-commit"):
        return kill_seq - 1, 0
    if phase in ("post-commit", "pre-outcome"):
        return kill_seq, 1
    if phase == "post-apply":
        return kill_seq, 0
    raise ModelError(f"unknown kill phase {phase!r}")


# -- child process ---------------------------------------------------------


def run_recovery_child(
    config_path: str | Path,
    journal_dir: str | Path,
    phase: str,
    kill_seq: int,
) -> int:
    """Child-process body behind ``repro recover --child``.

    Replays the configured event stream into a journaled controller,
    SIGKILLing itself at the configured crash point (``phase`` in
    :data:`KILL_PHASES`) — or, with ``phase == "chaos"``, running to
    completion under the storage-fault policy and printing its journal
    stats as JSON for the parent to audit.
    """
    data = json.loads(Path(config_path).read_text())
    config = RecoveryConfig(**data)
    _, _, events = _build_scene(config)
    if phase == "chaos":
        controller = _make_controller(
            config, Path(journal_dir), with_chaos=True
        )
        controller.run(list(events))
        controller.close()
        print(
            json.dumps(
                {"applied": controller.applied, "stats": controller.stats}
            )
        )
        return 0
    controller = _make_controller(
        config, Path(journal_dir), hooks=_kill_hooks(phase, kill_seq)
    )
    controller.run(list(events))
    # a kill phase must never complete the stream
    raise ModelError(
        f"kill phase {phase!r} at seq {kill_seq} never fired"
    )


def _spawn_child(
    workdir: Path, journal_dir: Path, phase: str, kill_seq: int
) -> subprocess.CompletedProcess[str]:
    """Run one ``repro recover --child`` subprocess (importable repro)."""
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(src_root), env.get("PYTHONPATH", ""))
        if p
    )
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "recover",
            "--child",
            "--config",
            str(workdir / _CONFIG_FILE),
            "--journal",
            str(journal_dir),
            "--phase",
            phase,
            "--kill-seq",
            str(kill_seq),
        ],
        env=env,
        capture_output=True,
        text=True,
    )


# -- the soak --------------------------------------------------------------


def run_recovery_soak(
    config: RecoveryConfig,
    workdir: str | Path,
    progress: Callable[[str], None] | None = None,
) -> RecoverySoakReport:
    """Run the kill-at-any-point recovery soak; return the report.

    ``workdir`` holds one journal directory per round plus the config
    document the child subprocesses read.  The caller owns cleanup.
    """
    from ..io_utils.atomic import atomic_write_text

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        workdir / _CONFIG_FILE,
        json.dumps(dataclasses.asdict(config), sort_keys=True),
    )
    _, _, events = _build_scene(config)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    # uninterrupted reference: state triple after every prefix
    note("reference run")
    reference = _make_controller(config, workdir / "reference")
    prefixes = [_state_triple(reference)]
    for event in events:
        reference.handle(event)
        prefixes.append(_state_triple(reference))
    reference.close()
    report = RecoverySoakReport(
        config=config, reference_worth=reference.total_worth
    )

    for k in range(config.kills):
        phase = KILL_PHASES[k % len(KILL_PHASES)]
        rng = np.random.default_rng((config.seed, 777, k))
        kill_seq = 1 + int(rng.integers(config.n_events))
        journal_dir = workdir / f"round{k}-{phase}"
        note(f"round {k}: SIGKILL at {phase} of event {kill_seq}")
        proc = _spawn_child(workdir, journal_dir, phase, kill_seq)

        recovered = _make_controller(config, journal_dir)
        rec = recovered.recovery
        expected_committed, expected_reapplied = _expected_after_kill(
            phase, kill_seq
        )
        identical_at_recovery = (
            rec.committed == expected_committed
            and rec.reapplied == expected_reapplied
            and rec.applied == rec.committed
            and _state_triple(recovered) == prefixes[rec.applied]
        )
        # finish the mission from the recovered state
        recovered.run(list(events[rec.applied :]))
        identical_at_end = _state_triple(recovered) == prefixes[-1]
        recovered.close()
        report.rounds.append(
            KillRound(
                phase=phase,
                kill_seq=kill_seq,
                child_returncode=proc.returncode,
                applied=rec.applied,
                committed=rec.committed,
                reapplied=rec.reapplied,
                truncated_uncommitted=rec.truncated_uncommitted,
                conserved=rec.conserved,
                identical_at_recovery=identical_at_recovery,
                identical_at_end=identical_at_end,
            )
        )

    if config.has_chaos:
        note("chaos round (no kill): storage faults must be absorbed")
        journal_dir = workdir / "chaos"
        proc = _spawn_child(workdir, journal_dir, "chaos", 0)
        policy = _chaos_policy(config)
        # two appends per event (event + outcome), all first attempts
        report.chaos_expected = {
            kind: count
            for kind, count in policy.expected_faults(
                2 * config.n_events
            ).items()
            if count
        }
        if proc.returncode == 0 and proc.stdout.strip():
            payload = json.loads(proc.stdout.strip().splitlines()[-1])
            report.chaos_observed = dict(payload["stats"])
        recovered = _make_controller(config, journal_dir)
        report.chaos_conserved = (
            recovered.recovery.conserved
            and recovered.recovery.applied == config.n_events
        )
        report.chaos_identical = (
            _state_triple(recovered) == prefixes[-1]
        )
        recovered.close()

    return report
