"""Multi-run experiment engine (Sections 6 and 8).

The paper evaluates each heuristic on 100 independently sampled
workloads per scenario and reports the mean (with 95% confidence
intervals) of total worth (scenarios 1–2) or system slackness
(scenario 3), next to the LP upper bound.  For the evolutionary
heuristics, each run reports the best of four independent trials.

:func:`run_experiment` reproduces that protocol at a configurable scale:
the paper's exact sizes (100 runs, population 250, 5 000 iterations,
4 trials) take hours in pure Python, so :class:`ExperimentScale`
provides documented presets — ``smoke`` (seconds, used by the benchmark
suite), ``default`` (minutes), and ``paper`` (the full protocol).  Every
random quantity derives from ``base_seed + run_index``, so any scale is
exactly reproducible and heuristics are compared *paired* on identical
workload instances.

The engine is crash-safe for multi-hour runs:

* parallel collection runs on a :class:`~repro.parallel.SupervisedPool`
  — worker deaths and pool collapses are retried and, when exhausted,
  the run is replayed deterministically in-process, so a crashed worker
  costs a retry rather than the run; a run whose own code raises
  becomes a :class:`RunFailure` record instead of discarding the
  finished runs;
* an optional per-run timeout (POSIX ``SIGALRM``) turns a hung run
  into a recorded failure;
* an optional JSON checkpoint (:mod:`repro.experiments.checkpoint`)
  persists every completed run, so a killed experiment resumes from
  its last completed record instead of starting over.
"""

from __future__ import annotations

import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from ..analysis.stats import ConfidenceInterval, mean_ci
from ..core.exceptions import ModelError
from ..core.numeric import isclose
from ..core.profile import ProfileCache
from ..genitor import GenitorConfig, StoppingRules
from ..heuristics import GA_HEURISTICS, best_of_trials, get_heuristic
from ..lp import upper_bound
from ..parallel import ChaosPolicy, SupervisedPool, Task, TaskOutcome
from ..workload import ScenarioParameters, generate_model
from .checkpoint import ExperimentCheckpoint

__all__ = [
    "ExperimentScale",
    "SCALES",
    "ExperimentConfig",
    "RunRecord",
    "RunFailure",
    "RunTimeoutError",
    "ExperimentOutcome",
    "run_experiment",
]



@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for wall-clock time.

    ``size_factor`` shrinks the *hardware and workload together* —
    machines and strings scale proportionally, so a reduced instance
    keeps the paper's load character (scenario 1 still saturates
    capacity, scenario 3 still allocates completely).  GA parameters
    apply to PSG/Seeded PSG only.
    """

    name: str
    n_runs: int
    size_factor: float
    population_size: int
    max_iterations: int
    max_stale_iterations: int
    n_trials: int

    def __post_init__(self) -> None:
        if not 0 < self.size_factor <= 1:
            raise ModelError(
                f"size_factor must be in (0, 1], got {self.size_factor}"
            )
        if self.n_runs < 1:
            raise ModelError("n_runs must be >= 1")

    def apply(self, scenario: ScenarioParameters) -> ScenarioParameters:
        """Scenario with machines and strings scaled by ``size_factor``."""
        if isclose(self.size_factor, 1.0):
            return scenario
        n_machines = max(2, round(scenario.n_machines * self.size_factor))
        n_strings = max(2, round(scenario.n_strings * self.size_factor))
        return scenario.scaled(n_strings=n_strings, n_machines=n_machines)

    def genitor_config(self, bias: float = 1.6) -> GenitorConfig:
        return GenitorConfig(
            population_size=self.population_size,
            bias=bias,
            rules=StoppingRules(
                max_iterations=self.max_iterations,
                max_stale_iterations=self.max_stale_iterations,
            ),
        )


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        n_runs=3,
        size_factor=1 / 3,  # 4 machines; 50 strings (scen 1-2), 8 (scen 3)
        population_size=16,
        max_iterations=80,
        max_stale_iterations=40,
        n_trials=1,
    ),
    "default": ExperimentScale(
        name="default",
        n_runs=5,
        size_factor=1.0,
        population_size=50,
        max_iterations=400,
        max_stale_iterations=150,
        n_trials=2,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_runs=100,
        size_factor=1.0,
        population_size=250,
        max_iterations=5_000,
        max_stale_iterations=300,
        n_trials=4,
    ),
}


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment: a scenario, a heuristic set, and a scale."""

    scenario: ScenarioParameters
    heuristics: tuple[str, ...]
    scale: ExperimentScale
    metric: str = "worth"  # or "slackness"
    compute_ub: bool = True
    ub_objective: str = "partial"  # or "complete"
    base_seed: int = 1_000
    bias: float = 1.6

    def __post_init__(self) -> None:
        if self.metric not in ("worth", "slackness"):
            raise ModelError(f"unknown metric {self.metric!r}")
        if self.ub_objective not in ("partial", "complete"):
            raise ModelError(f"unknown ub_objective {self.ub_objective!r}")

    def effective_scenario(self) -> ScenarioParameters:
        return self.scale.apply(self.scenario)


@dataclass
class RunRecord:
    """Per-run measurements: one row per heuristic plus the UB."""

    run_index: int
    seed: int
    #: heuristic -> (worth, slackness, runtime seconds, strings mapped)
    results: dict[str, tuple[float, float, float, int]]
    ub_value: float | None = None
    ub_runtime: float | None = None

    def metric_of(self, name: str, metric: str) -> float:
        worth, slack, _rt, _n = self.results[name]
        return worth if metric == "worth" else slack


@dataclass(frozen=True)
class RunFailure:
    """One run that crashed, hung past its timeout, or was lost with a
    broken worker pool.  Failed runs are retried on a checkpoint resume."""

    run_index: int
    seed: int
    error: str


class RunTimeoutError(RuntimeError):
    """A run exceeded the per-run wall-clock budget."""


@contextmanager
def _run_deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`RunTimeoutError` if the body runs past ``seconds``.

    Implemented with ``SIGALRM``, so it interrupts hung pure-Python
    loops (a long-running C call is only interrupted on return).  A
    no-op when ``seconds`` is None or on platforms without ``SIGALRM``
    (Windows).  Signal handlers can only be installed from the main
    thread — ``signal.signal`` raises ``ValueError`` anywhere else — so
    off the main thread the body runs *without* a timeout and a
    :class:`RuntimeWarning` is emitted instead of crashing the run.
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    if seconds <= 0:
        raise ModelError(f"run timeout must be positive, got {seconds}")
    if threading.current_thread() is not threading.main_thread():
        warnings.warn(
            "per-run timeout requires the main thread (signal.signal "
            "raises ValueError elsewhere); running without a timeout",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise RunTimeoutError(
            f"run exceeded the {seconds:g}s per-run timeout"
        )

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:
        # Belt and braces: some embeddings report a "main thread" that
        # still cannot install handlers (e.g. non-main interpreters).
        warnings.warn(
            "signal.signal rejected the SIGALRM handler; running "
            "without a per-run timeout",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class ExperimentOutcome:
    """All runs of one experiment, with aggregation helpers."""

    config: ExperimentConfig
    records: list[RunRecord] = field(default_factory=list)
    failures: list[RunFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Did every scheduled run produce a record?"""
        return len(self.records) == self.config.scale.n_runs

    def metric_samples(self, name: str) -> np.ndarray:
        return np.array(
            [r.metric_of(name, self.config.metric) for r in self.records]
        )

    def ub_samples(self) -> np.ndarray:
        return np.array(
            [r.ub_value for r in self.records if r.ub_value is not None]
        )

    def aggregate(self) -> dict[str, ConfidenceInterval]:
        """Mean ± 95% CI of the experiment metric per heuristic (+ UB)."""
        out = {
            name: mean_ci(self.metric_samples(name))
            for name in self.config.heuristics
        }
        ub = self.ub_samples()
        if ub.size:
            out["ub"] = mean_ci(ub)
        return out

    def runtimes(self) -> dict[str, ConfidenceInterval]:
        """Mean ± CI heuristic runtime (seconds) per heuristic (+ UB)."""
        out = {}
        for name in self.config.heuristics:
            out[name] = mean_ci(
                [r.results[name][2] for r in self.records]
            )
        ub_rt = [r.ub_runtime for r in self.records if r.ub_runtime is not None]
        if ub_rt:
            out["ub"] = mean_ci(ub_rt)
        return out

    def ub_never_beaten(self, tol: float = 1e-6) -> bool:
        """Sanity invariant: no heuristic ever exceeds the run's UB."""
        for r in self.records:
            if r.ub_value is None:
                continue
            for name in self.config.heuristics:
                if r.metric_of(name, self.config.metric) > r.ub_value + tol:
                    return False
        return True


def _run_one(
    config: ExperimentConfig,
    run_index: int,
    run_timeout: float | None = None,
) -> RunRecord:
    """Execute all heuristics (and the UB) on one sampled workload."""
    with _run_deadline(run_timeout):
        return _run_one_inner(config, run_index)


def _run_one_inner(config: ExperimentConfig, run_index: int) -> RunRecord:
    seed = config.base_seed + run_index
    model = generate_model(config.effective_scenario(), seed=seed)
    ga_config = config.scale.genitor_config(bias=config.bias)
    # One profile memo for the whole run: every GA trial of every
    # heuristic maps the same model, so profiles computed by the first
    # trial are reused by all later ones (memoization never changes
    # results, only speed).
    profile_cache = ProfileCache()
    results: dict[str, tuple[float, float, float, int]] = {}
    for name in config.heuristics:
        heuristic = get_heuristic(name)
        if name in GA_HEURISTICS:
            res = best_of_trials(
                heuristic,
                model,
                n_trials=config.scale.n_trials,
                rng=seed * 7_919 + 13,
                config=ga_config,
                profile_cache=profile_cache,
            )
            runtime = res.stats.get(
                "total_runtime_seconds", res.runtime_seconds
            )
        else:
            res = heuristic(model)
            runtime = res.runtime_seconds
        results[name] = (
            res.fitness.worth,
            res.fitness.slackness,
            float(runtime),
            res.n_mapped,
        )
    ub_value = ub_runtime = None
    if config.compute_ub:
        t0 = time.perf_counter()
        ub = upper_bound(model, objective=config.ub_objective)
        ub_runtime = time.perf_counter() - t0
        ub_value = ub.value
    return RunRecord(
        run_index=run_index, seed=seed, results=results,
        ub_value=ub_value, ub_runtime=ub_runtime,
    )


def _failure_of(config: ExperimentConfig, run_index: int, exc: BaseException) -> RunFailure:
    return RunFailure(
        run_index=run_index,
        seed=config.base_seed + run_index,
        error=f"{type(exc).__name__}: {exc}",
    )


def run_experiment(
    config: ExperimentConfig,
    n_workers: int = 1,
    progress: Callable[[int, int], None] | None = None,
    run_timeout: float | None = None,
    checkpoint: str | Path | None = None,
    chaos: ChaosPolicy | None = None,
) -> ExperimentOutcome:
    """Run the full multi-run protocol.

    Parameters
    ----------
    config:
        What to run.
    n_workers:
        Process-level parallelism across runs (each run is independent;
        1 keeps everything in-process, which is the right default on a
        single-core box and under pytest).  Parallel runs execute on a
        :class:`~repro.parallel.SupervisedPool`: a killed worker or
        collapsed pool is retried and ultimately replayed
        deterministically in-process, so infrastructure failures do not
        change results.
    progress:
        Optional ``callback(done, total)`` fired after each run is
        attempted (completed or failed), counting completed-so-far +
        failed-so-far as ``done``.
    run_timeout:
        Optional per-run wall-clock budget in seconds.  A run that
        exceeds it becomes a :class:`RunFailure` instead of hanging the
        whole experiment (POSIX main-thread only; see
        :func:`_run_deadline`).
    checkpoint:
        Optional JSON checkpoint path.  Completed runs are persisted as
        they finish; re-invoking with the same config and path resumes,
        recomputing only missing or failed runs.
    chaos:
        Optional seeded :class:`~repro.parallel.ChaosPolicy` threaded
        through the supervised pool's workers (tests and the
        ``repro chaos`` soak; ignored when ``n_workers`` is 1).

    A run whose own code raises (or that hangs past ``run_timeout``)
    produces a :class:`RunFailure` in ``outcome.failures`` —
    already-finished records are never lost.  Inspect
    ``outcome.complete`` before trusting aggregates from a partially
    failed experiment.
    """
    outcome = ExperimentOutcome(config=config)
    n = config.scale.n_runs
    ckpt: ExperimentCheckpoint | None = None
    if checkpoint is not None:
        ckpt = ExperimentCheckpoint.open(checkpoint, config)
        outcome.records.extend(ckpt.records)
    done_indices = {r.run_index for r in outcome.records}
    remaining = [r for r in range(n) if r not in done_indices]
    done = len(done_indices)

    def _attempted(record: RunRecord | None, failure: RunFailure | None) -> None:
        nonlocal done
        done += 1
        if record is not None:
            outcome.records.append(record)
            if ckpt is not None:
                ckpt.add(record)
        if failure is not None:
            outcome.failures.append(failure)
        if progress is not None:
            progress(done, n)

    if n_workers <= 1:
        for r in remaining:
            try:
                record = _run_one(config, r, run_timeout)
            except Exception as exc:
                _attempted(None, _failure_of(config, r, exc))
            else:
                _attempted(record, None)
    else:
        # The supervised pool absorbs infrastructure failures (worker
        # deaths, pool collapse) by retrying and ultimately replaying
        # the run in-process; only a run whose own code raises reaches
        # the failure path.  Checkpointing rides the on_result hook, so
        # records persist as runs finish, not at the end.
        def _collect(task_index: int, result: TaskOutcome) -> None:
            r = remaining[task_index]
            if result.ok:
                _attempted(result.value, None)
            else:
                _attempted(None, _failure_of(config, r, result.error))

        with SupervisedPool(n_workers, chaos=chaos) as pool:
            pool.run(
                [
                    Task(_run_one, (config, r, run_timeout))
                    for r in remaining
                ],
                on_result=_collect,
            )
    outcome.records.sort(key=lambda rec: rec.run_index)
    outcome.failures.sort(key=lambda f: f.run_index)
    return outcome
