"""Admission control and load shedding for the allocation service.

Two mechanisms keep the platform inside its feasibility envelope:

* **admission control** — arriving strings wait in a worth-priority
  :class:`RequestQueue`; an arrival is *rejected* when admitting it
  would push projected slackness below the current health state's
  floor (the paper's lexicographic metric in reverse: worth is only
  worth having while the system keeps slack);
* **load shedding** — when drift or faults erode slackness below the
  floor, :func:`plan_shedding` picks the cheapest set of active strings
  to drop: lowest worth first, re-projecting after each drop, stopping
  as soon as the floor is met again.

Both mechanisms are pure over an injected projection callable
``slackness_of(active_ids) -> float | None`` (``None`` = infeasible), so
they are unit-testable without building system models.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

__all__ = [
    "AdmissionDecision",
    "QueuedRequest",
    "RequestQueue",
    "plan_shedding",
    "shed_order",
]


@dataclass(frozen=True)
class QueuedRequest:
    """One pending arrival: which service, how much it is worth."""

    service_id: int
    worth: float


@dataclass(frozen=True)
class AdmissionDecision:
    """Verdict on one queued arrival."""

    request: QueuedRequest
    admitted: bool
    reason: str
    projected_slackness: float | None = None


class RequestQueue:
    """Worth-priority queue of pending arrivals.

    Highest worth pops first; ties break FIFO (a stable sequence
    number), so equal-worth requests are served in arrival order.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, QueuedRequest]] = []
        self._seq = itertools.count()
        self.n_enqueued = 0

    def push(self, request: QueuedRequest) -> None:
        heapq.heappush(
            self._heap, (-request.worth, next(self._seq), request)
        )
        self.n_enqueued += 1

    def pop(self) -> QueuedRequest:
        """Remove and return the highest-worth pending request."""
        return heapq.heappop(self._heap)[2]

    def peek(self) -> QueuedRequest:
        return self._heap[0][2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


def shed_order(worths: Mapping[int, float]) -> list[int]:
    """Ids ordered cheapest-to-shed first: ascending worth, ties by id."""
    return sorted(worths, key=lambda k: (worths[k], k))


def plan_shedding(
    active: Iterable[int],
    worths: Mapping[int, float],
    slackness_of: Callable[[frozenset[int]], float | None],
    floor: float,
) -> tuple[list[int], float | None]:
    """Pick which active services to shed to restore the slack floor.

    Drops the lowest-worth service, re-projects, and repeats until the
    projected slackness reaches ``floor`` (or nothing is left).  Returns
    the shed ids (in shed order) and the final projected slackness.

    The one-at-a-time greedy mirrors :class:`ShedPolicy`'s
    worth-preference: high-worth services keep their slots for as long
    as feasibly possible.
    """
    kept = set(active)
    shed: list[int] = []
    slack = slackness_of(frozenset(kept))
    candidates = [k for k in shed_order(worths) if k in kept]
    for victim in candidates:
        if slack is not None and slack >= floor:
            break
        if not kept:
            break
        kept.discard(victim)
        shed.append(victim)
        slack = slackness_of(frozenset(kept))
    return shed, slack
