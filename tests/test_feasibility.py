"""Unit tests for the two-stage feasibility analysis
(repro.core.feasibility, eq. 1)."""

import numpy as np
import pytest

from repro.core import Allocation, SystemModel, analyze, is_feasible

from conftest import build_string, uniform_network


def single_string_model(n_machines=2, **kwargs):
    net = uniform_network(n_machines, bandwidth=kwargs.pop("bandwidth", 1e6))
    s = build_string(0, kwargs.pop("n_apps", 2), n_machines, **kwargs)
    return SystemModel(net, [s])


class TestStage1:
    def test_feasible_small_load(self, small_allocation):
        report = analyze(small_allocation)
        assert report.stage1_ok
        assert report.feasible
        assert report.violations == []

    def test_machine_capacity_violation(self):
        # One app needing t*u/P = 20*1/10 = 2.0 > 1 on any machine.
        model = single_string_model(n_apps=1, period=10.0, t=20.0, u=1.0,
                                    latency=1e6)
        alloc = Allocation(model, {0: [0]})
        report = analyze(alloc)
        assert not report.stage1_ok
        kinds = {v.kind for v in report.violations}
        assert "machine-capacity" in kinds

    def test_route_capacity_violation(self):
        # transfer demand O/P = 1000 B/s over a 500 B/s route -> U = 2.
        model = single_string_model(
            n_apps=2, period=10.0, t=1.0, u=0.1, out=10_000.0,
            bandwidth=500.0, latency=1e9,
        )
        alloc = Allocation(model, {0: [0, 1]})
        report = analyze(alloc)
        assert not report.stage1_ok
        assert any(v.kind == "route-capacity" for v in report.violations)

    def test_multiple_strings_accumulate(self):
        net = uniform_network(2)
        strings = [
            build_string(k, 1, 2, period=10.0, t=6.0, u=1.0, latency=1e6)
            for k in range(2)
        ]
        model = SystemModel(net, strings)
        one = Allocation(model, {0: [0]})
        both = Allocation(model, {0: [0], 1: [0]})
        assert analyze(one).stage1_ok  # 0.6
        assert not analyze(both).stage1_ok  # 1.2


class TestStage2Throughput:
    def test_comp_time_exceeds_period(self):
        # Nominal t=8 with period 10 alone is fine; with an equal tighter
        # string sharing the machine the estimate becomes 8 + wait > 10.
        net = uniform_network(2)
        tight = build_string(0, 1, 2, period=40.0, t=8.0, u=0.5,
                             latency=16.0)
        loose = build_string(1, 1, 2, period=10.0, t=8.0, u=0.5,
                             latency=1e6)
        model = SystemModel(net, [tight, loose])
        alloc = Allocation(model, {0: [0], 1: [0]})
        report = analyze(alloc)
        # loose string wait = P2 * (t*u/P1) = 10 * (8*0.5/40) = 1 -> 9 ok
        assert report.feasible
        # shrink the loose period so the bound bites: 8 + wait > P
        loose2 = build_string(1, 1, 2, period=8.5, t=8.0, u=0.5,
                              latency=1e6)
        model2 = SystemModel(net, [tight, loose2])
        alloc2 = Allocation(model2, {0: [0], 1: [0]})
        report2 = analyze(alloc2)
        assert not report2.stage2_ok
        assert any(
            v.kind == "throughput-comp" for v in report2.violations
        )

    def test_nominal_time_exceeding_period_caught(self):
        model = single_string_model(
            n_apps=1, period=5.0, t=6.0, u=0.1, latency=1e6
        )
        alloc = Allocation(model, {0: [0]})
        report = analyze(alloc)
        assert not report.stage2_ok

    def test_transfer_time_exceeds_period(self):
        # 10_000 bytes at 550 B/s takes ~18.2s > period 10, but stage-1
        # utilization (O/P)/w = 1000/550 > 1 would also fail; use a big
        # period with tight per-transfer time instead:
        # O/w = 18.2 > P needs P < 18.2 while O/(P*w) <= 1 -> P >= 18.2.
        # Those conflict for a single transfer, so stage-2 transfer
        # violations surface via interference: two transfers sharing a
        # route, each individually fine.
        net = uniform_network(2, bandwidth=1_000.0)
        tight = build_string(0, 2, 2, period=20.0, t=1.0, u=0.1,
                             out=12_000.0, latency=15.0)
        loose = build_string(1, 2, 2, period=20.0, t=1.0, u=0.1,
                             out=12_000.0, latency=1e6)
        model = SystemModel(net, [tight, loose])
        alloc = Allocation(model, {0: [0, 1], 1: [0, 1]})
        report = analyze(alloc)
        # loose transfer estimate: 12 + 20 * (12/20) = 24 > 20
        assert any(
            v.kind == "throughput-tran" for v in report.violations
        )


class TestStage2Latency:
    def test_latency_violation(self):
        model = single_string_model(
            n_apps=3, period=100.0, t=5.0, u=0.5, latency=14.0,
        )
        # path: 5*3 + transfers(~0) = 15 > 14
        alloc = Allocation(model, {0: [0, 0, 0]})
        report = analyze(alloc)
        assert not report.stage2_ok
        assert any(v.kind == "latency" for v in report.violations)
        assert report.latencies[0] == pytest.approx(15.0, rel=1e-3)

    def test_latency_includes_waiting(self):
        net = uniform_network(2)
        tight = build_string(0, 1, 2, period=10.0, t=4.0, u=1.0,
                             latency=5.0)
        # loose alone: latency 4+4=8 <= 8.9; with waiting 2*(P*load)=
        # 2 * 20*(4/10) = 16 -> 24 > 8.9
        loose = build_string(1, 2, 2, period=20.0, t=4.0, u=1.0,
                             latency=8.9)
        model = SystemModel(net, [tight, loose])
        ok = Allocation(model, {1: [0, 0]})
        assert analyze(ok).feasible
        shared = Allocation(model, {0: [0], 1: [0, 0]})
        report = analyze(shared)
        assert any(v.kind == "latency" for v in report.violations)


class TestReport:
    def test_summary_feasible(self, small_allocation):
        assert "feasible" in analyze(small_allocation).summary()

    def test_summary_lists_violations(self):
        model = single_string_model(
            n_apps=1, period=5.0, t=6.0, u=1.0, latency=1.0
        )
        alloc = Allocation(model, {0: [0]})
        report = analyze(alloc)
        text = report.summary()
        assert "infeasible" in text
        assert "violations" in text

    def test_empty_allocation_feasible(self, small_model):
        assert is_feasible(Allocation.empty(small_model))

    def test_latencies_reported_per_string(self, small_allocation):
        report = analyze(small_allocation)
        assert set(report.latencies) == {0, 1, 2, 3}

    def test_tolerance_respected(self):
        # Load exactly 1.0 must pass (boundary is feasible).
        model = single_string_model(
            n_apps=1, period=10.0, t=10.0, u=1.0, latency=1e6
        )
        alloc = Allocation(model, {0: [0]})
        report = analyze(alloc)
        assert report.stage1_ok
        assert report.feasible
