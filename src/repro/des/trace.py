"""Measurement collection for the discrete-event simulator.

Records, per (string, application) and per data set:

* computation span — from the instant the application's input is
  available on its machine to computation completion (what eq. 5
  estimates, including queueing/sharing delay);
* transfer span — analogous for inter-application transfers (eq. 6);
* end-to-end latency — release of a data set at the head of the string
  to completion of its last application (the eq. 1 latency constraint).

Aggregation helpers return means over completed data sets, optionally
discarding a warm-up prefix so steady-state figures aren't polluted by
the empty-system start.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SpanRecord", "SimulationTrace"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed computation or transfer."""

    string_id: int
    app_index: int
    dataset: int
    release: float
    completion: float

    @property
    def span(self) -> float:
        return self.completion - self.release


@dataclass
class SimulationTrace:
    """All measurements from one simulation run."""

    comp_spans: list[SpanRecord] = field(default_factory=list)
    tran_spans: list[SpanRecord] = field(default_factory=list)
    #: (string_id, dataset, release, completion) per finished data set.
    latencies: list[tuple[int, int, float, float]] = field(default_factory=list)

    # -- recording --------------------------------------------------------------

    def record_comp(self, rec: SpanRecord) -> None:
        self.comp_spans.append(rec)

    def record_tran(self, rec: SpanRecord) -> None:
        self.tran_spans.append(rec)

    def record_latency(
        self, string_id: int, dataset: int, release: float, completion: float
    ) -> None:
        self.latencies.append((string_id, dataset, release, completion))

    # -- aggregation --------------------------------------------------------------

    def _mean_spans(
        self, spans: list[SpanRecord], skip_datasets: int
    ) -> dict[tuple[int, int], float]:
        buckets: dict[tuple[int, int], list[float]] = defaultdict(list)
        for rec in spans:
            if rec.dataset >= skip_datasets:
                buckets[(rec.string_id, rec.app_index)].append(rec.span)
        return {key: float(np.mean(vals)) for key, vals in buckets.items()}

    def mean_comp_times(
        self, skip_datasets: int = 0
    ) -> dict[tuple[int, int], float]:
        """Mean measured computation span per (string, app)."""
        return self._mean_spans(self.comp_spans, skip_datasets)

    def mean_tran_times(
        self, skip_datasets: int = 0
    ) -> dict[tuple[int, int], float]:
        """Mean measured transfer span per (string, sending app)."""
        return self._mean_spans(self.tran_spans, skip_datasets)

    def mean_latency(
        self, string_id: int, skip_datasets: int = 0
    ) -> float:
        """Mean end-to-end latency of one string's completed data sets."""
        vals = [
            done - rel
            for (k, d, rel, done) in self.latencies
            if k == string_id and d >= skip_datasets
        ]
        if not vals:
            raise ValueError(f"no completed data sets for string {string_id}")
        return float(np.mean(vals))

    def max_latency(self, string_id: int, skip_datasets: int = 0) -> float:
        """Worst observed end-to-end latency of one string."""
        vals = [
            done - rel
            for (k, d, rel, done) in self.latencies
            if k == string_id and d >= skip_datasets
        ]
        if not vals:
            raise ValueError(f"no completed data sets for string {string_id}")
        return float(max(vals))

    def completed_datasets(self, string_id: int) -> int:
        return sum(1 for (k, *_rest) in self.latencies if k == string_id)
