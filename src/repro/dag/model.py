"""DAG-structured applications — the paper's footnote-2 generalization.

The paper models each task as a linear *string* of applications and
notes that "the final ARMS program may include DAGs of applications".
This subpackage implements that generalization: a :class:`DagString`
is a set of periodic applications connected by a directed acyclic graph
of data transfers.  Everything specializes back to the paper's model
when the DAG is a chain — the test suite asserts exact equivalence of
utilizations, tightness, timing estimates, and feasibility verdicts
against the linear implementation on chain DAGs.

Semantics carried over from the linear model:

* every application executes once per period ``P[k]``;
* an application starts on a data set when *all* its incoming transfers
  for that data set have arrived;
* end-to-end latency is the completion time of the last application —
  the **critical path** through estimated computation and transfer
  times — and must not exceed ``Lmax[k]``;
* the throughput constraint bounds every estimated computation and
  transfer time by ``P[k]``.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from ..core.exceptions import ModelError
from ..core.model import Network

__all__ = ["DagEdge", "DagString", "DagSystem", "chain_edges"]


class DagEdge:
    """A directed data transfer between two applications of a DAG string."""

    __slots__ = ("src", "dst", "nbytes")

    def __init__(self, src: int, dst: int, nbytes: float):
        if src == dst:
            raise ModelError(f"self-edge on application {src}")
        if nbytes <= 0:
            raise ModelError(f"edge {src}->{dst}: nbytes must be positive")
        self.src = int(src)
        self.dst = int(dst)
        self.nbytes = float(nbytes)

    def __repr__(self) -> str:
        return f"DagEdge({self.src}->{self.dst}, {self.nbytes:g}B)"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DagEdge):
            return NotImplemented
        return (self.src, self.dst, self.nbytes) == (
            other.src, other.dst, other.nbytes,
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.nbytes))


def chain_edges(output_sizes: Sequence[float]) -> list[DagEdge]:
    """Edges of a linear chain ``0 -> 1 -> ... -> n-1`` (the paper's
    string model as a special case)."""
    return [
        DagEdge(i, i + 1, nbytes)
        for i, nbytes in enumerate(output_sizes)
    ]


class DagString:
    """A DAG of periodic applications (generalizes ``AppString``).

    Parameters mirror :class:`~repro.core.model.AppString`, with
    ``edges`` replacing the implicit chain of ``output_sizes``.
    Disconnected applications are allowed (independent work items under
    one period/latency contract); cycles are rejected.
    """

    __slots__ = (
        "string_id", "worth", "period", "max_latency",
        "comp_times", "cpu_utils", "edges", "name",
        "_graph", "_topo_order",
    )

    def __init__(
        self,
        string_id: int,
        worth: float,
        period: float,
        max_latency: float,
        comp_times: np.ndarray,
        cpu_utils: np.ndarray,
        edges: Sequence[DagEdge],
        name: str = "",
    ):
        ct = np.asarray(comp_times, dtype=float).copy()
        cu = np.asarray(cpu_utils, dtype=float).copy()
        if string_id < 0:
            raise ModelError(f"string_id must be >= 0, got {string_id}")
        if worth <= 0 or period <= 0 or max_latency <= 0:
            raise ModelError("worth, period, max_latency must be positive")
        if ct.ndim != 2 or ct.shape[0] < 1:
            raise ModelError(f"comp_times must be (n, M), got {ct.shape}")
        if cu.shape != ct.shape:
            raise ModelError("cpu_utils shape mismatch")
        if not np.all(ct > 0):
            raise ModelError("nominal execution times must be positive")
        if not (np.all(cu > 0) and np.all(cu <= 1.0)):
            raise ModelError("CPU utilizations must lie in (0, 1]")
        n = ct.shape[0]
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for e in edges:
            if not (0 <= e.src < n and 0 <= e.dst < n):
                raise ModelError(f"edge {e} references unknown application")
            if graph.has_edge(e.src, e.dst):
                raise ModelError(f"duplicate edge {e.src}->{e.dst}")
            graph.add_edge(e.src, e.dst, nbytes=e.nbytes)
        if not nx.is_directed_acyclic_graph(graph):
            raise ModelError("transfer graph contains a cycle")
        ct.setflags(write=False)
        cu.setflags(write=False)

        self.string_id = string_id
        self.worth = float(worth)
        self.period = float(period)
        self.max_latency = float(max_latency)
        self.comp_times = ct
        self.cpu_utils = cu
        self.edges = tuple(edges)
        self.name = name or f"dag-string-{string_id}"
        self._graph = graph
        self._topo_order = tuple(nx.topological_sort(graph))

    @property
    def n_apps(self) -> int:
        return self.comp_times.shape[0]

    @property
    def n_machines(self) -> int:
        return self.comp_times.shape[1]

    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    @property
    def topo_order(self) -> tuple[int, ...]:
        """Applications in a fixed topological order."""
        return self._topo_order

    def predecessors(self, i: int):
        return self._graph.predecessors(i)

    def successors(self, i: int):
        return self._graph.successors(i)

    def edge_bytes(self, src: int, dst: int) -> float:
        return float(self._graph.edges[src, dst]["nbytes"])

    def computational_intensity(self) -> np.ndarray:
        """``t_av[i] · u_av[i] / P`` per application (mapper guide)."""
        return (
            self.comp_times.mean(axis=1)
            * self.cpu_utils.mean(axis=1)
            / self.period
        )

    def critical_path_time(
        self,
        machines: Sequence[int],
        network: Network,
        comp_override: np.ndarray | None = None,
        tran_override: dict[tuple[int, int], float] | None = None,
    ) -> float:
        """Longest completion time over the DAG.

        With no overrides this is the *nominal* critical path (the
        tightness numerator); the stage-2 analysis passes estimated
        computation/transfer times to obtain the estimated latency.
        """
        m = np.asarray(machines, dtype=int)
        if m.shape != (self.n_apps,):
            raise ModelError(
                f"assignment length {m.shape} != ({self.n_apps},)"
            )
        comp = (
            comp_override
            if comp_override is not None
            else self.comp_times[np.arange(self.n_apps), m]
        )
        finish = np.zeros(self.n_apps)
        for i in self._topo_order:
            start = 0.0
            for p in self._graph.predecessors(i):
                if tran_override is not None:
                    tran = tran_override[(p, i)]
                else:
                    tran = self.edge_bytes(p, i) * network.inv_bandwidth[
                        m[p], m[i]
                    ]
                start = max(start, finish[p] + tran)
            finish[i] = start + comp[i]
        return float(finish.max(initial=0.0))

    def __repr__(self) -> str:
        return (
            f"DagString(id={self.string_id}, n_apps={self.n_apps}, "
            f"n_edges={self._graph.number_of_edges()})"
        )


class DagSystem:
    """A network plus a workload of DAG strings (ids = positions)."""

    __slots__ = ("network", "strings")

    def __init__(self, network: Network, strings: Sequence[DagString]):
        strings = list(strings)
        for k, s in enumerate(strings):
            if s.string_id != k:
                raise ModelError(
                    f"string at position {k} has id {s.string_id}"
                )
            if s.n_machines != network.n_machines:
                raise ModelError(
                    f"string {k} sized for {s.n_machines} machines"
                )
        self.network = network
        self.strings = strings

    @property
    def n_machines(self) -> int:
        return self.network.n_machines

    @property
    def n_strings(self) -> int:
        return len(self.strings)

    def __repr__(self) -> str:
        return (
            f"DagSystem(n_machines={self.n_machines}, "
            f"n_strings={self.n_strings})"
        )
