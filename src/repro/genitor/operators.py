"""Alternative permutation crossover operators (ablation substrate).

The paper uses a bespoke *positional top-part* crossover
(:func:`repro.genitor.crossover.positional_crossover`) and argues its
top-part choice matters under partial allocation.  To test that design
choice, this module implements the two standard permutation crossovers
from the GA literature the paper's operator competes with:

* **Order crossover (OX)** — copy a random slice from parent 1, fill
  the remaining positions with parent 2's genes in their parent-2 order
  (Davis, 1985).
* **Partially mapped crossover (PMX)** — copy a random slice from
  parent 1 and resolve the induced conflicts through the slice's
  position mapping (Goldberg & Lingle, 1985).

Both are closed over permutations (property-tested) and plug into the
engine through :data:`CROSSOVER_OPERATORS`; the operator ablation
benchmark compares all three under the PSG projection.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .crossover import positional_crossover

__all__ = [
    "order_crossover",
    "pmx_crossover",
    "CROSSOVER_OPERATORS",
    "get_crossover",
]

Chromosome = tuple[int, ...]
CrossoverFn = Callable[
    [Chromosome, Chromosome, np.random.Generator],
    tuple[Chromosome, Chromosome],
]


def _random_slice(n: int, rng: np.random.Generator) -> tuple[int, int]:
    """A non-empty slice [lo, hi) with hi > lo, uniform over pairs."""
    if n < 2:
        return 0, n
    lo, hi = sorted(rng.choice(n + 1, size=2, replace=False))
    if lo == hi:  # pragma: no cover - excluded by replace=False
        hi += 1
    return int(lo), int(hi)


def _ox_child(
    keeper: Chromosome, filler: Chromosome, lo: int, hi: int
) -> Chromosome:
    """One OX offspring: keeper's slice + filler's order elsewhere."""
    n = len(keeper)
    kept = set(keeper[lo:hi])
    fill = [g for g in filler if g not in kept]
    child = list(keeper)
    positions = [i for i in range(n) if not lo <= i < hi]
    for pos, gene in zip(positions, fill):
        child[pos] = gene
    return tuple(child)


def order_crossover(
    parent1: Chromosome,
    parent2: Chromosome,
    rng: np.random.Generator,
    slice_: tuple[int, int] | None = None,
) -> tuple[Chromosome, Chromosome]:
    """Davis order crossover (OX) producing two offspring.

    Each offspring inherits one parent's slice verbatim and the other
    parent's *relative order* outside it.
    """
    if len(parent1) != len(parent2):
        raise ValueError("parents must have equal length")
    lo, hi = slice_ if slice_ is not None else _random_slice(len(parent1), rng)
    return (
        _ox_child(parent1, parent2, lo, hi),
        _ox_child(parent2, parent1, lo, hi),
    )


def _pmx_child(
    keeper: Chromosome, other: Chromosome, lo: int, hi: int
) -> Chromosome:
    """One PMX offspring: keeper's slice, other's genes elsewhere with
    conflicts resolved through the slice mapping."""
    n = len(keeper)
    child: list[int | None] = [None] * n
    child[lo:hi] = keeper[lo:hi]
    in_slice = set(keeper[lo:hi])
    # Conflict resolution follows keeper-slice gene -> other-slice gene
    # at the same position; the chain always exits the keeper slice.
    mapping = {keeper[i]: other[i] for i in range(lo, hi)}
    for i in list(range(lo)) + list(range(hi, n)):
        gene = other[i]
        while gene in in_slice:
            gene = mapping[gene]
        child[i] = gene
    return tuple(g for g in child)  # type: ignore[misc]


def pmx_crossover(
    parent1: Chromosome,
    parent2: Chromosome,
    rng: np.random.Generator,
    slice_: tuple[int, int] | None = None,
) -> tuple[Chromosome, Chromosome]:
    """Partially mapped crossover (PMX) producing two offspring."""
    if len(parent1) != len(parent2):
        raise ValueError("parents must have equal length")
    lo, hi = slice_ if slice_ is not None else _random_slice(len(parent1), rng)
    return (
        _pmx_child(parent1, parent2, lo, hi),
        _pmx_child(parent2, parent1, lo, hi),
    )


#: Named operators for the engine and the ablation harness.
CROSSOVER_OPERATORS: dict[str, CrossoverFn] = {
    "positional": positional_crossover,
    "ox": order_crossover,
    "pmx": pmx_crossover,
}


def get_crossover(name: str) -> CrossoverFn:
    """Look up a crossover operator by name."""
    try:
        return CROSSOVER_OPERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown crossover {name!r}; available: "
            f"{sorted(CROSSOVER_OPERATORS)}"
        ) from None
