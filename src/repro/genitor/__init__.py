"""GENITOR: steady-state genetic search over the permutation space.

A problem-agnostic implementation of the evolutionary machinery behind
the paper's PSG and Seeded PSG heuristics: linear-bias rank selection,
positional top-part crossover, swap mutation, replace-worst insertion
(implicit elitism), and the paper's three stopping rules.
"""

from .bias import biased_rank, selection_probabilities
from .crossover import positional_crossover, random_cut, swap_mutation
from .engine import GenitorConfig, GenitorEngine, GenitorStats
from .operators import (
    CROSSOVER_OPERATORS,
    get_crossover,
    order_crossover,
    pmx_crossover,
)
from .population import Chromosome, Individual, Population
from .stopping import StoppingRules, StopTracker

__all__ = [
    "CROSSOVER_OPERATORS",
    "Chromosome",
    "GenitorConfig",
    "GenitorEngine",
    "GenitorStats",
    "Individual",
    "Population",
    "StopTracker",
    "StoppingRules",
    "biased_rank",
    "get_crossover",
    "order_crossover",
    "pmx_crossover",
    "positional_crossover",
    "random_cut",
    "selection_probabilities",
    "swap_mutation",
]
