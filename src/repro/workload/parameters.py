"""Simulation-setup parameters (Section 6 and Table 1).

Collects every constant the paper's workload generator uses, so that the
generator, the experiments, and the documentation all reference a single
source of truth.  All values default to the paper's; everything is
overridable for ablations.

Units
-----
The paper gives bandwidths in Mb/sec and output sizes in Kbytes.  We work
in **bytes and seconds** internally: 1 Mb/sec = 125 000 bytes/sec and
1 Kbyte = 1 000 bytes (decimal interpretation; only the *ratio* of the
two ranges matters to the allocation problem, and the decimal convention
matches 2005-era networking usage).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.exceptions import ModelError

__all__ = [
    "MB_PER_SEC",
    "KBYTE",
    "ScenarioParameters",
    "SCENARIO_1",
    "SCENARIO_2",
    "SCENARIO_3",
    "SCENARIOS",
    "get_scenario",
]

#: Bytes per second in one Mb/sec (megabit, decimal).
MB_PER_SEC = 1_000_000.0 / 8.0
#: Bytes in one Kbyte (decimal).
KBYTE = 1_000.0


@dataclass(frozen=True)
class ScenarioParameters:
    """Full parameterization of one workload scenario.

    Defaults outside the per-scenario µ ranges and string counts are the
    paper's Section-6 constants: 12 machines, route bandwidths uniform in
    [1, 10] Mb/sec, strings of 1–10 applications, nominal execution times
    uniform in [1, 10] s, nominal CPU utilizations uniform in [0.1, 1],
    output sizes uniform in [10, 100] Kbytes, worth factors drawn
    uniformly from {1, 10, 100}.
    """

    name: str
    description: str
    n_strings: int
    #: µ range scaling the end-to-end latency constraint ``Lmax[k]``.
    latency_mu: tuple[float, float]
    #: µ range scaling the period ``P[k]``.
    period_mu: tuple[float, float]
    n_machines: int = 12
    bandwidth_range: tuple[float, float] = (1.0 * MB_PER_SEC, 10.0 * MB_PER_SEC)
    apps_per_string: tuple[int, int] = (1, 10)
    comp_time_range: tuple[float, float] = (1.0, 10.0)
    cpu_util_range: tuple[float, float] = (0.1, 1.0)
    output_size_range: tuple[float, float] = (10.0 * KBYTE, 100.0 * KBYTE)
    worth_choices: tuple[int, ...] = (1, 10, 100)

    def __post_init__(self) -> None:
        if self.n_strings < 1:
            raise ModelError("n_strings must be >= 1")
        if self.n_machines < 1:
            raise ModelError("n_machines must be >= 1")
        for lo, hi, what in (
            (*self.latency_mu, "latency_mu"),
            (*self.period_mu, "period_mu"),
            (*self.bandwidth_range, "bandwidth_range"),
            (*self.comp_time_range, "comp_time_range"),
            (*self.cpu_util_range, "cpu_util_range"),
            (*self.output_size_range, "output_size_range"),
        ):
            if not (0 < lo <= hi):
                raise ModelError(f"{what} must satisfy 0 < lo <= hi, got ({lo}, {hi})")
        lo, hi = self.apps_per_string
        if not (1 <= lo <= hi):
            raise ModelError(f"apps_per_string must satisfy 1 <= lo <= hi, got ({lo}, {hi})")
        if self.cpu_util_range[1] > 1.0:
            raise ModelError("cpu_util_range upper bound cannot exceed 1")
        if not all(w > 0 for w in self.worth_choices):
            raise ModelError("worth choices must be positive")

    def scaled(self, n_strings: int | None = None, **overrides) -> "ScenarioParameters":
        """A copy with selected fields replaced (for reduced-scale runs)."""
        if n_strings is not None:
            overrides["n_strings"] = n_strings
        return replace(self, **overrides)


#: Scenario 1 — highly loaded system: 150 strings with relaxed QoS, so the
#: allocation stops when some resource hits its capacity (stage-1 limited).
SCENARIO_1 = ScenarioParameters(
    name="scenario1",
    description=(
        "Highly loaded: 150 strings, relaxed QoS constraints; partial "
        "allocation terminated by hardware capacity (stage 1)."
    ),
    n_strings=150,
    latency_mu=(4.0, 6.0),
    period_mu=(3.0, 4.5),
)

#: Scenario 2 — QoS-limited system: 150 strings with tight constraints, so
#: the allocation stops on a QoS violation before capacity is reached.
SCENARIO_2 = ScenarioParameters(
    name="scenario2",
    description=(
        "QoS-limited: 150 strings, tight throughput/latency constraints; "
        "partial allocation terminated by stage-2 QoS violations."
    ),
    n_strings=150,
    latency_mu=(1.25, 2.75),
    period_mu=(1.5, 2.5),
)

#: Scenario 3 — lightly loaded: 25 strings with relaxed QoS; the complete
#: set allocates, and only slackness differentiates the heuristics.
SCENARIO_3 = ScenarioParameters(
    name="scenario3",
    description=(
        "Lightly loaded: 25 strings, relaxed QoS; complete allocation — "
        "system slackness is the differentiating metric."
    ),
    n_strings=25,
    latency_mu=(4.0, 6.0),
    period_mu=(3.0, 4.5),
)

SCENARIOS: dict[str, ScenarioParameters] = {
    s.name: s for s in (SCENARIO_1, SCENARIO_2, SCENARIO_3)
}


def get_scenario(name: str) -> ScenarioParameters:
    """Look up a scenario by name ('scenario1' | 'scenario2' | 'scenario3').

    Also accepts the bare digit ('1', '2', '3').
    """
    key = name if name.startswith("scenario") else f"scenario{name}"
    try:
        return SCENARIOS[key]
    except KeyError:
        raise ModelError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
