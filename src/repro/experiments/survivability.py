"""Survivability: worth retained after resource faults, per heuristic.

The paper motivates maximizing system slackness with a shipboard
environment where "the system is subject to unpredictable changes" —
including battle damage to the resources themselves.  This experiment
quantifies how much mission worth each heuristic's initial allocation
retains after ``k`` random faults (machine/route failures, partial
degradations, correlated damage zones), under each recovery policy
from :mod:`repro.faults.recovery`:

* ``shed`` — drop what no longer fits (the floor: zero recovery effort);
* ``repair`` — shed, then reinsert evicted strings via local search;
* ``remap-*`` — reallocate the surviving system from scratch.

All heuristics face the *same* sampled faults on the *same* workload
per run, so comparisons are paired.  The experiment also ranks machines
by worth-at-risk (fail each alone, measure the worth lost under
``shed``), averaged across runs — the paper's survivability concern
made concrete: which single resource loss hurts the mission most.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.stats import ConfidenceInterval, mean_ci
from ..analysis.tables import format_table
from ..faults.criticality import critical_machines
from ..faults.injector import inject
from ..faults.recovery import recover
from ..faults.scenarios import FAULT_KINDS, sample_faults
from ..genitor import GenitorConfig
from ..heuristics import best_of_trials, get_heuristic
from ..parallel import ChaosPolicy
from ..workload import SCENARIO_1, ScenarioParameters, generate_model
from .runner import SCALES, ExperimentScale

__all__ = ["SurvivabilityCell", "run_survivability"]

_GA = frozenset({"psg", "seeded-psg"})


@dataclass(frozen=True)
class SurvivabilityCell:
    """Aggregated outcome for one (heuristic, recovery policy) pair."""

    heuristic: str
    policy: str
    retained: ConfidenceInterval
    moved: ConfidenceInterval
    slackness: ConfidenceInterval


def run_survivability(
    scenario: ScenarioParameters = SCENARIO_1,
    scale: str | ExperimentScale = "smoke",
    heuristics: tuple[str, ...] = ("mwf", "tf"),
    policies: tuple[str, ...] = ("shed", "repair", "remap-mwf"),
    n_faults: int = 3,
    kinds: tuple[str, ...] = FAULT_KINDS,
    base_seed: int = 9_000,
    rank_criticality: bool = True,
    n_workers: int = 1,
    chaos: ChaosPolicy | None = None,
) -> dict:
    """Measure worth retained after ``n_faults`` random faults.

    For each of ``scale.n_runs`` sampled workloads: build each
    heuristic's initial allocation, sample one fault scenario (shared
    across heuristics, kind-diverse by construction), and recover with
    every policy.  Returns ``{"cells": {(heuristic, policy):
    SurvivabilityCell}, "table": str, "criticality": [(machine,
    ConfidenceInterval)], "criticality_table": str, "faults": [str]}``.

    ``n_workers`` > 1 fans the GA trials of each run over a
    :class:`~repro.parallel.SupervisedPool`; ``chaos`` threads a seeded
    fault injector through those workers (the ``repro chaos`` soak uses
    this to assert results stay bit-identical under injected failure —
    process-level chaos mirroring the domain-level faults this
    experiment injects into the *model*).
    """
    if isinstance(scale, str):
        scale = SCALES[scale]
    params = scale.apply(scenario)
    ga_config: GenitorConfig = scale.genitor_config()

    samples: dict[tuple[str, str], dict[str, list[float]]] = {
        (h, p): {"retained": [], "moved": [], "slackness": []}
        for h in heuristics
        for p in policies
    }
    worth_lost: dict[int, list[float]] = {}
    fault_descriptions: list[str] = []

    for r in range(scale.n_runs):
        model = generate_model(params, seed=base_seed + r)
        rng = np.random.default_rng(base_seed * 17 + r)
        events = sample_faults(model, n_faults, rng=rng, kinds=kinds)
        injection = inject(model, events)
        fault_descriptions.append(injection.describe())
        for h in heuristics:
            heuristic = get_heuristic(h)
            if h in _GA:
                result = best_of_trials(
                    heuristic, model, n_trials=scale.n_trials,
                    rng=base_seed * 11 + r, config=ga_config,
                    n_workers=n_workers, chaos=chaos,
                )
            else:
                result = heuristic(model)
            for p in policies:
                outcome = recover(injection, result.allocation, p)
                cell = samples[(h, p)]
                cell["retained"].append(outcome.worth_retained)
                cell["moved"].append(float(len(outcome.moved)))
                cell["slackness"].append(outcome.slackness_after)
            if rank_criticality and h == heuristics[0]:
                for crit in critical_machines(result.allocation, "shed"):
                    worth_lost.setdefault(crit.machine, []).append(
                        crit.worth_lost
                    )

    cells = {
        key: SurvivabilityCell(
            heuristic=key[0],
            policy=key[1],
            retained=mean_ci(vals["retained"]),
            moved=mean_ci(vals["moved"]),
            slackness=mean_ci(vals["slackness"]),
        )
        for key, vals in samples.items()
    }
    rows = [
        (
            cell.heuristic,
            cell.policy,
            f"{cell.retained.mean:.3f} ± {cell.retained.half_width:.3f}",
            f"{cell.moved.mean:.2f}",
            f"{cell.slackness.mean:.3f}",
        )
        for cell in cells.values()
    ]
    table = format_table(
        ["heuristic", "policy", "worth retained", "moved", "slackness"],
        rows,
    )

    criticality: list[tuple[int, ConfidenceInterval]] = sorted(
        ((j, mean_ci(vals)) for j, vals in worth_lost.items()),
        key=lambda item: (-item[1].mean, item[0]),
    )
    crit_rows = [
        (f"machine {j}", f"{ci.mean:.4g} ± {ci.half_width:.3g}")
        for j, ci in criticality
    ]
    criticality_table = (
        format_table(["machine", "mean worth lost (shed)"], crit_rows)
        if crit_rows
        else "(criticality ranking disabled)"
    )
    return {
        "cells": cells,
        "table": table,
        "criticality": criticality,
        "criticality_table": criticality_table,
        "faults": fault_descriptions,
    }
