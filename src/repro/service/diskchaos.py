"""Seeded storage-fault injection for the durable journal.

The write-ahead log in :mod:`repro.service.journal` claims that a
committed event is never lost and a torn tail is never trusted.  Claims
about crash behaviour are worthless untested, so — mirroring the
process-pool chaos layer (:mod:`repro.parallel.chaos`) — this module
makes storage failures injectable and **deterministic**: every fault
decision is a pure function of ``(policy.seed, record_index, attempt)``,
so a chaotic run replays exactly and a test can pick a seed that tears
attempt 0 of an append but spares attempt 1.

Four fault kinds are modelled, matching what a real disk (or a crash
mid-syscall) does to an append-only log:

* **torn** — only a prefix of the frame reaches the file before the
  write "fails" (a crash mid-``write``); the writer repairs by
  truncating back to the last committed offset and retrying;
* **fsync** — ``os.fsync`` raises ``OSError`` after the bytes were
  buffered; the frame cannot be considered committed;
* **enospc** — the write fails up front with ``ENOSPC``;
* **duplicate** — the frame is durably appended *twice* (a retried
  write whose first attempt actually landed); readers must dedupe by
  sequence number.

Faults are *transient* by default: only attempt 0 of a record is
faulted, so a retrying writer always makes progress ("faults cost
time, never results" — ``docs/robustness.md``).  With
``transient=False`` every attempt faults and the writer surfaces
:class:`~repro.service.journal.JournalError` after its retry budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ModelError

__all__ = ["DiskChaosPolicy", "DiskFault"]

#: fault kinds in draw order (fixed so each marginal rate is
#: independent of the other rates)
_FAULT_KINDS = ("torn", "fsync", "enospc", "duplicate")


@dataclass(frozen=True)
class DiskFault:
    """The storage fault injected into one ``(record, attempt)`` append."""

    kind: str | None

    @property
    def any(self) -> bool:
        return self.kind is not None


@dataclass(frozen=True)
class DiskChaosPolicy:
    """Deterministic, seeded storage-fault schedule.

    Parameters
    ----------
    torn_rate / fsync_rate / enospc_rate / duplicate_rate:
        Per-append probability of each fault kind.  At most one fault
        fires per attempt; when several are drawn the earliest in
        ``(torn, fsync, enospc, duplicate)`` order wins.
    seed:
        Root of the decision stream.  Decisions for a given
        ``(record_index, attempt)`` are independent of every other pair
        and of execution order.
    transient:
        When true (default) faults fire only on attempt 0, so a
        retrying writer always commits.  When false, faults fire on
        every attempt of an afflicted record.
    """

    torn_rate: float = 0.0
    fsync_rate: float = 0.0
    enospc_rate: float = 0.0
    duplicate_rate: float = 0.0
    seed: int = 0
    transient: bool = True

    def __post_init__(self) -> None:
        for name in (
            "torn_rate",
            "fsync_rate",
            "enospc_rate",
            "duplicate_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(
                    f"{name} must lie in [0, 1], got {value}"
                )
        if self.seed < 0:
            raise ModelError(f"seed must be >= 0, got {self.seed}")

    def decide(self, record_index: int, attempt: int) -> DiskFault:
        """The fault this policy injects into one append attempt.

        Pure and deterministic: the same
        ``(seed, record_index, attempt)`` always yields the same
        decision, in any process.
        """
        if record_index < 0 or attempt < 0:
            raise ModelError("record_index and attempt must be >= 0")
        if self.transient and attempt > 0:
            return DiskFault(kind=None)
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, record_index, attempt))
        )
        rates = (
            self.torn_rate,
            self.fsync_rate,
            self.enospc_rate,
            self.duplicate_rate,
        )
        # Fixed draw order: consume one uniform per kind regardless of
        # earlier outcomes, so each kind's stream is rate-independent.
        draws = [bool(rng.random() < rate) for rate in rates]
        for kind, fired in zip(_FAULT_KINDS, draws):
            if fired:
                return DiskFault(kind=kind)
        return DiskFault(kind=None)

    def expected_faults(self, n_records: int) -> dict[str, int]:
        """First-attempt fault counts over ``n_records`` appends.

        Pure recomputation of what :meth:`decide` will inject — the
        recovery soak uses it to prove that a chaotic run actually
        exercised the fault paths (a zero count means the seed/rate
        combination tests nothing).
        """
        counts = {kind: 0 for kind in _FAULT_KINDS}
        for index in range(n_records):
            fault = self.decide(index, 0)
            if fault.kind is not None:
                counts[fault.kind] += 1
        return counts
