"""DAG-structured application strings (footnote-2 generalization).

Generalizes the paper's linear string model to directed acyclic graphs
of applications: model (:class:`DagString`, :class:`DagSystem`),
two-stage feasibility with critical-path latency
(:func:`analyze_dag`), a topological greedy mapper generalizing the IMR
(:func:`map_dag_string`, :func:`allocate_dags`), and a layered random
workload generator.  All of it collapses to the linear implementation
on chain DAGs — asserted by the equivalence test suite.
"""

from .feasibility import DagFeasibilityReport, analyze_dag, dag_tightness
from .generator import generate_dag_string, generate_dag_system
from .mapper import DagAllocationOutcome, allocate_dags, map_dag_string
from .model import DagEdge, DagString, DagSystem, chain_edges

__all__ = [
    "DagAllocationOutcome",
    "DagEdge",
    "DagFeasibilityReport",
    "DagString",
    "DagSystem",
    "allocate_dags",
    "analyze_dag",
    "chain_edges",
    "dag_tightness",
    "generate_dag_string",
    "generate_dag_system",
    "map_dag_string",
]
