"""Retry with exponential backoff and jitter.

Transient failures — a worker hiccup, a numerically unlucky GA trial
raising, a process pool losing a worker — should be retried, but naive
immediate retries turn one glitch into a thundering herd.
:func:`retry_call` implements the standard remedy: exponential backoff
with symmetric jitter, capped, and bounded by the caller's remaining
deadline, and :func:`backoff_delays` exposes the bare schedule for
callers that manage their own retry loop (the
:class:`~repro.parallel.supervisor.SupervisedPool` does).

This module is the shared home for both consumers: the online service
(:mod:`repro.service`, which re-exports it from its historical
``repro.service.retry`` path) and the supervised process pool
(:mod:`repro.parallel.supervisor`).

Randomness flows through an injected seeded
:class:`numpy.random.Generator` (RPR002: no ambient RNG state), and the
sleep function is injectable so tests never actually wait.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

import numpy as np

from ..core.exceptions import ModelError

__all__ = ["RetryError", "RetryPolicy", "backoff_delays", "retry_call"]

T = TypeVar("T")


class RetryError(RuntimeError):
    """All attempts failed; ``__cause__`` is the last underlying error."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for transient-failure retries.

    Attempt ``i`` (0-based) sleeps
    ``min(max_delay, base_delay * multiplier**i)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ModelError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ModelError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ModelError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ModelError(f"jitter must lie in [0, 1), got {self.jitter}")


def backoff_delays(
    policy: RetryPolicy, rng: np.random.Generator
) -> Iterator[float]:
    """The jittered sleep (seconds) before each retry, one per re-attempt."""
    for attempt in range(policy.max_attempts - 1):
        nominal = min(
            policy.max_delay, policy.base_delay * policy.multiplier**attempt
        )
        scale = 1.0 + policy.jitter * float(rng.uniform(-1.0, 1.0))
        yield nominal * scale


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    rng: np.random.Generator | int | None = None,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    give_up_after: Callable[[], bool] | None = None,
) -> T:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    Parameters
    ----------
    fn:
        Zero-argument callable (close over the real arguments).
    policy:
        Backoff schedule; defaults to :class:`RetryPolicy`'s defaults.
    rng:
        Seed or generator for the jitter draw.
    retry_on:
        Exception types considered transient; anything else propagates
        immediately.
    sleep:
        Injectable sleep (tests pass a recorder).
    give_up_after:
        Optional predicate checked before every retry; returning True
        (e.g. "the request deadline expired") stops retrying and raises
        :class:`RetryError` from the last failure.

    Raises
    ------
    RetryError
        When every attempt failed (or ``give_up_after`` cut retries
        short); chained from the final underlying exception.
    """
    policy = policy or RetryPolicy()
    generator = np.random.default_rng(rng)
    delays = backoff_delays(policy, generator)
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == policy.max_attempts - 1:
                break
            if give_up_after is not None and give_up_after():
                raise RetryError(
                    f"gave up after {attempt + 1} attempt(s): deadline "
                    "pressure"
                ) from exc
            sleep(next(delays))
    raise RetryError(
        f"all {policy.max_attempts} attempts failed"
    ) from last
