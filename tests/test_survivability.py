"""Tests for the survivability experiment and its CLI surface."""

import pytest

from repro.cli import main
from repro.experiments import run_survivability
from repro.experiments.runner import ExperimentScale
from repro.workload import SCENARIO_3

TINY = ExperimentScale(
    name="tiny",
    n_runs=2,
    size_factor=1.0,
    population_size=8,
    max_iterations=20,
    max_stale_iterations=10,
    n_trials=1,
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_survivability(
        scenario=SCENARIO_3.scaled(n_strings=8, n_machines=4),
        scale=TINY,
        heuristics=("mwf", "tf"),
        policies=("shed", "repair"),
        n_faults=3,
        base_seed=77,
    )


class TestRunSurvivability:
    def test_one_cell_per_heuristic_policy_pair(self, tiny_result):
        cells = tiny_result["cells"]
        assert set(cells) == {
            ("mwf", "shed"), ("mwf", "repair"),
            ("tf", "shed"), ("tf", "repair"),
        }

    def test_cis_cover_all_runs(self, tiny_result):
        for cell in tiny_result["cells"].values():
            assert cell.retained.n == TINY.n_runs
            assert cell.retained.level == pytest.approx(0.95)
            assert cell.retained.half_width >= 0.0

    def test_repair_mean_at_least_shed_mean(self, tiny_result):
        cells = tiny_result["cells"]
        for h in ("mwf", "tf"):
            assert (
                cells[(h, "repair")].retained.mean
                >= cells[(h, "shed")].retained.mean - 1e-9
            )

    def test_shed_never_moves_strings(self, tiny_result):
        for (_h, policy), cell in tiny_result["cells"].items():
            if policy == "shed":
                assert cell.moved.mean == pytest.approx(0.0)

    def test_fault_scenarios_are_kind_diverse(self, tiny_result):
        # with n_faults=3 the sampler guarantees >= 3 distinct kinds,
        # so each run's description lists three different event lines
        assert len(tiny_result["faults"]) == TINY.n_runs
        for description in tiny_result["faults"]:
            assert "net effect" in description

    def test_criticality_ranked_and_complete(self, tiny_result):
        ranking = tiny_result["criticality"]
        assert len(ranking) == 4  # one per machine
        means = [ci.mean for _j, ci in ranking]
        assert means == sorted(means, reverse=True)

    def test_tables_render(self, tiny_result):
        assert "worth retained" in tiny_result["table"]
        assert "machine" in tiny_result["criticality_table"]

    def test_criticality_can_be_disabled(self):
        out = run_survivability(
            scenario=SCENARIO_3.scaled(n_strings=6, n_machines=3),
            scale=TINY,
            heuristics=("mwf",),
            policies=("shed",),
            n_faults=2,
            base_seed=5,
            rank_criticality=False,
        )
        assert out["criticality"] == []
        assert "disabled" in out["criticality_table"]


class TestCli:
    def test_survivability_smoke(self, capsys):
        rc = main([
            "survivability", "--scale", "smoke", "--scenario", "3",
            "--heuristics", "mwf,tf", "--policies", "shed,repair",
            "--faults", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worth retained" in out
        assert "Critical machines" in out
        assert "shed" in out and "repair" in out

    def test_inject_roundtrip(self, tmp_path, capsys):
        model = tmp_path / "model.json"
        alloc = tmp_path / "alloc.json"
        recovered = tmp_path / "recovered.json"
        assert main([
            "generate", "--scenario", "3", "--seed", "7",
            "--strings", "6", "--machines", "3", "-o", str(model),
        ]) == 0
        assert main([
            "allocate", "--model", str(model),
            "--heuristic", "mwf", "-o", str(alloc),
        ]) == 0
        rc = main([
            "inject", "--model", str(model), "--allocation", str(alloc),
            "--fault", "machine:0", "--fault", "degrade-route:1-2:0.5",
            "--policy", "repair", "-o", str(recovered),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "machine 0 failed" in out
        assert "retained" in out
        assert recovered.exists()

    def test_figure_accepts_checkpoint_and_timeout(self, tmp_path, capsys):
        ckpt = tmp_path / "fig.ck.json"
        args = [
            "fig5", "--scale", "smoke", "--no-ub",
            "--checkpoint", str(ckpt), "--run-timeout", "300",
        ]
        assert main(args) == 0
        assert ckpt.exists()
        capsys.readouterr()
        # second invocation resumes from the checkpoint
        assert main(args) == 0
        assert "slackness" in capsys.readouterr().out
