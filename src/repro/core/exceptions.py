"""Exception hierarchy for the TSCE reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Exceptions are deliberately fine-grained: the
allocation heuristics distinguish between *model* errors (malformed input),
*allocation* errors (an assignment that is structurally impossible), and
*solver* errors (the LP substrate failed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .feasibility import Violation

__all__ = [
    "ReproError",
    "ModelError",
    "AllocationError",
    "InfeasibleError",
    "SolverError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ModelError(ReproError):
    """A system-model object (machine, route, string, ...) is malformed.

    Raised during model validation, e.g. a negative period, a string whose
    output-size vector does not match its application count, or a network
    whose bandwidth matrix is not square.
    """


class AllocationError(ReproError):
    """An allocation refers to entities that do not exist in the model.

    This is *structural* invalidity (bad machine index, unmapped
    application), distinct from a mapping that is structurally fine but
    fails the paper's two-stage feasibility analysis.
    """


class InfeasibleError(ReproError):
    """A mapping (or LP) admits no feasible solution.

    Carries an optional ``violations`` list describing which constraints
    failed; see :class:`repro.core.feasibility.FeasibilityReport`.
    """

    def __init__(
        self, message: str, violations: Sequence["Violation"] | None = None
    ) -> None:
        super().__init__(message)
        #: Structured description of the constraint failures, if available.
        self.violations: list["Violation"] = list(violations or [])


class SolverError(ReproError):
    """The underlying LP solver failed (did not converge / numerical issue)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
