"""Deterministic affinity partitioning of a fleet into K shards.

Zones are the unit of machine locality (intra-zone links are faster —
see :mod:`repro.workload.fleet`), so the partitioner works zone-first:

1. **Zones → shards** by greedy balanced assignment: zones in
   descending machine-count order (ties by zone id) each go to the
   currently smallest shard (ties by shard index).  Purely structural —
   no randomness — so a given ``(workload, n_shards)`` always yields
   the same machine split.
2. **Strings → shards** by transfer affinity: a string lands with its
   route peers — the shard holding its home zone.  When a cross-zone
   string's home and peer zones fall into *different* shards, a seeded
   coin (one :class:`~numpy.random.SeedSequence` per string id) picks
   between the two candidates, so the split is reproducible: same seed
   ⇒ same shards, regardless of iteration order or platform.

Every machine and every string lands in exactly one shard; shard
machine/string id lists are sorted ascending so downstream
materialization is order-canonical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import ModelError
from ..workload.fleet import FleetWorkload

__all__ = ["FleetPartition", "Shard", "partition_fleet"]

#: Domain separator for the tie-break seed stream (disjoint from the
#: workload-generation tags in :mod:`repro.workload.fleet`).
_TIEBREAK_TAG = 0x5A4D


@dataclass(frozen=True)
class Shard:
    """One shard: a machine subset plus the strings assigned to it."""

    index: int
    #: Global machine ids, ascending.
    machine_ids: tuple[int, ...]
    #: Global string ids, ascending.
    string_ids: tuple[int, ...]
    #: Zones whose machines this shard holds, ascending.
    zones: tuple[int, ...]

    @property
    def n_machines(self) -> int:
        return len(self.machine_ids)

    @property
    def n_strings(self) -> int:
        return len(self.string_ids)


@dataclass(frozen=True)
class FleetPartition:
    """A complete K-way split of one fleet workload."""

    n_shards: int
    shards: tuple[Shard, ...]
    #: Zone index -> shard index.
    shard_of_zone: tuple[int, ...]
    #: Global string id -> shard index.
    shard_of_string: tuple[int, ...]

    def shard_of_machine(self, workload: FleetWorkload, machine_id: int) -> int:
        """Shard index holding a global machine id."""
        return self.shard_of_zone[int(workload.zone_of[machine_id])]


def partition_fleet(
    workload: FleetWorkload,
    n_shards: int,
    *,
    seed: int | None = None,
) -> FleetPartition:
    """Split a fleet into ``n_shards`` affinity shards, deterministically.

    ``seed`` drives only the cross-shard tie-break coins and defaults to
    the workload's own seed, so a ``(workload, n_shards)`` pair is fully
    reproducible with no extra state.  Requires
    ``1 <= n_shards <= n_zones`` (zones are indivisible).
    """
    scn = workload.scenario
    if not (1 <= n_shards <= scn.n_zones):
        raise ModelError(
            f"n_shards must satisfy 1 <= n_shards <= n_zones="
            f"{scn.n_zones}, got {n_shards}"
        )
    if seed is None:
        seed = workload.seed

    # -- zones -> shards: greedy balance on machine counts ------------
    zone_sizes = [
        int((workload.zone_of == z).sum()) for z in range(scn.n_zones)
    ]
    order = sorted(range(scn.n_zones), key=lambda z: (-zone_sizes[z], z))
    shard_machines = [0] * n_shards
    shard_of_zone = [0] * scn.n_zones
    for z in order:
        target = min(range(n_shards), key=lambda i: (shard_machines[i], i))
        shard_of_zone[z] = target
        shard_machines[target] += zone_sizes[z]

    # -- strings -> shards: home-zone affinity with seeded tie-breaks -
    shard_of_string = [0] * workload.n_strings
    for s in workload.strings:
        home = shard_of_zone[s.home_zone]
        peer = shard_of_zone[s.peer_zone]
        if home == peer:
            shard_of_string[s.string_id] = home
        else:
            rng = np.random.default_rng(
                np.random.SeedSequence((seed, _TIEBREAK_TAG, s.string_id))
            )
            shard_of_string[s.string_id] = (
                home if float(rng.uniform()) < 0.5 else peer
            )

    shards = []
    for i in range(n_shards):
        zones = tuple(z for z in range(scn.n_zones) if shard_of_zone[z] == i)
        machine_ids = tuple(
            int(j)
            for j in np.flatnonzero(
                np.isin(workload.zone_of, np.asarray(zones))
            )
        )
        string_ids = tuple(
            k
            for k in range(workload.n_strings)
            if shard_of_string[k] == i
        )
        shards.append(
            Shard(
                index=i,
                machine_ids=machine_ids,
                string_ids=string_ids,
                zones=zones,
            )
        )

    return FleetPartition(
        n_shards=n_shards,
        shards=tuple(shards),
        shard_of_zone=tuple(shard_of_zone),
        shard_of_string=tuple(shard_of_string),
    )
