"""Boundary behavior of the shared tolerance helpers (repro.core.numeric).

These back the RPR001 fix sites: bias == 1.0 (genitor/bias.py),
size_factor == 1.0 (experiments/runner.py), and lower-bound == 0
(lp/simplex.py)."""

from __future__ import annotations

import math

from repro.core.numeric import ABS_TOL, REL_TOL, is_zero, isclose


def test_exact_equality_is_close():
    assert isclose(1.0, 1.0)
    assert isclose(0.0, 0.0)


def test_accumulated_rounding_is_close():
    # 0.1 * 3 != 0.3 exactly — the motivating case for RPR001
    assert 0.1 * 3 != 0.3
    assert isclose(0.1 * 3, 0.3)


def test_one_ulp_apart_is_close():
    x = 1.0
    assert isclose(x, math.nextafter(x, 2.0))


def test_clearly_different_values_are_not_close():
    assert not isclose(1.0, 1.0 + 1e-6)
    assert not isclose(0.0, 1e-9)


def test_relative_tolerance_scales_with_magnitude():
    big = 1e12
    assert isclose(big, big * (1 + REL_TOL / 2))
    assert not isclose(big, big * (1 + 10 * REL_TOL))


def test_abs_tol_covers_near_zero():
    # relative tolerance alone would reject anything vs exactly 0.0
    assert isclose(0.0, ABS_TOL / 2)
    assert not isclose(0.0, ABS_TOL * 10)


def test_custom_tolerances_are_honored():
    assert isclose(1.0, 1.01, rel_tol=0.1)
    assert not isclose(1.0, 1.01, rel_tol=1e-3)
    assert isclose(0.0, 0.5, abs_tol=1.0)


def test_is_zero_boundaries():
    assert is_zero(0.0)
    assert is_zero(ABS_TOL)  # inclusive boundary
    assert is_zero(-ABS_TOL)
    assert not is_zero(ABS_TOL * 2)
    assert not is_zero(1e-6)


def test_is_zero_custom_tolerance():
    assert is_zero(0.5, abs_tol=1.0)
    assert not is_zero(0.5, abs_tol=0.1)


def test_bias_boundary_replay():
    # the exact comparison RPR001 replaced at genitor/bias.py:46
    bias = 0.8 + 0.2  # accumulates rounding error
    assert isclose(bias, 1.0)


def test_simplex_zero_lower_bound_replay():
    # the exact comparison RPR001 replaced at lp/simplex.py:198
    lo = 1.0 - 1.0
    assert is_zero(lo)
    lo_noisy = 0.1 + 0.2 - 0.3  # ~5.5e-17, still "zero" for bounds
    assert lo_noisy != 0.0
    assert is_zero(lo_noisy)
