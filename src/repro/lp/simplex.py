"""In-house dense two-phase simplex solver.

The paper computed its upper bounds with the commercial Lingo 9.0
package.  The primary replacement in this library is HiGHS (via
scipy), but to keep the substrate fully self-contained we also provide
a from-scratch simplex implementation: a classic two-phase tableau
method with Bland's anti-cycling rule, operating on dense arrays.

It is intended for *small* instances (unit tests, didactic use, and
cross-validation of the HiGHS path); :func:`solve_dense_lp` refuses
problems above a size guard rather than grinding.

Standard-form reduction
-----------------------
:class:`~repro.lp.formulation.LPProblem` is a maximization over
variables with box bounds.  We reduce to ``min ĉ·w, Â w = b̂, w ≥ 0``:

* bounded variables ``0 ≤ v ≤ u`` keep their lower bound and gain a slack
  row ``v + s = u``;
* upper-bounded-only variables ``v ≤ u`` substitute ``w = u - v ≥ 0``;
* fully free variables split ``v = w⁺ - w⁻``;
* every ``≤`` row gains a slack variable;
* rows with negative right-hand side are negated;
* phase 1 introduces artificial variables and minimizes their sum;
  phase 2 minimizes the (negated) original objective from the feasible
  basis found.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.exceptions import SolverError
from ..core.numeric import is_zero
from .formulation import LPProblem

__all__ = ["simplex_min", "solve_dense_lp", "SimplexResult", "SIZE_GUARD"]

#: Maximum variable count :func:`solve_dense_lp` accepts.
SIZE_GUARD = 3_000

_EPS = 1e-9


@dataclass
class SimplexResult:
    """Raw outcome of :func:`simplex_min`."""

    x: np.ndarray
    objective: float
    iterations: int


def _pivot(T: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """In-place tableau pivot on (row, col)."""
    T[row] /= T[row, col]
    pivot_col = T[:, col].copy()
    pivot_col[row] = 0.0
    # Rank-1 update of all other rows (vectorized — the O(mn) kernel).
    T -= np.outer(pivot_col, T[row])
    basis[row] = col


def _run_phase(
    T: np.ndarray, basis: np.ndarray, n_cols: int, max_iter: int
) -> int:
    """Iterate pivots until optimality; returns iteration count.

    ``T`` is the tableau with the objective in the last row and RHS in
    the last column.  Bland's rule: entering variable = lowest-index
    column with negative reduced cost; leaving row = min-ratio with
    lowest basis index tie-break.
    """
    iterations = 0
    m = T.shape[0] - 1
    while True:
        reduced = T[-1, :n_cols]
        entering_candidates = np.flatnonzero(reduced < -_EPS)
        if entering_candidates.size == 0:
            return iterations
        col = int(entering_candidates[0])  # Bland: smallest index
        column = T[:m, col]
        positive = column > _EPS
        if not positive.any():
            raise SolverError("LP is unbounded")
        ratios = np.full(m, np.inf)
        ratios[positive] = T[:m, -1][positive] / column[positive]
        best = ratios.min()
        ties = np.flatnonzero(ratios <= best + _EPS)
        row = int(ties[np.argmin(basis[ties])])  # Bland tie-break
        _pivot(T, basis, row, col)
        iterations += 1
        if iterations > max_iter:
            raise SolverError(
                f"simplex exceeded {max_iter} iterations (cycling guard)"
            )


def simplex_min(
    A: np.ndarray, b: np.ndarray, c: np.ndarray, max_iter: int | None = None
) -> SimplexResult:
    """Two-phase simplex: ``min c·x`` s.t. ``A x = b``, ``x ≥ 0``.

    Raises :class:`~repro.core.exceptions.SolverError` when the problem
    is infeasible or unbounded.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float).copy()
    c = np.asarray(c, dtype=float)
    m, n = A.shape
    if b.shape != (m,) or c.shape != (n,):
        raise SolverError("inconsistent LP dimensions")
    if max_iter is None:
        max_iter = 50 * (m + n) + 1_000

    A = A.copy()
    neg = b < 0
    A[neg] *= -1.0
    b[neg] *= -1.0

    # ---- phase 1 ------------------------------------------------------------
    # Tableau columns: [original n | artificial m | rhs]
    T = np.zeros((m + 1, n + m + 1))
    T[:m, :n] = A
    T[:m, n : n + m] = np.eye(m)
    T[:m, -1] = b
    basis = np.arange(n, n + m)
    # Phase-1 objective: minimize sum of artificials -> reduced costs.
    T[-1, :n] = -A.sum(axis=0)
    T[-1, -1] = -b.sum()
    it1 = _run_phase(T, basis, n + m, max_iter)
    if T[-1, -1] < -1e-7:
        raise SolverError("LP is infeasible")

    # Drive any artificial variables out of the basis (degenerate case).
    for row in range(m):
        if basis[row] >= n:
            pivot_cols = np.flatnonzero(np.abs(T[row, :n]) > _EPS)
            if pivot_cols.size:
                _pivot(T, basis, row, int(pivot_cols[0]))
            # else: redundant row; the artificial stays basic at 0.

    # ---- phase 2 ------------------------------------------------------------
    T2 = np.zeros((m + 1, n + 1))
    T2[:m, :n] = T[:m, :n]
    T2[:m, -1] = T[:m, -1]
    T2[-1, :n] = c
    # Make reduced costs consistent with the current basis.
    for row in range(m):
        col = basis[row]
        if col < n and abs(T2[-1, col]) > 0:
            T2[-1] -= T2[-1, col] * T2[row]
    # Lock out any still-basic artificials by forbidding their columns
    # (they are absent from T2 entirely, so nothing to do).
    it2 = _run_phase(T2, basis, n, max_iter)

    x = np.zeros(n)
    for row in range(m):
        if basis[row] < n:
            x[basis[row]] = T2[row, -1]
    return SimplexResult(x=x, objective=float(c @ x), iterations=it1 + it2)


def _standardize(
    problem: LPProblem,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, Callable[[np.ndarray], np.ndarray]]:
    """Reduce an :class:`LPProblem` to ``min c·w, A w = b, w ≥ 0``.

    Returns ``(A, b, c, recover)`` where ``recover`` maps a standard-form
    solution back to the original variable vector.
    """
    n = problem.n_vars
    A_ub = problem.A_ub.toarray() if problem.A_ub.shape[0] else np.zeros((0, n))
    A_eq = problem.A_eq.toarray() if problem.A_eq.shape[0] else np.zeros((0, n))
    b_ub = np.asarray(problem.b_ub, dtype=float)
    b_eq = np.asarray(problem.b_eq, dtype=float)
    c_max = np.asarray(problem.c, dtype=float)

    # Per-variable transform: v = scale * w_primary (+ offset) [+ -w_secondary]
    cols: list[np.ndarray] = []       # coefficient columns in (ub; eq) rows
    costs: list[float] = []
    recover_terms: list[tuple[int, float]] = []  # (std col, scale) per var
    offsets = np.zeros(n)
    extra_rows: list[np.ndarray] = []
    extra_rhs: list[float] = []

    stacked = np.vstack([A_ub, A_eq]) if (A_ub.size or A_eq.size) else np.zeros((0, n))
    n_ub = A_ub.shape[0]

    std_cols: list[tuple[int, float]] = []
    col_count = 0
    col_map: list[list[tuple[int, float]]] = []
    for v in range(n):
        lo, hi = problem.bounds[v]
        terms: list[tuple[int, float]] = []
        if lo is not None and is_zero(lo):
            terms.append((col_count, 1.0))
            col_count += 1
            if hi is not None:
                # v <= hi becomes an extra ≤ row handled below via slack.
                row = np.zeros(n)
                row[v] = 1.0
                extra_rows.append(row)
                extra_rhs.append(float(hi))
        elif lo is None and hi is not None:
            # v = hi - w, w >= 0
            offsets[v] = float(hi)
            terms.append((col_count, -1.0))
            col_count += 1
        elif lo is None and hi is None:
            terms.append((col_count, 1.0))
            terms.append((col_count + 1, -1.0))
            col_count += 2
        else:
            # general finite lower bound: shift v = lo + w
            offsets[v] = float(lo)
            terms.append((col_count, 1.0))
            col_count += 1
            if hi is not None:
                row = np.zeros(n)
                row[v] = 1.0
                extra_rows.append(row)
                extra_rhs.append(float(hi))
        col_map.append(terms)

    all_ub = np.vstack([A_ub] + [r[None, :] for r in extra_rows]) if (
        A_ub.size or extra_rows
    ) else np.zeros((0, n))
    all_b_ub = np.concatenate([b_ub, np.asarray(extra_rhs)]) if (
        b_ub.size or extra_rhs
    ) else np.zeros(0)
    m_ub = all_ub.shape[0]
    m_eq = A_eq.shape[0]
    m = m_ub + m_eq
    n_std = col_count + m_ub  # + one slack per ≤ row

    A = np.zeros((m, n_std))
    b = np.zeros(m)
    c = np.zeros(n_std)
    orig = np.vstack([all_ub, A_eq]) if m else np.zeros((0, n))
    rhs = np.concatenate([all_b_ub, b_eq]) if m else np.zeros(0)

    for v in range(n):
        col_orig = orig[:, v] if m else np.zeros(0)
        for std_col, scale in col_map[v]:
            A[:, std_col] += scale * col_orig
            c[std_col] += -scale * c_max[v]  # minimize -c_max·v
    # constant offsets move to the RHS
    if m:
        rhs = rhs - orig @ offsets
    b[:] = rhs
    for r in range(m_ub):
        A[r, col_count + r] = 1.0

    def recover(w: np.ndarray) -> np.ndarray:
        v = offsets.copy()
        for vi in range(n):
            for std_col, scale in col_map[vi]:
                v[vi] += scale * w[std_col]
        return v

    return A, b, c, recover


def solve_dense_lp(problem: LPProblem) -> np.ndarray:
    """Solve a (small) :class:`LPProblem` with the in-house simplex.

    Raises :class:`SolverError` for problems larger than
    :data:`SIZE_GUARD` variables — use HiGHS for those.
    """
    if problem.n_vars > SIZE_GUARD:
        raise SolverError(
            f"{problem.n_vars} variables exceed the dense-simplex guard "
            f"({SIZE_GUARD}); use solver='highs'"
        )
    A, b, c, recover = _standardize(problem)
    result = simplex_min(A, b, c)
    return recover(result.x)
