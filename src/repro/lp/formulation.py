"""Fractional-mapping LP formulation (Section 7).

Builds the paper's upper-bound linear program in sparse matrix form.
Decision variables:

* ``x[i, k, j]`` — fraction of application ``a^k_i`` assigned to machine
  ``j``;
* ``y[i, k, j1, j2]`` — fraction of the output of ``a^k_i`` (its transfer
  to ``a^k_{i+1}``) carried by the route ``j1 → j2``.

Constraints (paper labels in parentheses; all indices 0-based here):

* (a) ``Σ_j x[0, k, j] ≤ 1`` (partial objective) or ``= 1`` (complete);
* (b) ``Σ_j x[i, k, j] = Σ_j x[0, k, j]`` for ``i ≥ 1`` — equal fractions
  along a string;
* (c) ``x, y ≥ 0``;
* (d) ``x[i, k, j1] = Σ_{j2} y[i, k, j1, j2]`` — an application fraction
  emits the equivalent output fraction;
* (e) ``x[i+1, k, j2] = Σ_{j1} y[i, k, j1, j2]`` — an application
  fraction receives the equivalent input fraction;
* (f) machine utilization (eq. 10) at most 1;
* (g) route utilization (eq. 11) at most 1 for every inter-machine
  route.  Intra-machine ``y`` variables exist (they carry flow) but are
  unconstrained in capacity — their bandwidth is infinite.

Objectives:

* ``partial`` — maximize total worth ``Σ_k I[k] · f_k`` with
  ``f_k = Σ_j x[0, k, j]``.  The paper prints
  ``Σ_k Σ_i I[k] Σ_j x[i, k, j]``, which under (b) equals
  ``Σ_k I[k] · n_k · f_k`` — weighting strings by length, inconsistent
  with the Section-4 worth metric.  Only the unweighted form is a valid
  upper bound for the reported metric; the printed variant is available
  via ``weight_by_length=True`` (see DESIGN.md interpretation 1).
* ``complete`` — maximize system slackness: an extra variable ``λ`` with
  ``U_resource + λ ≤ 1`` for every machine and inter-machine route, all
  strings forced fully mapped.

The builder returns a :class:`LPProblem` consumable by both
:mod:`repro.lp.upper_bound` (HiGHS) and — for small instances — the
in-house :mod:`repro.lp.simplex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from ..core.exceptions import ModelError
from ..core.model import SystemModel

__all__ = ["VariableIndex", "LPProblem", "build_upper_bound_lp"]


class VariableIndex:
    """Dense numbering of the ``x``/``y`` (and optional λ) variables.

    Provides O(1) translation between the paper's multi-index notation
    and flat column numbers, for both the builder and solution readers.
    """

    def __init__(self, model: SystemModel, with_slack_var: bool):
        M = model.n_machines
        self._x_base: list[int] = []
        self._y_base: list[int] = []
        cursor = 0
        for s in model.strings:
            self._x_base.append(cursor)
            cursor += s.n_apps * M
        for s in model.strings:
            self._y_base.append(cursor)
            cursor += max(s.n_apps - 1, 0) * M * M
        self.lambda_index: int | None = cursor if with_slack_var else None
        self.n_vars = cursor + (1 if with_slack_var else 0)
        self.n_machines = M
        self.model = model

    def x(self, i: int, k: int, j: int) -> int:
        """Column of ``x[i, k, j]``."""
        return self._x_base[k] + i * self.n_machines + j

    def y(self, i: int, k: int, j1: int, j2: int) -> int:
        """Column of ``y[i, k, j1, j2]`` (transfer ``i -> i+1``)."""
        M = self.n_machines
        return self._y_base[k] + (i * M + j1) * M + j2

    def x_block(self, i: int, k: int) -> slice:
        """Columns of ``x[i, k, :]``."""
        start = self._x_base[k] + i * self.n_machines
        return slice(start, start + self.n_machines)

    def y_block(self, i: int, k: int) -> slice:
        """Columns of ``y[i, k, :, :]`` flattened row-major."""
        M = self.n_machines
        start = self._y_base[k] + i * M * M
        return slice(start, start + M * M)


@dataclass
class LPProblem:
    """A maximization LP: ``max c·v`` s.t. ``A_ub v ≤ b_ub``,
    ``A_eq v = b_eq``, ``lb ≤ v ≤ ub``.

    ``scipy.optimize.linprog`` minimizes, so solvers negate ``c``.
    """

    c: np.ndarray
    A_ub: sparse.csr_matrix
    b_ub: np.ndarray
    A_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: list[tuple[float | None, float | None]]
    index: VariableIndex
    objective: str
    notes: dict = field(default_factory=dict)

    @property
    def n_vars(self) -> int:
        return self.index.n_vars


def build_upper_bound_lp(
    model: SystemModel,
    objective: str = "partial",
    weight_by_length: bool = False,
) -> LPProblem:
    """Construct the Section-7 LP for a model.

    Parameters
    ----------
    model:
        The problem instance.
    objective:
        ``"partial"`` (scenarios 1–2: maximize worth, fractional strings
        allowed) or ``"complete"`` (scenario 3: maximize slackness, all
        strings fully mapped).
    weight_by_length:
        Use the paper's printed (length-weighted) worth objective instead
        of the Section-4-consistent one.  Ignored for ``"complete"``.
    """
    if objective not in ("partial", "complete"):
        raise ModelError(
            f"objective must be 'partial' or 'complete', got {objective!r}"
        )
    complete = objective == "complete"
    idx = VariableIndex(model, with_slack_var=complete)
    M = model.n_machines
    net = model.network

    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    b_eq: list[float] = []
    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_vals: list[float] = []
    b_ub: list[float] = []

    def add_eq(cols: list[int], vals: list[float], rhs: float) -> None:
        row = len(b_eq)
        eq_rows.extend([row] * len(cols))
        eq_cols.extend(cols)
        eq_vals.extend(vals)
        b_eq.append(rhs)

    def add_ub(cols: list[int], vals: list[float], rhs: float) -> None:
        row = len(b_ub)
        ub_rows.extend([row] * len(cols))
        ub_cols.extend(cols)
        ub_vals.extend(vals)
        b_ub.append(rhs)

    # ---- per-string structural constraints (a), (b), (d), (e) ---------------
    for k, s in enumerate(model.strings):
        first_cols = [idx.x(0, k, j) for j in range(M)]
        if complete:
            add_eq(first_cols, [1.0] * M, 1.0)  # (a) with equality
        else:
            add_ub(first_cols, [1.0] * M, 1.0)  # (a)
        for i in range(1, s.n_apps):  # (b)
            cols = [idx.x(i, k, j) for j in range(M)] + first_cols
            vals = [1.0] * M + [-1.0] * M
            add_eq(cols, vals, 0.0)
        for i in range(s.n_apps - 1):
            for j1 in range(M):  # (d)
                cols = [idx.y(i, k, j1, j2) for j2 in range(M)]
                cols.append(idx.x(i, k, j1))
                add_eq(cols, [1.0] * M + [-1.0], 0.0)
            for j2 in range(M):  # (e)
                cols = [idx.y(i, k, j1, j2) for j1 in range(M)]
                cols.append(idx.x(i + 1, k, j2))
                add_eq(cols, [1.0] * M + [-1.0], 0.0)

    # ---- capacity constraints (f), (g) ----------------------------------------
    lam = [idx.lambda_index] if complete else []
    lam_val = [1.0] if complete else []
    for j in range(M):  # (f): eq. 10
        cols: list[int] = []
        vals: list[float] = []
        for k, s in enumerate(model.strings):
            share = s.work[:, j] / s.period  # t*u/P per app on machine j
            for i in range(s.n_apps):
                cols.append(idx.x(i, k, j))
                vals.append(float(share[i]))
        add_ub(cols + lam, vals + lam_val, 1.0)
    for j1 in range(M):  # (g): eq. 11
        for j2 in range(M):
            if j1 == j2:
                continue
            inv_w = net.inv_bandwidth[j1, j2]
            cols = []
            vals = []
            for k, s in enumerate(model.strings):
                for i in range(s.n_apps - 1):
                    cols.append(idx.y(i, k, j1, j2))
                    vals.append(float(s.output_sizes[i] / s.period * inv_w))
            add_ub(cols + lam, vals + lam_val, 1.0)

    # ---- objective -----------------------------------------------------------
    c = np.zeros(idx.n_vars)
    if complete:
        c[idx.lambda_index] = 1.0
    else:
        for k, s in enumerate(model.strings):
            apps = range(s.n_apps) if weight_by_length else (0,)
            for i in apps:
                for j in range(M):
                    c[idx.x(i, k, j)] += s.worth

    bounds: list[tuple[float | None, float | None]] = [
        (0.0, 1.0)
    ] * (idx.n_vars - (1 if complete else 0))
    if complete:
        # Slackness can be negative only for over-committed fractional
        # mappings, which (f)/(g) forbid; cap at 1 (empty system).
        bounds = bounds + [(None, 1.0)]

    n_vars = idx.n_vars
    A_eq = sparse.coo_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(len(b_eq), n_vars)
    ).tocsr()
    A_ub = sparse.coo_matrix(
        (ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), n_vars)
    ).tocsr()
    return LPProblem(
        c=c,
        A_ub=A_ub,
        b_ub=np.asarray(b_ub),
        A_eq=A_eq,
        b_eq=np.asarray(b_eq),
        bounds=bounds,
        index=idx,
        objective=objective,
        notes={
            "weight_by_length": weight_by_length,
            "n_eq": len(b_eq),
            "n_ub": len(b_ub),
        },
    )
