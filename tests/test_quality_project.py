"""Whole-program analyzer: ProjectContext plumbing and RPR009-RPR012.

Every rule gets at least one true-positive fixture (a small synthetic
package tree that must trigger it) and negative cases showing the
sanctioned patterns pass.  The live-tree guarantee (all twelve rules
clean over ``src/repro``) lives in test_quality_engine.py.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.quality import PROJECT_RULES, ProjectRule, lint_paths
from repro.quality.project_rules import LAYERS

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, content in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content)


def _project_lint(root: Path, rule_id: str):
    report = lint_paths([root], rules=[PROJECT_RULES[rule_id]])
    return report.findings


def _messages(findings) -> list[str]:
    return [f"{f.rule_id}: {f.message}" for f in findings]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_project_registry_holds_the_four_documented_rules():
    assert sorted(PROJECT_RULES) == ["RPR009", "RPR010", "RPR011", "RPR012"]
    for rule_id, rule in PROJECT_RULES.items():
        assert isinstance(rule, ProjectRule)
        assert rule.rule_id == rule_id
        assert rule.summary
        # the per-file hook must be a no-op so mixed rule lists are safe
        assert list(rule.check(None)) == []


def test_layer_map_covers_every_shipped_subpackage():
    import repro

    src = Path(repro.__file__).resolve().parent
    shipped = {
        p.name for p in src.iterdir() if (p / "__init__.py").exists()
    }
    assert shipped <= set(LAYERS), shipped - set(LAYERS)
    assert LAYERS["core"] == 0
    assert LAYERS["core"] < LAYERS["heuristics"] < LAYERS["experiments"]
    assert LAYERS["experiments"] < LAYERS["service"] < LAYERS["cli"]


# ---------------------------------------------------------------------------
# RPR009 — fork/pickle safety
# ---------------------------------------------------------------------------


def test_rpr009_flags_lambda_submitted_to_pool(tmp_path):
    _write_tree(tmp_path, {
        "runner.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run():\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(lambda x: x + 1, 1)\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR009")
    assert any("lambda" in f.message for f in found), _messages(found)


def test_rpr009_flags_nested_function_submitted_to_pool(tmp_path):
    _write_tree(tmp_path, {
        "runner.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run():\n"
            "    def inner(x):\n"
            "        return x\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(inner, 1)\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR009")
    assert any("nested function `inner`" in f.message for f in found)


def test_rpr009_follows_worker_across_modules_to_global_mutation(tmp_path):
    _write_tree(tmp_path, {
        "worker.py": (
            "CACHE = {}\n"
            "def work(x):\n"
            "    CACHE[x] = x * 2\n"
            "    return CACHE[x]\n"
        ),
        "runner.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from worker import work\n"
            "def run():\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(work, 3)\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR009")
    hits = [f for f in found if "mutates module global `CACHE`" in f.message]
    assert hits, _messages(found)
    # anchored in the worker's module, where the fix belongs
    assert hits[0].path.endswith("worker.py")


def test_rpr009_flags_setflags_write_true(tmp_path):
    _write_tree(tmp_path, {
        "views.py": (
            "import numpy as np\n"
            "def thaw(arr):\n"
            "    arr.setflags(write=True)\n"
            "    return arr\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR009")
    assert any("setflags(write=True)" in f.message for f in found)


def test_rpr009_accepts_module_level_pure_worker(tmp_path):
    _write_tree(tmp_path, {
        "worker.py": (
            "def work(x):\n"
            "    acc = {}\n"
            "    acc[x] = x * 2\n"
            "    return acc[x]\n"
        ),
        "runner.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from worker import work\n"
            "def run():\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(work, 3)\n"
        ),
    })
    assert _project_lint(tmp_path, "RPR009") == ()


# ---------------------------------------------------------------------------
# RPR010 — RNG provenance
# ---------------------------------------------------------------------------


def test_rpr010_flags_no_arg_default_rng(tmp_path):
    _write_tree(tmp_path, {
        "gen.py": (
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR010")
    assert any("no seed" in f.message for f in found)


def test_rpr010_flags_entropy_seed(tmp_path):
    _write_tree(tmp_path, {
        "gen.py": (
            "import time\n"
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng(int(time.time()))\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR010")
    assert any("entropy source" in f.message for f in found)


def test_rpr010_flags_entropy_through_local_assignment(tmp_path):
    _write_tree(tmp_path, {
        "gen.py": (
            "import time\n"
            "import numpy as np\n"
            "def fresh():\n"
            "    t = time.time()\n"
            "    return np.random.default_rng(t)\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR010")
    assert any("does not derive" in f.message for f in found)


def test_rpr010_flags_entropy_at_cross_module_call_site(tmp_path):
    _write_tree(tmp_path, {
        "maker.py": (
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ),
        "caller.py": (
            "import time\n"
            "from maker import make\n"
            "def bad():\n"
            "    return make(time.time())\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR010")
    hits = [f for f in found if "seed stream of `make`" in f.message]
    assert hits, _messages(found)
    assert hits[0].path.endswith("caller.py")


@pytest.mark.parametrize(
    "body",
    [
        # injected parameter
        "def make(seed):\n    return np.random.default_rng(seed)\n",
        # derived from a parameter
        "def make(seed):\n    return np.random.default_rng(seed * 3 + 1)\n",
        # self state
        "class A:\n"
        "    def gen(self):\n"
        "        return np.random.default_rng(self.base_seed)\n",
        # another generator's output
        "def split(rng):\n"
        "    return np.random.default_rng(rng.integers(2**63))\n",
        # module constant
        "SEED = 1234\n"
        "def make():\n    return np.random.default_rng(SEED)\n",
        # literal seed (deterministic by construction)
        "def make():\n    return np.random.default_rng(42)\n",
    ],
)
def test_rpr010_accepts_injected_seed_patterns(tmp_path, body):
    _write_tree(tmp_path, {"gen.py": "import numpy as np\n" + body})
    assert _project_lint(tmp_path, "RPR010") == ()


def test_rpr010_accepts_clean_cross_module_call_site(tmp_path):
    _write_tree(tmp_path, {
        "maker.py": (
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        ),
        "caller.py": (
            "from maker import make\n"
            "def good(base_seed):\n"
            "    return make(base_seed + 7)\n"
        ),
    })
    assert _project_lint(tmp_path, "RPR010") == ()


# ---------------------------------------------------------------------------
# RPR011 — layering and cycles
# ---------------------------------------------------------------------------


def test_rpr011_flags_import_cycle(tmp_path):
    _write_tree(tmp_path, {
        "alpha.py": "import beta\nX = 1\n",
        "beta.py": "import alpha\nY = 2\n",
    })
    found = _project_lint(tmp_path, "RPR011")
    assert any("import cycle" in f.message for f in found), _messages(found)
    # one finding per cycle, not one per member
    assert sum("import cycle" in f.message for f in found) == 1


def test_rpr011_function_scope_import_breaks_no_cycle(tmp_path):
    _write_tree(tmp_path, {
        "alpha.py": "import beta\nX = 1\n",
        "beta.py": "def late():\n    import alpha\n    return alpha.X\n",
    })
    assert _project_lint(tmp_path, "RPR011") == ()


def test_rpr011_flags_forbidden_upward_layer_edge(tmp_path):
    _write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/core/__init__.py": "from repro.heuristics import helper\n",
        "repro/heuristics/__init__.py": "def helper():\n    return 1\n",
    })
    found = _project_lint(tmp_path, "RPR011")
    hits = [f for f in found if "forbidden layering edge" in f.message]
    assert hits, _messages(found)
    assert "repro.core" in hits[0].message
    assert "repro.heuristics" in hits[0].message


def test_rpr011_accepts_downward_layer_edge(tmp_path):
    _write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/core/__init__.py": "W = 1\n",
        "repro/heuristics/__init__.py": "from repro.core import W\nV = W\n",
    })
    assert _project_lint(tmp_path, "RPR011") == ()


# ---------------------------------------------------------------------------
# RPR012 — export consistency
# ---------------------------------------------------------------------------


def test_rpr012_flags_stale_cross_module_import(tmp_path):
    _write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "__all__ = ['x']\nx = 1\n",
        "pkg/b.py": "from pkg.a import missing\n",
    })
    found = _project_lint(tmp_path, "RPR012")
    assert any(
        "names a symbol the target module never binds" in f.message
        for f in found
    ), _messages(found)


def test_rpr012_respects_module_getattr(tmp_path):
    _write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "def __getattr__(name):\n    return 1\n",
        "pkg/b.py": "from pkg.a import anything\n_use = anything\n",
    })
    assert _project_lint(tmp_path, "RPR012") == ()


def test_rpr012_flags_reexport_all_drift(tmp_path):
    _write_tree(tmp_path, {
        "pkg/__init__.py": (
            "from .m import name\n"
            "__all__ = ['name']\n"
        ),
        "pkg/m.py": "__all__ = []\nname = 1\n",
    })
    found = _project_lint(tmp_path, "RPR012")
    assert any(
        "public surfaces disagree" in f.message for f in found
    ), _messages(found)


def test_rpr012_flags_dead_public_symbol(tmp_path):
    _write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/m.py": (
            "__all__ = ['used']\n"
            "used = 1\n"
            "dead = 2\n"
        ),
    })
    found = _project_lint(tmp_path, "RPR012")
    hits = [f for f in found if "`dead`" in f.message]
    assert hits, _messages(found)
    assert "dead public surface" in hits[0].message


def test_rpr012_accepts_consistent_exports(tmp_path):
    _write_tree(tmp_path, {
        "pkg/__init__.py": (
            "from .m import name\n"
            "__all__ = ['name']\n"
        ),
        "pkg/m.py": "__all__ = ['name']\nname = 1\n",
    })
    assert _project_lint(tmp_path, "RPR012") == ()


def test_rpr012_own_module_use_is_not_dead(tmp_path):
    _write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/m.py": (
            "Alias = tuple[int, ...]\n"
            "def f(x: Alias) -> Alias:\n"
            "    return x\n"
            "__all__ = ['f']\n"
        ),
    })
    assert _project_lint(tmp_path, "RPR012") == ()


# ---------------------------------------------------------------------------
# suppression and engine integration
# ---------------------------------------------------------------------------


def test_project_findings_respect_inline_noqa(tmp_path):
    _write_tree(tmp_path, {
        "gen.py": (
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()  # repro: noqa[RPR010]\n"
        ),
    })
    report = lint_paths([tmp_path], rules=[PROJECT_RULES["RPR010"]])
    assert report.findings == ()
    assert report.suppressed == 1
