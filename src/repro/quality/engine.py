"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is importable (``LintEngine``/:func:`lint_paths` /
:func:`lint_source`) and drives the ``repro lint`` CLI subcommand.  It
parses each file once, runs every enabled rule over the shared AST, then
filters findings through two suppression layers:

* inline ``# repro: noqa`` / ``# repro: noqa[RPR001,RPR004]`` comments on
  the offending line, and
* an optional committed baseline (see :mod:`repro.quality.baseline`) for
  grandfathering findings during incremental adoption.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from .baseline import Baseline
from .findings import Finding
from .rules import RULES, Rule, RuleContext

__all__ = [
    "LintEngine",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".ruff_cache",
        ".mypy_cache",
        "build",
        "dist",
    }
)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up through ``__init__.py``s.

    Falls back to the bare stem for a file outside any package — rules
    scoped by package (RPR004, RPR006) then simply do not apply.
    """
    parts: list[str] = [] if path.stem == "__init__" else [path.stem]
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _noqa_map(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    suppressions: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                token.strip().upper()
                for token in rules.split(",")
                if token.strip()
            )
    return suppressions


@dataclass(frozen=True)
class LintReport:
    """Outcome of one engine run."""

    findings: tuple[Finding, ...]
    suppressed: int = 0
    baselined: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> Mapping[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


@dataclass
class LintEngine:
    """Run a set of rules over files or in-memory source.

    Parameters
    ----------
    rules:
        Rule instances to run; defaults to the full registry.
    baseline:
        Previously-accepted findings to filter out (incremental adoption).
    """

    rules: Sequence[Rule] = field(
        default_factory=lambda: tuple(RULES[rid] for rid in sorted(RULES))
    )
    baseline: Baseline | None = None

    def lint_source(
        self,
        source: str,
        path: str = "<string>",
        module: str | None = None,
    ) -> list[Finding]:
        """Lint a source string; ``module`` controls package-scoped rules."""
        if module is None:
            module = module_name_for(Path(path)) if path != "<string>" else ""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id="RPR000",
                    message=f"syntax error: {exc.msg}",
                    hint="file could not be parsed; no rules were run",
                )
            ]
        ctx = RuleContext(path=path, module=module, tree=tree, source=source)
        raw = [f for rule in self.rules for f in rule.check(ctx)]
        suppressions = _noqa_map(source)
        kept: list[Finding] = []
        for finding in raw:
            allowed = suppressions.get(finding.line, frozenset())
            if allowed is None or (allowed and finding.rule_id in allowed):
                continue
            kept.append(finding)
        return sorted(kept)

    def lint_file(self, path: str | Path) -> list[Finding]:
        file_path = Path(path)
        source = file_path.read_text(encoding="utf-8")
        return self.lint_source(source, path=str(file_path))

    def run(self, paths: Iterable[str | Path]) -> LintReport:
        """Lint every python file under ``paths`` and apply the baseline."""
        findings: list[Finding] = []
        suppressed = 0
        files = 0
        for file_path in iter_python_files(paths):
            files += 1
            source = file_path.read_text(encoding="utf-8")
            raw = self.lint_source(source, path=str(file_path))
            findings.extend(raw)
        baselined = 0
        if self.baseline is not None:
            findings, baselined = self.baseline.filter(findings)
        return LintReport(
            findings=tuple(sorted(findings)),
            suppressed=suppressed,
            baselined=baselined,
            files_checked=files,
        )


def lint_paths(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Functional entry point: lint ``paths`` with ``rules`` (default all)."""
    engine = LintEngine(baseline=baseline)
    if rules is not None:
        engine = LintEngine(rules=tuple(rules), baseline=baseline)
    return engine.run(paths)


def lint_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Functional entry point: lint one source string."""
    engine = LintEngine() if rules is None else LintEngine(rules=tuple(rules))
    return engine.lint_source(source, path=path, module=module)
