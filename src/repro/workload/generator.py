"""Synthetic workload generator (Section 6 + Section 8 formulas).

Generates :class:`~repro.core.model.SystemModel` instances following the
paper's simulation setup exactly:

* a heterogeneous suite of ``M`` machines; each inter-machine route's
  bandwidth sampled uniformly (1–10 Mb/sec by default), intra-machine
  routes infinite;
* strings of 1–10 applications; per (application, machine) nominal
  execution times ``t^k[i,j] ~ U(1, 10)`` s and CPU utilizations
  ``u^k[i,j] ~ U(0.1, 1)`` (independent per pair — inconsistent
  heterogeneity);
* output sizes ``O^k[i] ~ U(10, 100)`` Kbytes;
* worth factors drawn uniformly from ``{1, 10, 100}``;
* the end-to-end latency bound scaled from the *average-value* nominal
  path time (Section 8):

  .. math::

     L_{max}[k] = \\mu_L \\Big( \\sum_{i<n_k}\\big(t_{av}^k[i]
        + O^k[i]/w_{av}\\big) + t_{av}^k[n_k] \\Big)

* the period scaled from the largest single-stage average time:

  .. math::

     P[k] = \\mu_P \\max\\big\\{ t_{av}^k[i],\\; O^k[z]/w_{av} \\big\\}

with µ sampled per string from the scenario's Table-1 range.

All randomness flows from a single :class:`numpy.random.Generator`, so a
``(scenario, seed)`` pair identifies a workload instance exactly.
"""

from __future__ import annotations

import numpy as np

from ..core.model import AppString, Network, SystemModel
from .parameters import ScenarioParameters

__all__ = ["generate_network", "generate_string", "generate_model"]


def generate_network(
    params: ScenarioParameters, rng: np.random.Generator
) -> Network:
    """Sample the communication fabric for a scenario.

    Each ordered inter-machine pair gets an independent bandwidth from
    ``params.bandwidth_range``; the diagonal is infinite.
    """
    M = params.n_machines
    lo, hi = params.bandwidth_range
    bw = rng.uniform(lo, hi, size=(M, M))
    np.fill_diagonal(bw, np.inf)
    return Network(bw)


def generate_string(
    string_id: int,
    params: ScenarioParameters,
    network: Network,
    rng: np.random.Generator,
) -> AppString:
    """Sample one application string per Section 6 / Section 8.

    The latency bound and period are derived from the string's *average*
    nominal times and the network's average inverse bandwidth, scaled by
    per-string µ values drawn from the scenario's Table-1 ranges —
    exactly the Section-8 formulas.
    """
    M = params.n_machines
    n_lo, n_hi = params.apps_per_string
    n_apps = int(rng.integers(n_lo, n_hi + 1))
    t_lo, t_hi = params.comp_time_range
    u_lo, u_hi = params.cpu_util_range
    o_lo, o_hi = params.output_size_range
    comp_times = rng.uniform(t_lo, t_hi, size=(n_apps, M))
    cpu_utils = rng.uniform(u_lo, u_hi, size=(n_apps, M))
    output_sizes = rng.uniform(o_lo, o_hi, size=n_apps - 1)
    worth = float(rng.choice(params.worth_choices))

    t_av = comp_times.mean(axis=1)
    inv_w_av = network.avg_inv_bandwidth  # this is 1 / w_av
    transfer_av = output_sizes * inv_w_av

    mu_latency = float(rng.uniform(*params.latency_mu))
    mu_period = float(rng.uniform(*params.period_mu))

    nominal_path_av = float(t_av.sum() + transfer_av.sum())
    max_latency = mu_latency * nominal_path_av

    stage_times = np.concatenate([t_av, transfer_av])
    period = mu_period * float(stage_times.max())

    return AppString(
        string_id=string_id,
        worth=worth,
        period=period,
        max_latency=max_latency,
        comp_times=comp_times,
        cpu_utils=cpu_utils,
        output_sizes=output_sizes,
    )


def generate_model(
    params: ScenarioParameters,
    seed: int | np.random.Generator | None = None,
) -> SystemModel:
    """Sample a complete problem instance for a scenario.

    Parameters
    ----------
    params:
        The scenario definition (µ ranges, string count, hardware sizes).
    seed:
        Seed or ready-made generator.  Identical ``(params, seed)`` pairs
        produce byte-identical models.
    """
    rng = np.random.default_rng(seed)
    network = generate_network(params, rng)
    strings = [
        generate_string(k, params, network, rng)
        for k in range(params.n_strings)
    ]
    return SystemModel(network, strings)
