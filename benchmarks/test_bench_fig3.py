"""Benchmark + regeneration of Figure 3 (total worth, scenario 1).

The paper's Figure 3 compares PSG, MWF, TF, Seeded PSG, and the LP
upper bound on the highly loaded (capacity-limited) scenario.  The
reproduction target is the *shape*: PSG/Seeded PSG ≥ MWF > TF, all
below the UB.  The measured series is stored in
``benchmark.extra_info["series"]``.
"""

from __future__ import annotations

from repro.experiments import run_figure


def test_fig3_total_worth_highly_loaded(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: run_figure("fig3", scale=bench_scale, base_seed=1_000),
        rounds=1,
        iterations=1,
    )
    labels, means, errs = result.series()
    benchmark.extra_info["series"] = dict(zip(labels, means))
    benchmark.extra_info["ci_half_widths"] = dict(zip(labels, errs))
    print()
    print(result.chart())
    print(result.table())

    # Reproduction checks (paper Figure 3 shape).
    assert result.heuristics_below_ub()
    assert result.evolutionary_dominates()
    agg = result.aggregates
    # Scenario 1 is load-bound: nobody should reach the full worth.
    total = sum(
        s.worth
        for s in __import__("repro").workload.generate_model(
            result.outcome.config.effective_scenario(),
            seed=result.outcome.records[0].seed,
        ).strings
    )
    assert agg["ub"].mean <= total + 1e-6
    assert agg["mwf"].mean > 0
