"""JSON serialization of DAG systems (parallel to the linear format)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..core.exceptions import ModelError
from ..core.model import Network
from ..dag.model import DagEdge, DagString, DagSystem
from .atomic import atomic_write_text
from .serialize import _bandwidth_from_json, _bandwidth_to_json

__all__ = [
    "dag_system_to_dict",
    "dag_system_from_dict",
    "save_dag_system",
    "load_dag_system",
]

_SCHEMA = "repro/v1"


def dag_system_to_dict(system: DagSystem) -> dict[str, Any]:
    """Encode a :class:`DagSystem` as JSON-compatible data."""
    return {
        "schema": _SCHEMA,
        "kind": "dag-system",
        "network": {
            "bandwidth": _bandwidth_to_json(system.network.bandwidth)
        },
        "strings": [
            {
                "string_id": s.string_id,
                "name": s.name,
                "worth": s.worth,
                "period": s.period,
                "max_latency": s.max_latency,
                "comp_times": s.comp_times.tolist(),
                "cpu_utils": s.cpu_utils.tolist(),
                "edges": [
                    {"src": e.src, "dst": e.dst, "nbytes": e.nbytes}
                    for e in s.edges
                ],
            }
            for s in system.strings
        ],
    }


def dag_system_from_dict(data: dict[str, Any]) -> DagSystem:
    """Decode :func:`dag_system_to_dict` output."""
    if data.get("schema") != _SCHEMA or data.get("kind") != "dag-system":
        raise ModelError(
            f"not a {_SCHEMA} dag-system document "
            f"(schema={data.get('schema')!r}, kind={data.get('kind')!r})"
        )
    network = Network(_bandwidth_from_json(data["network"]["bandwidth"]))
    strings = [
        DagString(
            string_id=s["string_id"],
            worth=s["worth"],
            period=s["period"],
            max_latency=s["max_latency"],
            comp_times=np.array(s["comp_times"], dtype=float),
            cpu_utils=np.array(s["cpu_utils"], dtype=float),
            edges=[
                DagEdge(e["src"], e["dst"], e["nbytes"])
                for e in s["edges"]
            ],
            name=s.get("name", ""),
        )
        for s in data["strings"]
    ]
    return DagSystem(network, strings)


def save_dag_system(system: DagSystem, path: str | Path) -> None:
    """Write a DAG system to a JSON file."""
    atomic_write_text(path, json.dumps(dag_system_to_dict(system)))


def load_dag_system(path: str | Path) -> DagSystem:
    """Read a DAG system from a JSON file."""
    return dag_system_from_dict(json.loads(Path(path).read_text()))
