"""Benchmarks of the discrete-event simulator substrate."""

from __future__ import annotations

import pytest

from repro.des import compare_to_estimates, simulate_allocation
from repro.heuristics import most_worth_first
from repro.workload import SCENARIO_3, generate_model


@pytest.fixture(scope="module")
def allocated():
    model = generate_model(
        SCENARIO_3.scaled(n_strings=8, n_machines=4), seed=9
    )
    return most_worth_first(model).allocation


def test_simulate_allocation(benchmark, allocated):
    trace = benchmark(simulate_allocation, allocated, 20)
    # every string completed every data set
    for k in allocated:
        assert trace.completed_datasets(k) == 20


def test_analytic_validation_pipeline(benchmark, allocated):
    comparison = benchmark.pedantic(
        lambda: compare_to_estimates(
            allocated, n_datasets=30, skip_datasets=3
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["mean_rel_err"] = float(
        comparison.comp_relative_errors().mean()
    )
    # steady-state means stay below the worst-case-phase estimates
    # (conservatism), modulo a small numerical margin.
    for (k, i), (est, meas) in comparison.comp.items():
        assert meas <= est * 1.05 + 1e-9, (k, i)
