"""Struct-of-arrays feasibility kernel (the default ``"soa"`` backend).

Drop-in replacement for :class:`repro.core.state.RecordAllocationState`
that stores every cached per-string quantity in one dense float buffer
so the two-stage feasibility analysis runs as vectorized NumPy kernels
and ``snapshot()``/``restore()`` collapse to array copies.

Layout
------
Resources live on a *fused axis* of size ``C = M + M²``: machine ``j``
is resource ``j``; inter-machine route ``(j1, j2)`` is resource
``M + j1*M + j2``.  A :class:`~repro.core.profile.StringProfile`
pre-computes its touched resources on this axis (``res_idx`` — machines
ascending, then routes ascending), so one gather covers machines and
routes at once.

All mutable per-string state is a single ``(7 + 4C, N)`` float64 buffer
(``N`` = number of strings, slot = string id):

====================  =======================================================
rows                  contents
====================  =======================================================
``0..6``              per-slot ``period``, ``nominal_path``, ``max_latency``,
                      ``tightness``, ``wait_sum``, and the pre-multiplied
                      bounds ``period*(1+tol)`` / ``max_latency*(1+tol)``
                      (zero when unmapped)
``7       .. 7+C``    ``load[ρ, z]`` — stage-1 utilization contribution
``7+C   .. 7+2C``     ``tmax[ρ, z]`` — binding nominal time on ``ρ``
``7+2C  .. 7+3C``     ``count[ρ, z]`` — apps/transfers of ``z`` on ``ρ``
                      (doubles as the membership table: ``count > 0``)
``7+3C  .. 7+4C``     ``H[ρ, z]`` — higher-priority interference on ``ρ``
====================  =======================================================

The transposed ``(C, N)`` orientation makes the hot gathers single-axis
row gathers (``cnt.take(res_idx, axis=0)`` → a ``(c, N)`` block)
instead of 2-D ``np.ix_`` products.  Stage-1 utilization is a separate
fused ``(C,)`` vector whose first ``M`` entries / trailing ``M²``
entries are exposed as the ``machine_util`` / ``route_util`` views of
the public API.

Bit-identity with the record backend
------------------------------------
Both backends execute the same scalar floating-point operations in the
same order on every accumulator (see the canonical-order notes in
:mod:`repro.core.state`):

* interference on a *newly added* string is derived from its priority
  predecessor — ``H_new[ρ] = H[w, ρ] + load[w, ρ]`` for the
  lowest-priority user ``w`` above the new key — found here per
  resource by an ``argmin`` over the reversed slot axis (first minimum
  in reverse order = minimum tightness with the largest id, i.e. the
  smallest key above the new one);
* the new string's ``wait_sum`` is one sequential scalar chain over
  touched resources in fused order (``res_count_list`` keeps that loop
  in plain Python floats);
* stage-2b ``wait_sum`` increments accumulate column-by-column in fused
  order via ``np.add.reduce(..., axis=0)`` — an *outer-axis* reduction,
  which NumPy performs as sequential row additions, i.e. exactly the
  record backend's per-resource chain (untouched slots add ``+0.0``,
  which is exact; the equivalence suite would catch any change to this
  reduction order);
* the pre-multiplied bound rows hold ``period*(1+tol)`` and
  ``max_latency*(1+tol)`` — the identical products the record backend
  forms on the fly;
* first-reported rejections scan resources in fused order and users in
  ascending id order, matching the record backend's loop order, so
  ``last_rejection`` is field-for-field identical.

CSR user tables (which strings use resource ``ρ``) are derived lazily
from the ``count`` block — ``np.nonzero`` row-major order yields each
resource's users already ascending — cached, and invalidated by any
mutation; the hot path itself only needs the dense ``count > 0`` masks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .allocation import Allocation
from .exceptions import AllocationError
from .feasibility import DEFAULT_TOL
from .model import SystemModel
from .profile import ProfileCache, Route, StringProfile
from .state import AllocationState, RejectionReason
from .types import FloatArray, IntArray, IntVectorLike

if TYPE_CHECKING:
    from .state import StateSnapshotLike

__all__ = ["SoaAllocationState", "SoaStateSnapshot"]

#: Number of per-slot scalar rows ahead of the per-resource blocks.
_SCALAR_ROWS = 7


class SoaStateSnapshot:
    """Frozen copy of an SoA state's mutable core.

    Three array copies plus a profile-dict copy; profiles themselves are
    immutable and shared.  Detached exactly like
    :class:`~repro.core.state.StateSnapshot`: one snapshot can seed any
    number of states.
    """

    __slots__ = ("buf", "util", "mapped", "profiles", "worth")

    def __init__(
        self,
        buf: FloatArray,
        util: FloatArray,
        mapped: "np.ndarray[tuple[int], np.dtype[np.bool_]]",
        profiles: dict[int, StringProfile],
        worth: float,
    ) -> None:
        self.buf = buf
        self.util = util
        self.mapped = mapped
        self.profiles = profiles
        self.worth = worth

    @property
    def n_strings(self) -> int:
        return len(self.profiles)

    def __repr__(self) -> str:
        return (
            f"SoaStateSnapshot(n_strings={self.n_strings}, "
            f"worth={self.worth:g})"
        )


class SoaAllocationState(AllocationState):
    """The struct-of-arrays backend (``backend="soa"``, the default)."""

    backend = "soa"

    def __init__(
        self,
        model: SystemModel,
        tol: float = DEFAULT_TOL,
        profile_cache: ProfileCache | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(model, tol, profile_cache)
        M = model.n_machines
        N = len(model.strings)
        C = M + M * M
        self._n_resources = C
        buf = np.zeros((_SCALAR_ROWS + 4 * C, N))
        self._buf: FloatArray = buf
        self._period: FloatArray = buf[0]
        self._nominal: FloatArray = buf[1]
        self._maxlat: FloatArray = buf[2]
        self._tight: FloatArray = buf[3]
        self._wait: FloatArray = buf[4]
        self._pbound: FloatArray = buf[5]  # period * (1 + tol)
        self._lbound: FloatArray = buf[6]  # max_latency * (1 + tol)
        o = _SCALAR_ROWS
        self._loadT: FloatArray = buf[o : o + C]
        self._tmaxT: FloatArray = buf[o + C : o + 2 * C]
        self._cntT: FloatArray = buf[o + 2 * C : o + 3 * C]
        self._HT: FloatArray = buf[o + 3 * C : o + 4 * C]
        self._util: FloatArray = np.zeros(C)
        # Public views share storage with the fused vector: updating
        # _util updates them and vice versa (restore uses copyto so the
        # aliasing survives).
        self.machine_util = self._util[:M]
        self.route_util = self._util[M:].reshape(M, M)
        self._mapped: np.ndarray[tuple[int], np.dtype[np.bool_]] = np.zeros(
            N, dtype=bool
        )
        self._ids: IntArray = np.arange(N, dtype=np.int64)
        self._profiles: dict[int, StringProfile] = {}
        self._csr: tuple[IntArray, IntArray] | None = None
        # Reusable scratch for try_add/remove temporaries (never part of
        # snapshots; each value is fully rewritten before it is read
        # within one call).  The (c, N) blocks are sized for the widest
        # profile seen so far and grown on demand — c is bounded by the
        # largest string's touched-resource count, not by C.
        self._sc_cap = 0
        self._sc_S: FloatArray = np.empty((0, N))
        self._sc_keyed: FloatArray = np.empty((0, N))
        self._sc_Hg: FloatArray = np.empty((0, N))
        self._sc_Hp: FloatArray = np.empty((0, N))
        self._sc_tmax: FloatArray = np.empty((0, N))
        self._sc_used = np.zeros((0, N), dtype=bool)
        self._sc_Mh = np.zeros((0, N), dtype=bool)
        self._sc_Ml = np.zeros((0, N), dtype=bool)
        self._sc_viol = np.zeros((0, N), dtype=bool)
        self._sc_has = np.zeros(0, dtype=bool)
        self._sc_row_f: FloatArray = np.empty(N)
        self._sc_row_g: FloatArray = np.empty(N)
        self._sc_hi = np.zeros(N, dtype=bool)
        self._sc_eq = np.zeros(N, dtype=bool)
        self._sc_lt = np.zeros(N, dtype=bool)
        self._sc_violL = np.zeros(N, dtype=bool)

    def _ensure_scratch(self, c: int) -> None:
        """Grow the per-resource scratch blocks to at least ``c`` rows."""
        if c <= self._sc_cap:
            return
        N = self._ids.size
        self._sc_cap = c
        self._sc_S = np.empty((c, N))
        self._sc_keyed = np.empty((c, N))
        self._sc_Hg = np.empty((c, N))
        self._sc_Hp = np.empty((c, N))
        self._sc_tmax = np.empty((c, N))
        self._sc_used = np.zeros((c, N), dtype=bool)
        self._sc_Mh = np.zeros((c, N), dtype=bool)
        self._sc_Ml = np.zeros((c, N), dtype=bool)
        self._sc_viol = np.zeros((c, N), dtype=bool)
        self._sc_has = np.zeros(c, dtype=bool)

    # -- read-only views -------------------------------------------------------

    @property
    def n_strings(self) -> int:
        return len(self._profiles)

    def _compute_mapped_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._profiles))

    def machines_for(self, string_id: int) -> IntArray:
        return self._profiles[string_id].machines

    def __contains__(self, string_id: int) -> bool:
        return string_id in self._profiles

    def as_allocation(self) -> Allocation:
        return Allocation(
            self.model,
            {k: p.machines for k, p in self._profiles.items()},
        )

    def estimated_latency(self, string_id: int) -> float:
        p = self._profiles[string_id]
        return p.nominal_path + p.period * float(self._wait[string_id])

    def interference_terms(
        self, string_id: int
    ) -> tuple[dict[int, float], dict[Route, float], float]:
        p = self._profiles[string_id]
        M = self.model.n_machines
        H_m: dict[int, float] = {}
        H_r: dict[Route, float] = {}
        hrow = self._HT[p.res_idx, string_id]
        for rho, h in zip(p.res_idx.tolist(), hrow.tolist()):
            if rho < M:
                H_m[rho] = h
            else:
                j1, j2 = divmod(rho - M, M)
                H_r[(j1, j2)] = h
        return H_m, H_r, float(self._wait[string_id])

    def _user_table(self) -> tuple[IntArray, IntArray]:
        """Lazy CSR (indptr, indices) of users per fused resource."""
        csr = self._csr
        if csr is None:
            res, ids = np.nonzero(self._cntT > 0.0)
            counts = np.bincount(res, minlength=self._n_resources)
            indptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
            ).astype(np.int64)
            csr = (indptr, ids.astype(np.int64))
            self._csr = csr
        return csr

    def machine_users(self, j: int) -> IntArray:
        indptr, indices = self._user_table()
        return indices[indptr[j] : indptr[j + 1]].copy()

    def route_users(self, j1: int, j2: int) -> IntArray:
        M = self.model.n_machines
        rho = M + j1 * M + j2
        indptr, indices = self._user_table()
        return indices[indptr[rho] : indptr[rho + 1]].copy()

    # -- snapshot / restore ------------------------------------------------------

    def snapshot(self) -> SoaStateSnapshot:
        """Detached copy of the mutable core — three array copies."""
        return SoaStateSnapshot(
            buf=self._buf.copy(),
            util=self._util.copy(),
            mapped=self._mapped.copy(),
            profiles=dict(self._profiles),
            worth=self._worth,
        )

    def restore(self, snapshot: "StateSnapshotLike") -> None:
        if not isinstance(snapshot, SoaStateSnapshot):
            raise TypeError(
                f"cannot restore a {type(snapshot).__name__} into the "
                f"'soa' backend; snapshots do not transfer between "
                f"backends"
            )
        # copyto (not rebinding) keeps the buffer row views and the
        # machine_util/route_util aliases valid.
        np.copyto(self._buf, snapshot.buf)
        np.copyto(self._util, snapshot.util)
        np.copyto(self._mapped, snapshot.mapped)
        # Re-derive the pre-multiplied bound rows under *this* state's
        # tolerance (a snapshot may come from a state with another tol;
        # same-tol restores reproduce the identical products).
        bound = 1.0 + self.tol
        np.multiply(self._period, bound, out=self._pbound)
        np.multiply(self._maxlat, bound, out=self._lbound)
        self._profiles = dict(snapshot.profiles)
        self._worth = snapshot.worth
        self.last_rejection = None
        self._mapped_cache = None
        self._csr = None

    # -- rejection decoding ------------------------------------------------------

    def _res_name(self, rho: int) -> str:
        M = self.model.n_machines
        if rho < M:
            return f"machine {rho}"
        j1, j2 = divmod(rho - M, M)
        return f"route {j1}->{j2}"

    # -- the core operation -----------------------------------------------------

    def try_add(self, string_id: int, machines: IntVectorLike) -> bool:
        if string_id in self._profiles:
            raise AllocationError(f"string {string_id} is already mapped")
        self.last_rejection = None
        prof = self._get_profile(string_id, machines)
        bound = 1.0 + self.tol
        res_idx = prof.res_idx
        res_load = prof.res_load
        M = self.model.n_machines

        # ---- stage 1: capacity (fused machines + routes, one kernel) --------
        new_util = self._util[res_idx] + res_load
        viol1 = new_util > bound
        if viol1.any():
            ci = int(viol1.argmax())
            rho = int(res_idx[ci])
            kind = "machine-capacity" if rho < M else "route-capacity"
            self.last_rejection = RejectionReason(
                1, kind, self._res_name(rho), float(new_util[ci]), 1.0
            )
            return False

        # ---- priority partition of the mapped strings -----------------------
        # Unmapped slots carry tightness 0 and count 0 (columns are
        # zeroed on remove) while t > 0 always, so `hi` is false and
        # `used` excludes them without an explicit mapped mask.
        t = prof.tightness
        sid = string_id
        tight = self._tight
        ids = self._ids
        hi = np.greater(tight, t, out=self._sc_hi)
        eq = np.equal(  # repro: noqa[RPR001] exact-key tie, ids break it
            tight, t, out=self._sc_eq
        )
        np.less(ids, sid, out=self._sc_lt)
        np.logical_and(eq, self._sc_lt, out=eq)
        np.logical_or(hi, eq, out=hi)

        c = res_idx.size
        self._ensure_scratch(c)
        # (c, N) membership counts
        S = np.take(self._cntT, res_idx, axis=0, out=self._sc_S[:c])
        used = np.greater(S, 0.0, out=self._sc_used[:c])
        Mh = np.logical_and(used, hi, out=self._sc_Mh[:c])
        # used & ~hi (Mh is a subset of used)
        Ml = np.logical_xor(used, Mh, out=self._sc_Ml[:c])

        # ---- stage 2a: the new string under existing interference -----------
        # Priority predecessor per resource: among higher-priority users,
        # the one with minimum key — minimum tightness, largest id on
        # ties.  H_new = H[pred] + load[pred] (one add, no re-summation).
        # argmin over the reversed slot axis returns the *last* minimum,
        # i.e. the largest id among tied tightness values.
        P = prof.period
        has = np.any(Mh, axis=1, out=self._sc_has[:c])
        if has.any():
            n_slots = ids.size
            # keyed = np.where(Mh, tight, inf), built in scratch.
            keyed = self._sc_keyed[:c]
            keyed.fill(np.inf)
            np.copyto(keyed, tight, where=Mh)
            wsel = (n_slots - 1) - keyed[:, ::-1].argmin(axis=1)
            wclip = np.where(has, wsel, 0)
            Hnew = np.where(
                has,
                self._HT[res_idx, wclip] + self._loadT[res_idx, wclip],
                0.0,
            )
        else:
            Hnew = np.zeros(c)
        lhs2a = prof.res_tmax + P * Hnew
        viol2a = lhs2a > P * bound
        if viol2a.any():
            ci = int(viol2a.argmax())
            rho = int(res_idx[ci])
            kind = "throughput-comp" if rho < M else "throughput-tran"
            self.last_rejection = RejectionReason(
                2, kind, f"string {sid} on {self._res_name(rho)}",
                float(lhs2a[ci]), P,
            )
            return False
        # Canonical wait_sum chain: sequential scalar adds over touched
        # resources in fused order (identical to the record backend).
        ws = 0.0
        for count, h in zip(prof.res_count_list, Hnew.tolist()):
            ws += count * h
        latency = prof.nominal_path + P * ws
        if latency > prof.max_latency * bound:
            self.last_rejection = RejectionReason(
                2, "latency", f"string {sid}", latency, prof.max_latency
            )
            return False

        # ---- stage 2b: existing lower-priority strings gain interference ----
        wd: FloatArray | None = None
        Hgather: FloatArray | None = None
        Hplus: FloatArray | None = None
        if Ml.any():
            Hgather = np.take(self._HT, res_idx, axis=0, out=self._sc_Hg[:c])
            Hplus = np.add(Hgather, res_load[:, None], out=self._sc_Hp[:c])
            # lhs2b = tmax_gather + period * Hplus, built in scratch
            # (keyed is dead after stage 2a and holds the product).
            tmaxg = np.take(self._tmaxT, res_idx, axis=0, out=self._sc_tmax[:c])
            ph = np.multiply(self._period, Hplus, out=self._sc_keyed[:c])
            lhs2b = np.add(tmaxg, ph, out=ph)
            viol2b = np.greater(lhs2b, self._pbound, out=self._sc_viol[:c])
            np.logical_and(Ml, viol2b, out=viol2b)
            if viol2b.any():
                rows = viol2b.any(axis=1)
                ci = int(rows.argmax())
                z = int(viol2b[ci].argmax())
                rho = int(res_idx[ci])
                kind = "throughput-comp" if rho < M else "throughput-tran"
                self.last_rejection = RejectionReason(
                    2, kind, f"string {z} on {self._res_name(rho)}",
                    float(lhs2b[ci, z]), float(self._period[z]),
                )
                return False
            # Per-slot wait_sum increments, accumulated column-by-column
            # in fused order: np.add.reduce over the outer axis performs
            # sequential row additions — the identical scalar chain the
            # record backend builds (+0.0 on untouched slots is exact).
            # S is dead after the product, so the multiply lands there;
            # `used` is dead too and takes the ~Ml mask.
            prods = np.multiply(S, res_load[:, None], out=S)
            np.copyto(prods, 0.0, where=np.logical_not(Ml, out=used))
            wd = np.add.reduce(prods, axis=0, out=self._sc_row_f)
            # No `wd > 0` mask needed: a slot whose wait_sum does not
            # grow keeps its current latency, which already passed this
            # identical check when the slot was last touched (unmapped
            # slots compare 0 > 0).
            newlat = np.add(self._wait, wd, out=self._sc_row_g)
            np.multiply(self._period, newlat, out=newlat)
            np.add(self._nominal, newlat, out=newlat)
            violL = np.greater(newlat, self._lbound, out=self._sc_violL)
            if violL.any():
                z = int(violL.argmax())
                self.last_rejection = RejectionReason(
                    2, "latency", f"string {z}",
                    float(newlat[z]), float(self._maxlat[z]),
                )
                return False

        # ---- commit ----------------------------------------------------------
        self._util[res_idx] += res_load
        if wd is not None:
            assert Hgather is not None and Hplus is not None
            # Full-row writeback selecting the incremented value for
            # lower-priority users (the same H + load addition checked
            # above); stale column sid carries zeros and is overwritten
            # by the row scatter just below.  Built in the dead tmax
            # scratch: np.where(Ml, Hplus, Hgather).
            wb = self._sc_tmax[:c]
            np.copyto(wb, Hgather)
            np.copyto(wb, Hplus, where=Ml)
            self._HT[res_idx] = wb
            self._wait += wd
        self._period[sid] = P
        self._nominal[sid] = prof.nominal_path
        self._maxlat[sid] = prof.max_latency
        self._tight[sid] = t
        self._wait[sid] = ws
        self._pbound[sid] = P * bound
        self._lbound[sid] = prof.max_latency * bound
        self._loadT[res_idx, sid] = res_load
        self._tmaxT[res_idx, sid] = prof.res_tmax
        self._cntT[res_idx, sid] = prof.res_count
        self._HT[res_idx, sid] = Hnew
        self._mapped[sid] = True
        self._profiles[sid] = prof
        self._worth += self.model.strings[sid].worth
        self._mapped_cache = None
        self._csr = None
        return True

    def remove(self, string_id: int) -> None:
        prof = self._profiles.pop(string_id, None)
        if prof is None:
            raise AllocationError(f"string {string_id} is not mapped")
        res_idx = prof.res_idx
        res_load = prof.res_load
        t = prof.tightness
        sid = string_id
        tight = self._tight
        ids = self._ids
        lo = np.less(tight, t, out=self._sc_hi)
        eq = np.equal(  # repro: noqa[RPR001] exact-key tie, ids break it
            tight, t, out=self._sc_eq
        )
        np.greater(ids, sid, out=self._sc_lt)
        np.logical_and(eq, self._sc_lt, out=eq)
        np.logical_or(lo, eq, out=lo)

        c = res_idx.size
        self._ensure_scratch(c)
        self._util[res_idx] -= res_load
        S = np.take(self._cntT, res_idx, axis=0, out=self._sc_S[:c])
        # count > 0 already restricts to mapped slots (columns are
        # zeroed on remove), so no explicit mapped mask is needed.
        Ml = np.greater(S, 0.0, out=self._sc_used[:c])
        np.logical_and(Ml, lo, out=Ml)
        if Ml.any():
            # HT[res_idx] -= np.where(Ml, res_load[:, None], 0.0)
            Hg = np.take(self._HT, res_idx, axis=0, out=self._sc_Hg[:c])
            sub = self._sc_Hp[:c]
            sub.fill(0.0)
            np.copyto(sub, res_load[:, None], where=Ml)
            np.subtract(Hg, sub, out=Hg)
            self._HT[res_idx] = Hg
            prods = np.multiply(S, res_load[:, None], out=S)
            np.copyto(prods, 0.0, where=np.logical_not(Ml, out=self._sc_Mh[:c]))
            # Column-by-column subtraction: the record backend's
            # per-resource chain, in the same fused order (a fold of
            # subtractions is NOT a subtraction of a sum, so no reduce).
            for col in range(c):
                self._wait -= prods[col]
        self._buf[:, sid] = 0.0
        self._mapped[sid] = False
        self._worth -= self.model.strings[sid].worth
        self._mapped_cache = None
        self._csr = None
